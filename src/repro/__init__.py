"""repro: a reproduction of *Energy-aware adaptation for mobile
applications* (Flinn & Satyanarayanan, SOSP 1999).

The package rebuilds the paper's full stack on a simulated substrate:

* :mod:`repro.sim` — discrete-event simulation kernel
* :mod:`repro.hardware` — IBM ThinkPad 560X power models (Figure 4)
* :mod:`repro.powerscope` — the PowerScope energy profiler
* :mod:`repro.net` — 2 Mb/s WaveLAN link, RPC, remote servers
* :mod:`repro.core` — Odyssey: viceroy, wardens, fidelity, and
  goal-directed energy adaptation
* :mod:`repro.apps` — the four adaptive applications
* :mod:`repro.workloads` — the measurement objects and schedules
* :mod:`repro.analysis` — statistics, linear models, normalization
* :mod:`repro.experiments` — every figure/table of the evaluation

Quickstart
----------
>>> from repro.experiments import build_goal_rig, run_goal_experiment
>>> result = run_goal_experiment(goal_seconds=400.0, initial_energy=6000.0)
>>> result.goal_met
True
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "hardware",
    "powerscope",
    "net",
    "core",
    "apps",
    "workloads",
    "analysis",
    "experiments",
    "__version__",
]
