"""Application cost model: the calibration constants behind the apps.

Component powers come from the paper's Figure 4; everything here is a
workload coefficient the paper did not publish (CPU seconds per byte
decoded, per pixel rendered, speech real-time factors, server transcode
speeds).  The defaults are tuned once so the reproduction's headline
percentages land in the paper's reported bands (DESIGN.md Section 5);
experiments perturb a copy per trial to model run-to-run variation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Every tunable workload coefficient, with calibrated defaults."""

    # -- video player ---------------------------------------------------
    # Cinepak decode cost scales with encoded frame size.
    decode_s_per_byte: float = 1.54e-6
    # X server blit/scale cost scales with window area.
    video_render_s_per_pixel: float = 4.9e-7

    # -- Odyssey system overhead per remote operation --------------------
    odyssey_s_per_call: float = 0.004
    odyssey_s_per_byte: float = 5.0e-8

    # -- speech recognizer ------------------------------------------------
    # Client front-end work per utterance-second in remote mode
    # (waveform conditioning + RPC packaging).
    speech_frontend_rtf: float = 0.22
    # First recognition phase per utterance-second in hybrid mode.
    speech_hybrid_phase1_rtf: float = 0.45
    # Hybrid's first phase compresses the data shipped by this factor.
    speech_hybrid_compression: float = 5.0
    # Server work remaining in hybrid mode, as a fraction of full work.
    speech_hybrid_server_factor: float = 0.5
    # Recognition-result reply size.
    speech_reply_bytes: int = 256
    # Remote Janus server speed relative to the client.
    speech_server_speed: float = 1.0

    # -- map viewer -------------------------------------------------------
    map_request_bytes: int = 500
    # Anvil parse/layout cost per map byte.
    map_parse_s_per_byte: float = 2.5e-7
    # X server draw cost per map byte.
    map_render_s_per_byte: float = 1.5e-7
    # Server-side filter/crop cost per (full) map byte.
    map_server_s_per_byte: float = 1.5e-7

    # -- Web browser --------------------------------------------------------
    web_request_bytes: int = 400
    # Netscape decode/layout cost per image byte received.
    web_render_s_per_byte: float = 1.2e-6
    # Distillation-server transcode cost per original image byte.
    web_distill_s_per_byte: float = 1.7e-6
    # Client proxy handling cost per request.
    web_proxy_s_per_call: float = 0.010

    def jittered(self, seed, spread=0.03):
        """A per-trial copy with coefficients perturbed by ±``spread``.

        Models the run-to-run variation behind the paper's error bars
        (wireless transfer time variation, scheduling noise).
        """
        rng = random.Random(seed)
        scaled = {}
        for name, value in self.__dict__.items():
            if isinstance(value, float) and value > 0:
                scaled[name] = value * rng.uniform(1 - spread, 1 + spread)
        return replace(self, **scaled)


DEFAULT_COSTS = CostModel()
