"""The composite application (paper Section 3.7).

Models a user searching for Web and map information using speech
commands: each loop iteration locally recognizes two speech utterances,
accesses a Web page, accesses a map, and includes five seconds of think
time after each visual access.  The Section 3.7 concurrency experiment
runs six iterations; the Section 5 goal-directed experiments start one
iteration every 25 seconds to obtain a continuous workload.
"""

from __future__ import annotations

from repro.workloads.cursor import WorkloadCursor
from repro.workloads.images import IMAGES
from repro.workloads.maps import MAPS
from repro.workloads.utterances import UTTERANCES

__all__ = ["CompositeApplication"]


class CompositeApplication:
    """Drives the speech, Web and map applications in the paper's loop.

    The constituent applications remain independently adaptive — the
    composite is a workload, not a fidelity ladder.
    """

    def __init__(self, speech, web, mapviewer,
                 utterances=None, images=None, maps=None):
        self.speech = speech
        self.web = web
        self.mapviewer = mapviewer
        self.utterances = list(utterances or UTTERANCES[:2])
        self.images = list(images or IMAGES)
        self.maps = list(maps or MAPS)
        self.iterations_completed = 0
        self.phases = WorkloadCursor("composite", sim=self.sim)

    @property
    def sim(self):
        return self.speech.sim

    @property
    def applications(self):
        """The constituent adaptive applications."""
        return (self.speech, self.web, self.mapviewer)

    # ------------------------------------------------------------------
    def run_iteration(self, index=0):
        """Generator: one loop — two utterances, a Web page, a map."""
        self.phases.begin(f"iter{index}")
        for utterance in self.utterances[:2]:
            yield from self.speech.recognize(utterance)
        image = self.images[index % len(self.images)]
        yield from self.web.browse(image)          # includes think time
        city = self.maps[index % len(self.maps)]
        yield from self.mapviewer.view(city)       # includes think time
        self.iterations_completed += 1
        self.phases.end()

    def run(self, iterations=6):
        """Generator: the Section 3.7 workload (six iterations)."""
        for index in range(iterations):
            yield from self.run_iteration(index)

    def run_every(self, period, until):
        """Generator: start an iteration every ``period`` seconds.

        If an iteration overruns the period, the next starts
        immediately — the workload stays continuous either way.
        """
        first = self.sim.now
        index = 0
        while first + index * period < until - 1e-9:
            target = first + index * period
            if self.sim.now < target:
                yield self.sim.timeout(target - self.sim.now)
            yield from self.run_iteration(index)
            index += 1
