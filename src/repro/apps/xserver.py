"""X server model.

Application frames and page content are drawn by the X server process;
its energy shows up as a distinct shading in every profile figure of
the paper.  The model charges CPU bursts under the process name ``X``,
with cost proportional to the drawn window area (video) or content
bytes (maps) — the paper observes X energy is proportional to window
area and insensitive to the video compression level.
"""

from __future__ import annotations

__all__ = ["XServer", "X_PROCESS"]

X_PROCESS = "X"


class XServer:
    """Renders on behalf of applications, charging CPU time to ``X``."""

    def __init__(self, machine):
        self.machine = machine
        self.requests = 0

    def render_seconds(self, seconds, procedure="_Dispatch"):
        """Generator: draw for a precomputed number of CPU seconds."""
        self.requests += 1
        if seconds <= 0:
            return
        yield from self.machine.compute(seconds, X_PROCESS, procedure)

    def render_pixels(self, pixels, s_per_pixel, procedure="_PutImage"):
        """Generator: draw a region whose cost scales with its area."""
        yield from self.render_seconds(pixels * s_per_pixel, procedure)

    def render_bytes(self, nbytes, s_per_byte, procedure="_DrawSegments"):
        """Generator: draw content whose cost scales with its size."""
        yield from self.render_seconds(nbytes * s_per_byte, procedure)
