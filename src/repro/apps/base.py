"""Base class for adaptive applications.

An adaptive application owns a fidelity ladder and implements the
adaptation protocol the viceroy's priority ladder drives: it can report
whether it may degrade/upgrade, perform the step, and expose its
current level.  Fidelity is read at work-item boundaries (the next
frame, the next utterance, the next fetch), so an upcall takes effect
at the next item exactly as in Odyssey.
"""

from __future__ import annotations

from repro.core.fidelity import FidelityLadder

__all__ = ["AdaptiveApplication"]


class AdaptiveApplication:
    """Common adaptation machinery for the four applications.

    Parameters
    ----------
    name:
        Application name (unique within a viceroy).
    machine:
        The client :class:`~repro.hardware.Machine`.
    levels:
        Fidelity level names, lowest first.
    priority:
        Static user-specified priority (larger = more important).
    start_level:
        Initial fidelity; defaults to the highest.
    """

    #: process name under which this app's CPU time is attributed
    process_name = "app"

    def __init__(self, name, machine, levels, priority=1, start_level=None):
        self.name = name
        self.machine = machine
        self.sim = machine.sim
        self.priority = priority
        self.ladder = FidelityLadder(name, list(levels), start=start_level)
        self.items_completed = 0

    def __repr__(self):
        return (
            f"<{type(self).__name__} {self.name} fidelity={self.fidelity!r} "
            f"priority={self.priority}>"
        )

    # ------------------------------------------------------------------
    # adaptation protocol (consumed by repro.core.priority)
    # ------------------------------------------------------------------
    @property
    def fidelity(self):
        """Current fidelity level name."""
        return self.ladder.current

    def can_degrade(self):
        return not self.ladder.at_bottom

    def can_upgrade(self):
        return not self.ladder.at_top

    def degrade(self):
        level = self.ladder.degrade()
        self.on_fidelity_change(level)
        return level

    def upgrade(self):
        level = self.ladder.upgrade()
        self.on_fidelity_change(level)
        return level

    def set_fidelity(self, level):
        """Jump straight to a named level (experiment configuration)."""
        result = self.ladder.set_level(level)
        self.on_fidelity_change(result)
        return result

    def fidelity_level(self):
        return self.ladder.current

    def fidelity_normalized(self):
        return self.ladder.normalized()

    def on_fidelity_change(self, level):
        """Hook for subclasses (e.g. resize the display window)."""

    # ------------------------------------------------------------------
    # display geometry (consumed by the zoned-backlighting study)
    # ------------------------------------------------------------------
    def window_rect(self):
        """Current on-screen window, or ``None`` for headless apps."""
        return None

    # ------------------------------------------------------------------
    def think(self, seconds):
        """Generator: user think time (idle, content stays visible)."""
        if seconds > 0:
            yield self.sim.timeout(seconds)
