"""The adaptive video player (paper Section 3.3).

Xanim fetches video from a server through Odyssey and displays it on
the client.  Two fidelity dimensions: the lossy-compression track used
to encode the clip (baseline / Premiere-B / Premiere-C) and the size of
the display window (full / reduced to half height and width).

The player is pipelined exactly like the real thing: a fetch process
streams encoded frames over the wireless link into a small buffer while
the playback loop decodes each frame (cost proportional to encoded
bytes) and hands it to the X server (cost proportional to window area,
*independent* of compression — the paper's Figure 6 observation).
Playback is paced by the frame deadline, so a network-limited stream
leaves the processor idle just as the paper describes.
"""

from __future__ import annotations

from repro.apps.base import AdaptiveApplication
from repro.apps.costs import DEFAULT_COSTS
from repro.core.warden import Warden
from repro.hardware.display import Rect
from repro.workloads.cursor import WorkloadCursor
from repro.workloads.videos import WINDOWS

__all__ = ["VideoWarden", "VideoPlayer", "VIDEO_LEVELS", "VIDEO_LEVEL_CONFIG"]

# Fidelity ladder, lowest first.  "combined" pairs the aggressive
# Premiere-C track with the reduced window.
VIDEO_LEVELS = ("combined", "reduced-window", "premiere-c", "premiere-b", "baseline")

VIDEO_LEVEL_CONFIG = {
    "baseline": ("baseline", "full"),
    "premiere-b": ("premiere-b", "full"),
    "premiere-c": ("premiere-c", "full"),
    "reduced-window": ("baseline", "reduced"),
    "combined": ("premiere-c", "reduced"),
}

# Frames buffered ahead of playback before the fetcher throttles.
PREFETCH_FRAMES = 8


class VideoWarden(Warden):
    """Video-type warden: streams encoded frames from the video server."""

    def __init__(self, link, costs=DEFAULT_COSTS):
        super().__init__("video")
        self.link = link
        self.costs = costs

    def fetch_frame(self, nbytes):
        """Generator: pull one encoded frame over the link.

        Charges Odyssey's own packet-handling CPU time (the ``odyssey``
        slice in the paper's profiles) on top of the transfer.
        """
        self.requests += 1
        machine = self.link.machine
        yield from self.link.recv(nbytes)
        overhead = self.costs.odyssey_s_per_call + nbytes * self.costs.odyssey_s_per_byte
        yield from machine.compute(overhead, "odyssey", "_sftp_DataArrived")


class VideoPlayer(AdaptiveApplication):
    """Xanim on Odyssey."""

    process_name = "xanim"

    def __init__(self, machine, warden, xserver, priority=2,
                 costs=DEFAULT_COSTS, start_level=None, window_origin=(0, 0),
                 drop_late_frames=False, drop_threshold_frames=2.0):
        super().__init__(
            "video", machine, VIDEO_LEVELS, priority=priority,
            start_level=start_level,
        )
        self.warden = warden
        self.xserver = xserver
        self.costs = costs
        self.window_origin = window_origin
        # Real players drop frames that arrive hopelessly late rather
        # than falling further behind; the paper's Section 2.2 framing
        # ("rather than suffering lost frames") is about avoiding this
        # by adapting — the mechanism itself still exists.
        self.drop_late_frames = drop_late_frames
        self.drop_threshold_frames = drop_threshold_frames
        self.frames_played = 0
        self.frames_late = 0
        self.frames_dropped = 0
        self.phases = WorkloadCursor("video", sim=self.sim)

    # ------------------------------------------------------------------
    @property
    def track(self):
        """Current compression track."""
        return VIDEO_LEVEL_CONFIG[self.fidelity][0]

    @property
    def window(self):
        """Current window-size name."""
        return VIDEO_LEVEL_CONFIG[self.fidelity][1]

    def window_rect(self):
        width, height = WINDOWS[self.window]
        x, y = self.window_origin
        return Rect(x, y, width, height)

    # ------------------------------------------------------------------
    def play(self, clip, max_seconds=None):
        """Generator: play ``clip`` to completion (or a time limit).

        Fidelity is re-read every frame, so adaptation upcalls take
        effect mid-stream.
        """
        self.phases.begin(clip.name)
        frame_count = clip.frame_count
        if max_seconds is not None:
            frame_count = min(frame_count, int(max_seconds * clip.fps))
        period = 1.0 / clip.fps
        ready = [self.sim.event() for _ in range(frame_count)]
        state = {"consumed": 0, "space": self.sim.event()}
        self.sim.spawn(
            self._fetch_frames(clip, ready, state), name=f"{self.name}-fetch"
        )
        start = self.sim.now
        for index in range(frame_count):
            yield ready[index]
            nbytes = ready[index].value
            deadline = start + (index + 1) * period
            if (
                self.drop_late_frames
                and self.sim.now - deadline
                > self.drop_threshold_frames * period
            ):
                # Hopelessly late: skip decode and render entirely.
                self.frames_dropped += 1
                state["consumed"] += 1
                state["space"].trigger()
                state["space"] = self.sim.event()
                continue
            # Decode: cost follows the *encoded* size (lossy compression
            # shrinks it); the decoded frame handed to X does not.
            yield from self.machine.compute(
                nbytes * self.costs.decode_s_per_byte,
                self.process_name,
                "_DecodeFrame",
            )
            width, height = WINDOWS[self.window]
            yield from self.xserver.render_pixels(
                width * height, self.costs.video_render_s_per_pixel
            )
            state["consumed"] += 1
            state["space"].trigger()
            state["space"] = self.sim.event()
            self.frames_played += 1
            if self.sim.now < deadline:
                yield self.sim.timeout(deadline - self.sim.now)
            else:
                self.frames_late += 1
        self.items_completed += 1
        self.phases.end()

    def _fetch_frames(self, clip, ready, state):
        for index in range(len(ready)):
            while index - state["consumed"] >= PREFETCH_FRAMES:
                yield state["space"]
            nbytes = clip.track_bytes(self.track)
            yield from self.warden.fetch_frame(nbytes)
            ready[index].trigger(nbytes)

    # ------------------------------------------------------------------
    # network-bandwidth adaptation (the original Odyssey dimension)
    # ------------------------------------------------------------------
    def fidelity_for_bandwidth(self, clip, bandwidth_bps, headroom=0.9):
        """Highest full-window fidelity whose stream fits the bandwidth.

        Mirrors the paper's Section 2.2 example: a client playing
        full-quality video switches to a lower-quality track when
        bandwidth drops, rather than suffering lost frames.  Only the
        compression dimension reacts to bandwidth; window size is an
        energy dimension.
        """
        for level in ("baseline", "premiere-b", "premiere-c"):
            track, _window = VIDEO_LEVEL_CONFIG[level]
            if clip.bitrate_bps(track) <= bandwidth_bps * headroom:
                return level
        return "premiere-c"

    def bandwidth_window(self, clip, level, headroom=0.9):
        """The expectation window within which ``level`` stays correct.

        Below the window the stream no longer fits; above it a better
        track would fit — either way Odyssey should deliver an upcall.
        """
        from repro.core.expectations import ResourceWindow

        track, _window = VIDEO_LEVEL_CONFIG[level]
        low = clip.bitrate_bps(track) / headroom
        better = {"premiere-c": "premiere-b", "premiere-b": "baseline"}
        if level in better:
            high = clip.bitrate_bps(VIDEO_LEVEL_CONFIG[better[level]][0]) / headroom
        else:
            high = float("inf")
        if level == "premiere-c":
            low = 0.0  # nothing lower to fall back to
        return ResourceWindow(low, high)

    def bandwidth_upcall(self, clip, headroom=0.9):
        """An upcall suitable for :class:`ExpectationRegistry.register`.

        On violation, re-adapts the compression track to the observed
        bandwidth and returns the new expectation window.
        """

        def upcall(level_bps, _old_window):
            new_level = self.fidelity_for_bandwidth(clip, level_bps, headroom)
            if new_level != self.fidelity:
                self.set_fidelity(new_level)
            return self.bandwidth_window(clip, new_level, headroom)

        return upcall

    def play_loop(self, clip, duration):
        """Generator: loop the clip as a background newsfeed for ``duration``."""
        end = self.sim.now + duration
        period = 1.0 / clip.fps
        while True:
            remaining = end - self.sim.now
            if remaining < period:
                # Not enough time left for even one frame: idle out the
                # tail instead of spinning on zero-frame plays.
                if remaining > 0:
                    yield self.sim.timeout(remaining)
                return
            yield from self.play(clip, max_seconds=remaining)
