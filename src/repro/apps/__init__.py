"""The four adaptive applications of the paper, plus shared models."""

from repro.apps.base import AdaptiveApplication
from repro.apps.composite import CompositeApplication
from repro.apps.costs import DEFAULT_COSTS, CostModel
from repro.apps.mapviewer import MAP_LEVELS, MapViewer, MapWarden
from repro.apps.speech import (
    SPEECH_LEVELS,
    SPEECH_MODES,
    SpeechRecognizer,
    SpeechWarden,
)
from repro.apps.video import (
    VIDEO_LEVEL_CONFIG,
    VIDEO_LEVELS,
    VideoPlayer,
    VideoWarden,
)
from repro.apps.web import WEB_LEVELS, WebBrowser, WebWarden
from repro.apps.windowmgr import ZonedWindowManager
from repro.apps.xserver import X_PROCESS, XServer

__all__ = [
    "AdaptiveApplication",
    "CostModel",
    "DEFAULT_COSTS",
    "XServer",
    "X_PROCESS",
    "VideoPlayer",
    "VideoWarden",
    "VIDEO_LEVELS",
    "VIDEO_LEVEL_CONFIG",
    "SpeechRecognizer",
    "SpeechWarden",
    "SPEECH_LEVELS",
    "SPEECH_MODES",
    "MapViewer",
    "MapWarden",
    "MAP_LEVELS",
    "WebBrowser",
    "WebWarden",
    "WEB_LEVELS",
    "CompositeApplication",
    "ZonedWindowManager",
]
