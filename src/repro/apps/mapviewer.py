"""The adaptive map viewer, Anvil (paper Section 3.5).

Anvil fetches maps from a remote server via Odyssey.  The client
annotates the request with the desired amount of filtering (dropping
minor, then also secondary roads) and cropping (a geographic subset);
the server performs the operations before transmitting.  After the
fetch, Anvil parses and the X server draws the map, then the user
thinks — energy during think time is charged to the application since
it keeps the map visible.
"""

from __future__ import annotations

from repro.apps.base import AdaptiveApplication
from repro.apps.costs import DEFAULT_COSTS
from repro.core.warden import Warden
from repro.hardware.display import Rect
from repro.workloads.maps import MAP_FIDELITIES
from repro.workloads.thinktime import DEFAULT_THINK_S, FixedThinkTime

__all__ = ["MapWarden", "MapViewer", "MAP_LEVELS"]

# Adaptation ladder used in the goal-directed experiments (a subset of
# the seven Figure 10 measurement configurations), lowest first.
MAP_LEVELS = ("crop-secondary", "secondary-filter", "minor-filter", "full")

# Window geometry chosen to reproduce the paper's zone-occupancy
# statements (Section 4.2): the full map straddles all 4 zones of a
# 2x2 display but 6 of a 2x4; the cropped map 2 of 4 and 3 of 8.
FULL_MAP_WINDOW = Rect(0, 0, 600, 520)
CROPPED_MAP_WINDOW = Rect(0, 0, 600, 260)


class MapWarden(Warden):
    """Map-type warden: annotated fetches from the map server."""

    def __init__(self, channel, costs=DEFAULT_COSTS):
        super().__init__("map", channel=channel)
        self.costs = costs

    def fetch_map(self, city, fidelity):
        """Generator: fetch ``city`` at ``fidelity``; returns bytes moved."""
        self.requests += 1
        nbytes = city.bytes_at(fidelity)
        # The server filters/crops the full map before transmitting.
        server_work = city.full_bytes * self.costs.map_server_s_per_byte
        yield from self.channel.call(
            self.costs.map_request_bytes, nbytes, work_units=server_work
        )
        machine = self.channel.link.machine
        overhead = (
            self.costs.odyssey_s_per_call + nbytes * self.costs.odyssey_s_per_byte
        )
        yield from machine.compute(overhead, "odyssey", "_rpc2_RecvPacket")
        return nbytes


class MapViewer(AdaptiveApplication):
    """Anvil on Odyssey."""

    process_name = "anvil"

    def __init__(self, machine, warden, xserver, priority=3,
                 costs=DEFAULT_COSTS, think_time=None, start_level=None,
                 levels=MAP_LEVELS):
        super().__init__(
            "map", machine, levels, priority=priority, start_level=start_level
        )
        self.warden = warden
        self.xserver = xserver
        self.costs = costs
        self.think_time = think_time or FixedThinkTime(DEFAULT_THINK_S)
        self.maps_viewed = 0

    # ------------------------------------------------------------------
    @property
    def cropped(self):
        """True when the current fidelity crops the map."""
        return self.fidelity.startswith("crop")

    def window_rect(self):
        return CROPPED_MAP_WINDOW if self.cropped else FULL_MAP_WINDOW

    # ------------------------------------------------------------------
    def view(self, city, fidelity=None):
        """Generator: fetch, draw, and absorb one map."""
        level = fidelity if fidelity is not None else self.fidelity
        if level not in MAP_FIDELITIES:
            raise ValueError(f"unknown map fidelity {level!r}")
        nbytes = yield from self.warden.fetch_map(city, level)
        # Anvil parse/layout, then X draws the segments.
        yield from self.machine.compute(
            nbytes * self.costs.map_parse_s_per_byte, self.process_name, "_Layout"
        )
        yield from self.xserver.render_bytes(
            nbytes, self.costs.map_render_s_per_byte
        )
        yield from self.think(self.think_time.next())
        self.maps_viewed += 1
        self.items_completed += 1
        return nbytes
