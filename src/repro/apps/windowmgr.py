"""Window management for zoned-backlight displays (paper Section 4.1).

The paper envisions two window-manager features for zoned displays:

* a **snap-to** feature "that would move windows slightly so as to
  straddle the fewest possible zones";
* **user control over illumination of peripheral zones** — "in a
  typical configuration, only the window in focus might be brightly
  illuminated, while the rest of the screen is dim or dark."

:class:`ZonedWindowManager` implements both on top of
:class:`~repro.hardware.display.ZonedDisplay`.
"""

from __future__ import annotations

from repro.hardware.component import HardwareError
from repro.hardware.display import Rect, ZonedDisplay

__all__ = ["ZonedWindowManager"]


class ZonedWindowManager:
    """Places windows on a zoned display and controls zone illumination.

    Parameters
    ----------
    display:
        The :class:`~repro.hardware.display.ZonedDisplay` to manage.
    max_snap:
        Maximum pixels a window may be nudged by the snap-to feature.
    peripheral_level:
        Illumination for zones holding unfocused windows
        (``"dim"`` by default; ``"off"`` for maximum savings).
    """

    def __init__(self, display, max_snap=60.0, peripheral_level=ZonedDisplay.DIM):
        if not isinstance(display, ZonedDisplay):
            raise HardwareError("ZonedWindowManager requires a ZonedDisplay")
        if peripheral_level not in (
            ZonedDisplay.BRIGHT, ZonedDisplay.DIM, ZonedDisplay.OFF
        ):
            raise HardwareError(f"invalid peripheral level {peripheral_level!r}")
        self.display = display
        self.max_snap = max_snap
        self.peripheral_level = peripheral_level
        self.windows = {}
        self.focus = None

    # ------------------------------------------------------------------
    # snap-to placement
    # ------------------------------------------------------------------
    def _candidate_offsets(self, position, size, boundaries):
        """Offsets (within max_snap) aligning either window edge to a
        zone boundary, plus zero."""
        offsets = {0.0}
        for boundary in boundaries:
            for edge in (position, position + size):
                delta = boundary - edge
                if abs(delta) <= self.max_snap:
                    offsets.add(delta)
        return sorted(offsets, key=abs)

    def snap(self, rect):
        """Nudge ``rect`` to straddle the fewest possible zones.

        Returns the snapped :class:`~repro.hardware.display.Rect`.
        Ties prefer the smallest displacement; the window never moves
        off screen or farther than ``max_snap`` in either axis.
        """
        display = self.display
        x_bounds = [display.width / display.cols * i
                    for i in range(display.cols + 1)]
        y_bounds = [display.height / display.rows * i
                    for i in range(display.rows + 1)]
        best = rect
        best_key = (len(display.zones_for(rect)), 0.0)
        for dx in self._candidate_offsets(rect.x, rect.width, x_bounds):
            new_x = rect.x + dx
            if new_x < 0 or new_x + rect.width > display.width:
                continue
            for dy in self._candidate_offsets(rect.y, rect.height, y_bounds):
                new_y = rect.y + dy
                if new_y < 0 or new_y + rect.height > display.height:
                    continue
                candidate = Rect(new_x, new_y, rect.width, rect.height)
                zones = len(display.zones_for(candidate))
                displacement = abs(dx) + abs(dy)
                key = (zones, displacement)
                if key < best_key:
                    best, best_key = candidate, key
        return best

    # ------------------------------------------------------------------
    # window and focus management
    # ------------------------------------------------------------------
    def place(self, name, rect, snap=True):
        """Add or move a window; returns its (possibly snapped) rect."""
        placed = self.snap(rect) if snap else rect
        self.windows[name] = placed
        if self.focus is None:
            self.focus = name
        self._apply()
        return placed

    def remove(self, name):
        """Remove a window from management."""
        self.windows.pop(name, None)
        if self.focus == name:
            self.focus = next(iter(self.windows), None)
        self._apply()

    def set_focus(self, name):
        """Bring a window to focus (its zones go bright)."""
        if name not in self.windows:
            raise KeyError(f"no window named {name!r}")
        self.focus = name
        self._apply()

    def _apply(self):
        """Re-illuminate: focus bright, peripherals at their level,
        uncovered zones off."""
        display = self.display
        focus_zones = set()
        peripheral_zones = set()
        for name, rect in self.windows.items():
            zones = display.zones_for(rect)
            if name == self.focus:
                focus_zones.update(zones)
            else:
                peripheral_zones.update(zones)
        peripheral_zones -= focus_zones
        for index in range(display.zones):
            if index in focus_zones:
                display.set_zone(index, ZonedDisplay.BRIGHT)
            elif index in peripheral_zones:
                display.set_zone(index, self.peripheral_level)
            else:
                display.set_zone(index, ZonedDisplay.OFF)

    # ------------------------------------------------------------------
    def zones_lit(self):
        """(bright, peripheral) zone counts currently illuminated."""
        bright = sum(
            1 for level in self.display.zone_levels
            if level == ZonedDisplay.BRIGHT
        )
        dim = sum(
            1 for level in self.display.zone_levels
            if level == ZonedDisplay.DIM
        )
        return bright, dim
