"""The adaptive speech recognizer (paper Section 3.4).

A front-end generates a speech waveform and submits it via Odyssey to a
local or remote instance of the Janus recognizer.  Three execution
strategies:

* **local** — recognition runs entirely on the client CPU; unavoidable
  when disconnected.
* **remote** — the waveform ships to a wall-powered server; the client
  idles (receive-ready) while waiting for the reply.
* **hybrid** — the first recognition phase runs locally, acting as a
  type-specific compression that shrinks the shipped data about five
  times, and the server completes the remaining work.

Fidelity is lowered by a reduced vocabulary and simpler acoustic model,
which shrinks recognition work wherever it runs.  User interaction is
by voice, so the display can be off throughout (the power manager's
``display_policy="off"``).
"""

from __future__ import annotations

from repro.apps.base import AdaptiveApplication
from repro.apps.costs import DEFAULT_COSTS
from repro.core.warden import Warden
from repro.workloads.utterances import SPEECH_MODELS

__all__ = ["SpeechWarden", "SpeechRecognizer", "SPEECH_LEVELS", "SPEECH_MODES"]

SPEECH_LEVELS = ("reduced", "full")   # vocabulary/acoustic model, lowest first
SPEECH_MODES = ("local", "remote", "hybrid")


class SpeechWarden(Warden):
    """Speech-type warden: ships waveforms/intermediates to remote Janus."""

    def __init__(self, channel, costs=DEFAULT_COSTS):
        super().__init__("speech", channel=channel)
        self.costs = costs

    def remote_recognize(self, payload_bytes, work_units):
        """Generator: RPC carrying ``payload_bytes`` for ``work_units``."""
        self.requests += 1
        yield from self.channel.call(
            payload_bytes, self.costs.speech_reply_bytes, work_units=work_units
        )


class SpeechRecognizer(AdaptiveApplication):
    """Janus + speech front-end on Odyssey."""

    process_name = "janus"

    def __init__(self, machine, warden=None, mode="local", priority=1,
                 costs=DEFAULT_COSTS, start_level=None):
        if mode not in SPEECH_MODES:
            raise ValueError(f"unknown speech mode {mode!r}")
        if mode != "local" and warden is None:
            raise ValueError(f"{mode} recognition requires a speech warden")
        super().__init__(
            "speech", machine, SPEECH_LEVELS, priority=priority,
            start_level=start_level,
        )
        self.warden = warden
        self.mode = mode
        self.costs = costs
        self.utterances_recognized = 0
        self.fallbacks_to_local = 0

    # ------------------------------------------------------------------
    @property
    def model(self):
        """Current vocabulary/acoustic model name (= fidelity level)."""
        return self.fidelity

    def recognition_work(self, utterance):
        """CPU seconds of full recognition at the current fidelity."""
        return utterance.recognition_seconds(self.model)

    # ------------------------------------------------------------------
    def recognize(self, utterance):
        """Generator: recognize one utterance with the current strategy.

        Remote and hybrid strategies fall back to local recognition if
        the client is disconnected — "local recognition avoids network
        transmission and is unavoidable if the client is disconnected"
        (paper Section 3.4).
        """
        mode = self.mode
        if mode != "local" and not self._connected():
            mode = "local"
            self.fallbacks_to_local += 1
        if mode == "local":
            yield from self._recognize_local(utterance)
        elif mode == "remote":
            yield from self._recognize_remote(utterance)
        else:
            yield from self._recognize_hybrid(utterance)
        self.utterances_recognized += 1
        self.items_completed += 1

    def _connected(self):
        if self.warden is None or self.warden.channel is None:
            return False
        return self.warden.channel.link.up

    def _recognize_local(self, utterance):
        yield from self.machine.compute(
            self.recognition_work(utterance), self.process_name, "_Search"
        )

    def _recognize_remote(self, utterance):
        # Front-end conditions the waveform and packages the RPC.
        frontend = utterance.duration_s * self.costs.speech_frontend_rtf
        yield from self.machine.compute(
            frontend, "speech-frontend", "_EncodeWaveform"
        )
        work = self.recognition_work(utterance) / self.costs.speech_server_speed
        yield from self.warden.remote_recognize(utterance.waveform_bytes, work)

    def _recognize_hybrid(self, utterance):
        # Phase one locally: a type-specific compression yielding about
        # a factor of five reduction in data volume.
        phase1 = utterance.duration_s * self.costs.speech_hybrid_phase1_rtf
        yield from self.machine.compute(phase1, self.process_name, "_Phase1")
        payload = int(
            utterance.waveform_bytes / self.costs.speech_hybrid_compression
        )
        work = (
            self.recognition_work(utterance)
            * self.costs.speech_hybrid_server_factor
            / self.costs.speech_server_speed
        )
        yield from self.warden.remote_recognize(payload, work)

    # ------------------------------------------------------------------
    def recommend_mode(self, energy_fraction_remaining):
        """Pick an execution strategy from the energy state.

        The paper: "In practice, the optimal strategy will depend on
        resource availability and the user's tolerance for low-fidelity
        recognition."  The policy here: disconnected clients must run
        locally; with plentiful energy, local recognition gives the
        best interactive latency; as energy drains, offload — hybrid
        first (greatest savings, Section 3.4), falling back to remote
        when even the first phase is too expensive locally.
        """
        if not self._connected():
            return "local"
        if energy_fraction_remaining > 0.6:
            return "local"
        if energy_fraction_remaining > 0.15:
            return "hybrid"
        return "remote"

    def set_mode(self, mode):
        """Switch execution strategy (takes effect at the next utterance)."""
        if mode not in SPEECH_MODES:
            raise ValueError(f"unknown speech mode {mode!r}")
        if mode != "local" and self.warden is None:
            raise ValueError(f"{mode} recognition requires a speech warden")
        self.mode = mode

    @staticmethod
    def available_models():
        """Model names and their real-time factors (for documentation)."""
        return dict(SPEECH_MODELS)
