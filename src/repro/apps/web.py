"""The adaptive Web browser (paper Section 3.6).

An unmodified Netscape routes requests to a client-side proxy that
interacts with Odyssey; Odyssey forwards each request, annotated with
the desired fidelity, to a distillation server that transcodes images
to lower fidelity with lossy JPEG compression before transmission over
the variable-quality link (the Fox et al. strategy, with fidelity
control at the client).  Think time after display is charged to the
application.
"""

from __future__ import annotations

from repro.apps.base import AdaptiveApplication
from repro.apps.costs import DEFAULT_COSTS
from repro.core.warden import Warden
from repro.hardware.display import Rect
from repro.workloads.images import JPEG_QUALITIES
from repro.workloads.thinktime import DEFAULT_THINK_S, FixedThinkTime

__all__ = ["WebWarden", "WebBrowser", "WEB_LEVELS"]

WEB_LEVELS = JPEG_QUALITIES  # ("jpeg-5", ..., "full"), lowest first

# Netscape was almost full-screen at all fidelities in the paper's
# experiments — which is why Section 4 expects no zoned-display benefit.
NETSCAPE_WINDOW = Rect(0, 0, 780, 560)


class WebWarden(Warden):
    """Web-type warden: distillation fetches through the proxy."""

    def __init__(self, channel, costs=DEFAULT_COSTS):
        super().__init__("web", channel=channel)
        self.costs = costs

    def fetch_image(self, image, quality):
        """Generator: fetch ``image`` distilled to ``quality``."""
        self.requests += 1
        nbytes = image.bytes_at(quality)
        machine = self.channel.link.machine
        # Client proxy intercepts the request before it reaches Odyssey.
        yield from machine.compute(
            self.costs.web_proxy_s_per_call, "proxy", "_HandleRequest"
        )
        # Distillation transcodes the original; work scales with the
        # *full* image size regardless of the target quality.
        distill = (
            image.full_bytes * self.costs.web_distill_s_per_byte
            if quality != "full"
            else 0.0
        )
        yield from self.channel.call(
            self.costs.web_request_bytes, nbytes, work_units=distill
        )
        overhead = (
            self.costs.odyssey_s_per_call + nbytes * self.costs.odyssey_s_per_byte
        )
        yield from machine.compute(overhead, "odyssey", "_rpc2_RecvPacket")
        return nbytes


class WebBrowser(AdaptiveApplication):
    """Netscape + proxy on Odyssey."""

    process_name = "netscape"

    def __init__(self, machine, warden, xserver, priority=4,
                 costs=DEFAULT_COSTS, think_time=None, start_level=None):
        super().__init__(
            "web", machine, WEB_LEVELS, priority=priority, start_level=start_level
        )
        self.warden = warden
        self.xserver = xserver
        self.costs = costs
        self.think_time = think_time or FixedThinkTime(DEFAULT_THINK_S)
        self.pages_viewed = 0

    def window_rect(self):
        return NETSCAPE_WINDOW

    def browse(self, image, quality=None):
        """Generator: fetch, render, and absorb one image."""
        level = quality if quality is not None else self.fidelity
        nbytes = yield from self.warden.fetch_image(image, level)
        # Netscape decodes and lays out the received image.
        yield from self.machine.compute(
            nbytes * self.costs.web_render_s_per_byte, self.process_name, "_Layout"
        )
        # X paints it; cost follows the decoded size, which scales with
        # the received bytes for JPEG-distilled GIFs.
        yield from self.xserver.render_bytes(
            nbytes, self.costs.web_render_s_per_byte * 0.3
        )
        yield from self.think(self.think_time.next())
        self.pages_viewed += 1
        self.items_completed += 1
        return nbytes
