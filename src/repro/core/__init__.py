"""Odyssey core: fidelity adaptation and goal-directed energy management."""

from repro.core.cache import CacheError, DiskCache
from repro.core.demand import DemandPredictor, alpha_for_halflife
from repro.core.expectations import (
    ExpectationError,
    ExpectationMonitor,
    ExpectationRegistry,
    ResourceWindow,
)
from repro.core.fidelity import FidelityError, FidelityLadder
from repro.core.goal import GoalDirectedController
from repro.core.hysteresis import DEGRADE, HOLD, UPGRADE, AdaptationTrigger
from repro.core.odyssey import MEASURED_OVERHEAD_W, Odyssey
from repro.core.priority import PriorityLadder
from repro.core.supply import EnergySupply
from repro.core.upcalls import Upcall
from repro.core.viceroy import Viceroy
from repro.core.warden import Warden, WardenError

__all__ = [
    "FidelityLadder",
    "FidelityError",
    "Warden",
    "WardenError",
    "Viceroy",
    "Upcall",
    "EnergySupply",
    "DemandPredictor",
    "alpha_for_halflife",
    "AdaptationTrigger",
    "HOLD",
    "DEGRADE",
    "UPGRADE",
    "PriorityLadder",
    "GoalDirectedController",
    "Odyssey",
    "MEASURED_OVERHEAD_W",
    "DiskCache",
    "CacheError",
    "ResourceWindow",
    "ExpectationRegistry",
    "ExpectationMonitor",
    "ExpectationError",
]
