"""Priority-based selection of which application adapts (Section 5.1.3).

When multiple applications execute concurrently, Odyssey always tries
to degrade a lower-priority application before degrading a
higher-priority one; upgrades occur in the reverse order.  Priorities
are static user-specified integers (larger = more important).
"""

from __future__ import annotations

__all__ = ["PriorityLadder"]


class PriorityLadder:
    """Orders adaptive applications for degrade/upgrade selection.

    Entries are objects exposing ``name``, ``priority``, ``can_degrade()``,
    ``can_upgrade()``, ``degrade()`` and ``upgrade()`` — the protocol
    implemented by :class:`repro.apps.base.AdaptiveApplication` and by
    the lightweight clients used in tests.
    """

    def __init__(self, applications=()):
        self.applications = list(applications)
        self._check_unique_names()

    def _check_unique_names(self):
        names = [app.name for app in self.applications]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate application names: {names}")

    def add(self, application):
        self.applications.append(application)
        self._check_unique_names()

    def remove(self, name):
        self.applications = [a for a in self.applications if a.name != name]

    def by_priority(self, ascending=True):
        """Applications sorted by priority (ties break by insertion order)."""
        indexed = list(enumerate(self.applications))
        indexed.sort(key=lambda pair: (pair[1].priority, pair[0]),
                     reverse=not ascending)
        return [app for _i, app in indexed]

    def pick_degrade(self):
        """Lowest-priority application that can still degrade, or None."""
        for app in self.by_priority(ascending=True):
            if app.can_degrade():
                return app
        return None

    def pick_upgrade(self):
        """Highest-priority application that can still upgrade, or None.

        The reverse of degradation order: the most important
        application recovers fidelity first.
        """
        for app in self.by_priority(ascending=False):
            if app.can_upgrade():
                return app
        return None
