"""Wardens: type-specific data components (paper Section 2.2).

A warden encapsulates the functionality of one data type — video,
speech, map, Web image — mediating between the application and the
remote server for that type.  The application-specific wardens in
:mod:`repro.apps` subclass :class:`Warden` and implement ``fetch``-style
operations whose cost depends on the requested fidelity; the viceroy
keeps the registry (one warden per data type in the system).
"""

from __future__ import annotations

__all__ = ["Warden", "WardenError"]


class WardenError(Exception):
    """Invalid warden registration or operation."""


class Warden:
    """Base class for type-specific wardens.

    Parameters
    ----------
    data_type:
        The data type this warden serves (e.g. ``"video"``); unique
        within a viceroy.
    channel:
        Optional :class:`repro.net.RpcChannel` to the type's server.
    """

    def __init__(self, data_type, channel=None):
        self.data_type = data_type
        self.channel = channel
        self.requests = 0

    def __repr__(self):
        return f"<Warden {self.data_type} requests={self.requests}>"

    def describe_fidelities(self):
        """Names of the fidelity levels this warden's type supports.

        Subclasses override; Odyssey allows each application to specify
        the fidelity levels it currently supports (Section 2.2).
        """
        return []
