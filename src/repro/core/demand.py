"""Future energy-demand prediction (paper Section 5.1.2).

Odyssey relies on smoothed observations of present and past power
usage — not on applications declaring future usage.  The smoothing
function is ``new = (1 - alpha) * sample + alpha * old``; alpha is set
so that the half-life of the decay equals a fixed fraction (10 % after
the paper's sensitivity analysis, Figure 21) of the time remaining
until the goal.  Distant goal -> large alpha -> stability; imminent
goal -> small alpha -> agility.

Predicted demand is the smoothed power multiplied by the time
remaining.
"""

from __future__ import annotations

__all__ = ["DemandPredictor", "alpha_for_halflife"]


def alpha_for_halflife(halflife, dt):
    """Per-sample old-estimate weight giving the requested half-life.

    After ``halflife`` seconds of samples arriving every ``dt`` seconds
    the weight of the old estimate must have decayed to one half:
    ``alpha ** (halflife / dt) == 0.5``.
    """
    if dt <= 0:
        raise ValueError(f"sample interval must be positive, got {dt}")
    if halflife <= 0:
        return 0.0  # no memory: agility dominates at the goal boundary
    return 0.5 ** (dt / halflife)


class DemandPredictor:
    """Exponentially smoothed power estimator with goal-relative half-life.

    Parameters
    ----------
    halflife_fraction:
        Half-life as a fraction of time remaining to the goal (paper
        default 0.10; Figure 21 sweeps 0.01–0.15).
    """

    def __init__(self, halflife_fraction=0.10):
        if halflife_fraction <= 0:
            raise ValueError(
                f"half-life fraction must be positive, got {halflife_fraction}"
            )
        self.halflife_fraction = halflife_fraction
        self.smoothed_watts = None
        self.samples_seen = 0

    def update(self, watts, dt, time_remaining):
        """Fold one power sample into the smoothed estimate."""
        self.samples_seen += 1
        if self.smoothed_watts is None:
            self.smoothed_watts = watts
            return self.smoothed_watts
        halflife = self.halflife_fraction * max(0.0, time_remaining)
        alpha = alpha_for_halflife(halflife, dt)
        self.smoothed_watts = (1.0 - alpha) * watts + alpha * self.smoothed_watts
        return self.smoothed_watts

    def predict(self, time_remaining):
        """Predicted energy demand (joules) until the goal."""
        if self.smoothed_watts is None:
            return 0.0
        return self.smoothed_watts * max(0.0, time_remaining)
