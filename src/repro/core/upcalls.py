"""Upcall notifications from Odyssey to applications.

When resource levels stray beyond an application's expectation, Odyssey
notifies it through an upcall (paper Section 2.2); the application then
adjusts its fidelity to match the new resource level.  For energy the
two upcall kinds are *degrade* (predicted demand exceeds supply) and
*upgrade* (supply comfortably exceeds demand).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Upcall", "DEGRADE", "UPGRADE"]

DEGRADE = "degrade"
UPGRADE = "upgrade"


@dataclass(frozen=True)
class Upcall:
    """One notification delivered to an application.

    Attributes
    ----------
    time:
        Simulated time of delivery.
    kind:
        ``"degrade"`` or ``"upgrade"``.
    application:
        Target application name.
    new_level:
        The fidelity level the application moved to.
    """

    time: float
    kind: str
    application: str
    new_level: str
