"""Fidelity: the degree to which data presented at the client matches
the reference copy at the server (paper Section 2.2).

Fidelity is type-specific — video degrades by lossy compression and
window size, speech by vocabulary/acoustic-model complexity, maps by
filtering and cropping, images by JPEG quality.  For adaptation
purposes each application exposes an ordered *ladder* of named fidelity
configurations; Odyssey moves applications up and down their ladders.
"""

from __future__ import annotations

__all__ = ["FidelityError", "FidelityLadder"]


class FidelityError(Exception):
    """Invalid fidelity specification or transition."""


class FidelityLadder:
    """An ordered set of fidelity levels for one application.

    Index 0 is the *lowest* fidelity (maximum energy savings) and the
    last index the *highest* (best user experience).  Applications
    start at the highest fidelity — Odyssey's secondary goal is to
    offer as high a fidelity as possible at all times (Section 5.1).

    Examples
    --------
    >>> ladder = FidelityLadder("video", ["combined", "premiere-c", "baseline"])
    >>> ladder.current
    'baseline'
    >>> ladder.degrade()
    'premiere-c'
    >>> ladder.at_bottom
    False
    """

    def __init__(self, name, levels, start=None):
        if not levels:
            raise FidelityError(f"{name}: at least one fidelity level required")
        if len(set(levels)) != len(levels):
            raise FidelityError(f"{name}: duplicate fidelity levels {levels}")
        self.name = name
        self.levels = list(levels)
        self.index = len(levels) - 1 if start is None else self.levels.index(start)
        self.transitions = 0

    def __len__(self):
        return len(self.levels)

    def __repr__(self):
        return f"<FidelityLadder {self.name} {self.current!r} ({self.index + 1}/{len(self)})>"

    @property
    def current(self):
        """Name of the current fidelity level."""
        return self.levels[self.index]

    @property
    def at_top(self):
        """True at the highest fidelity (no upgrade possible)."""
        return self.index == len(self.levels) - 1

    @property
    def at_bottom(self):
        """True at the lowest fidelity (no degrade possible)."""
        return self.index == 0

    def degrade(self):
        """Step one level down; returns the new level name."""
        if self.at_bottom:
            raise FidelityError(f"{self.name}: already at lowest fidelity")
        self.index -= 1
        self.transitions += 1
        return self.current

    def upgrade(self):
        """Step one level up; returns the new level name."""
        if self.at_top:
            raise FidelityError(f"{self.name}: already at highest fidelity")
        self.index += 1
        self.transitions += 1
        return self.current

    def set_level(self, level):
        """Jump directly to a named level (counts as one transition)."""
        if level not in self.levels:
            raise FidelityError(f"{self.name}: unknown level {level!r}")
        new_index = self.levels.index(level)
        if new_index != self.index:
            self.index = new_index
            self.transitions += 1
        return self.current

    def normalized(self):
        """Position in [0, 1]: 0 = lowest fidelity, 1 = highest."""
        if len(self.levels) == 1:
            return 1.0
        return self.index / (len(self.levels) - 1)
