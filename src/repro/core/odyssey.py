"""The Odyssey facade: one object wiring the whole platform together.

Composes the machine's online power feed, the viceroy, and (optionally)
a goal-directed controller, so applications and experiments interact
with a single entry point — the shape of the client architecture in the
paper's Figure 3.
"""

from __future__ import annotations

from repro.core.goal import GoalDirectedController
from repro.core.viceroy import Viceroy
from repro.powerscope.online import OnlinePowerMonitor
from repro.sim.timeline import Timeline

__all__ = ["Odyssey", "MEASURED_OVERHEAD_W"]

# Paper Section 5.1.4: the measured prediction overhead of the prototype
# is 4 mW; with a SmartBattery-style measurement source the total power
# overhead is expected to stay under 14 mW.
MEASURED_OVERHEAD_W = 0.004


class Odyssey:
    """Energy-aware adaptation platform bound to one client machine."""

    def __init__(self, machine, sample_period=0.1, timeline=None,
                 model_overhead=False, monitor=None):
        self.machine = machine
        self.sim = machine.sim
        self.timeline = timeline if timeline is not None else Timeline()
        # The viceroy shares the machine's metrics registry and stamps
        # its trace events with the machine's power-journal span ids.
        self.viceroy = Viceroy(
            self.sim, timeline=self.timeline, machine=machine,
            metrics=getattr(machine, "metrics", None),
        )
        self.metrics = self.viceroy.metrics
        # Power source: the on-line PowerScope by default, or any object
        # with the same subscribe/start interface — e.g. the coarse
        # SmartBatteryGauge the paper proposes for deployment (§5.1.1).
        self.monitor = monitor or OnlinePowerMonitor(machine, period=sample_period)
        self.controller = None
        if model_overhead:
            # Charge Odyssey's own prediction cost to the machine, as
            # an always-on component — completeness over significance
            # (4 mW is 0.07 % of background power).
            from repro.hardware.component import PowerComponent

            machine.attach(
                PowerComponent(
                    "odyssey-overhead", {"on": MEASURED_OVERHEAD_W}, "on"
                )
            )

    # ------------------------------------------------------------------
    # delegation to the viceroy
    # ------------------------------------------------------------------
    def register_warden(self, warden):
        return self.viceroy.register_warden(warden)

    def register_application(self, application):
        return self.viceroy.register_application(application)

    # ------------------------------------------------------------------
    # goal-directed adaptation
    # ------------------------------------------------------------------
    def set_goal(self, initial_energy, goal_seconds, **controller_kwargs):
        """Create (but do not start) a goal-directed controller."""
        self.controller = GoalDirectedController(
            self.viceroy,
            self.monitor,
            initial_energy=initial_energy,
            goal_seconds=goal_seconds,
            timeline=self.timeline,
            **controller_kwargs,
        )
        return self.controller

    def start(self):
        """Start adaptation (requires :meth:`set_goal` first)."""
        if self.controller is None:
            raise RuntimeError("set_goal must be called before start")
        self.controller.start()

    def summary(self):
        """Experiment summary from the active controller."""
        if self.controller is None:
            raise RuntimeError("no goal-directed controller configured")
        return self.controller.summary()
