"""The viceroy: Odyssey's resource monitor and manager (Section 2.2).

The viceroy is responsible for monitoring the availability of resources
and managing their use.  For energy it keeps the warden registry and
the set of registered adaptive applications with their priorities, and
delivers degrade/upgrade upcalls chosen by the priority ladder.
"""

from __future__ import annotations

from repro.core.priority import PriorityLadder
from repro.core.upcalls import DEGRADE, UPGRADE, Upcall
from repro.core.warden import WardenError
from repro.obs.metrics import current_metrics

__all__ = ["Viceroy"]


class _SharedUpcalls:
    """Immutable view of the upcall log for the snapshot shared channel.

    ``upcalls`` are the live frozen :class:`Upcall` objects; ``rows``
    are their flat JSON rows, cached so on-disk materialization never
    re-walks the log.
    """

    __slots__ = ("upcalls", "rows")

    def __init__(self, upcalls, rows):
        self.upcalls = upcalls
        self.rows = rows

    def materialize(self):
        # Fresh lists: payload consumers may mutate what they get back,
        # and the inner rows are shared with the viceroy's live cache.
        return [list(row) for row in self.rows]


class Viceroy:
    """Warden registry + application registry + upcall delivery.

    When ``machine`` is supplied, every upcall and fidelity trace event
    carries a ``power_span`` argument — the machine's journal span id
    covering the instant — so traces join back to watts and joules
    (see :mod:`repro.obs.export`).
    """

    def __init__(self, sim, timeline=None, machine=None, metrics=None):
        self.sim = sim
        self.timeline = timeline
        self.machine = machine
        self.wardens = {}
        self.ladder = PriorityLadder()
        self.upcalls = []
        # Flat-row cache for snapshot capture, grown lazily alongside
        # the (append-only) upcall log.
        self._upcall_rows = []
        tracer = getattr(sim, "tracer", None)
        self._trace = tracer.gate("core") if tracer is not None else None
        self.metrics = metrics if metrics is not None else current_metrics()
        self._m_upcalls = self.metrics.counter("core.upcalls")
        self._m_degrades = self.metrics.counter("core.upcalls.degrade")
        self._m_upgrades = self.metrics.counter("core.upcalls.upgrade")

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_warden(self, warden):
        """Add a type-specific warden (one per data type)."""
        if warden.data_type in self.wardens:
            raise WardenError(f"warden for {warden.data_type!r} already registered")
        self.wardens[warden.data_type] = warden
        return warden

    def warden_for(self, data_type):
        """Look up the warden serving ``data_type``."""
        if data_type not in self.wardens:
            raise WardenError(f"no warden registered for {data_type!r}")
        return self.wardens[data_type]

    def register_application(self, application):
        """Register an adaptive application for energy adaptation."""
        self.ladder.add(application)
        self._record_fidelity(application)
        return application

    @property
    def applications(self):
        return list(self.ladder.applications)

    def set_priority(self, name, priority):
        """Change an application's priority at runtime.

        The paper's prototype used static priorities but was
        implementing "an interface to allow users to change priority
        dynamically" (Section 5.1.3); subsequent degrade/upgrade
        decisions use the new ordering immediately.
        """
        for app in self.ladder.applications:
            if app.name == name:
                app.priority = priority
                return app
        raise KeyError(f"no application named {name!r}")

    # ------------------------------------------------------------------
    # upcall delivery
    # ------------------------------------------------------------------
    def degrade_once(self, decision_id=None):
        """Degrade the lowest-priority degradable app; None if none can.

        ``decision_id`` is the goal controller's stable decision id;
        the upcall and fidelity trace events carry it as ``did`` so
        :mod:`repro.obs.diff` can align upcalls across policy runs.
        """
        app = self.ladder.pick_degrade()
        if app is None:
            return None
        new_level = app.degrade()
        return self._log_upcall(DEGRADE, app, new_level, decision_id)

    def upgrade_once(self, decision_id=None):
        """Upgrade the highest-priority upgradable app; None if none can."""
        app = self.ladder.pick_upgrade()
        if app is None:
            return None
        new_level = app.upgrade()
        return self._log_upcall(UPGRADE, app, new_level, decision_id)

    def _log_upcall(self, kind, app, new_level, decision_id=None):
        upcall = Upcall(self.sim.now, kind, app.name, new_level)
        self.upcalls.append(upcall)
        self._m_upcalls.inc()
        (self._m_degrades if kind == DEGRADE else self._m_upgrades).inc()
        if self._trace is not None:
            args = {
                "application": app.name,
                "level": new_level,
                "power_span": self._power_span(),
            }
            if decision_id is not None:
                args["did"] = decision_id
            self._trace.instant(
                self.sim.now, "core", f"upcall.{kind}", track=app.name,
                args=args,
            )
        self._record_fidelity(app, decision_id)
        return upcall

    def _power_span(self):
        """Journal span id for event↔energy joins; None without a machine."""
        machine = self.machine
        return machine.power_span_id() if machine is not None else None

    def _record_fidelity(self, app, decision_id=None):
        level = getattr(app, "fidelity_level", None)
        normalized = getattr(app, "fidelity_normalized", None)
        level = level() if callable(level) else level
        normalized = normalized() if callable(normalized) else normalized
        if self._trace is not None:
            args = {
                "application": app.name,
                "level": level,
                "normalized": normalized,
                "power_span": self._power_span(),
            }
            if decision_id is not None:
                args["did"] = decision_id
            self._trace.instant(
                self.sim.now, "core", "fidelity", track=app.name,
                args=args,
            )
        if self.timeline is not None:
            self.timeline.record(
                self.sim.now, "fidelity", app.name, (level, normalized),
            )

    # ------------------------------------------------------------------
    # snapshot protocol (repro.snapshot)
    # ------------------------------------------------------------------
    def __snapshot__(self, ctx):
        """Upcall history only; application fidelity state is owned by
        the applications themselves (register each one separately).

        The upcall log is append-only and every :class:`Upcall` frozen,
        so capture shares the log by reference instead of re-serializing
        it; the flat-row cache grows in step with the log, making the
        per-capture cost O(upcalls since the last capture).
        """
        upcalls = self.upcalls
        rows = self._upcall_rows
        for u in upcalls[len(rows):]:
            rows.append([u.time, u.kind, u.application, u.new_level])
        shared = _SharedUpcalls(tuple(upcalls), tuple(rows))
        return {
            "upcalls": ctx.share("upcalls", shared),
            "priorities": {
                app.name: app.priority for app in self.ladder.applications
            },
        }

    def __restore__(self, state, ctx):
        upcall_state = state["upcalls"]
        if type(upcall_state) is dict:
            shared = ctx.shared("upcalls")
            if shared is None:
                raise WardenError(
                    "shared upcall-log marker without a live structure; "
                    "flat restores must carry materialized rows"
                )
            # Upcall objects are frozen; only the list itself is private.
            self.upcalls = list(shared.upcalls)
            self._upcall_rows = list(shared.rows)
        else:
            self.upcalls = [
                Upcall(time, kind, application, new_level)
                for time, kind, application, new_level in upcall_state
            ]
            self._upcall_rows = [list(row) for row in upcall_state]
        for name, priority in state["priorities"].items():
            self.set_priority(name, priority)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def adaptation_counts(self):
        """Number of upcalls delivered per application name."""
        counts = {app.name: 0 for app in self.ladder.applications}
        for upcall in self.upcalls:
            counts[upcall.application] = counts.get(upcall.application, 0) + 1
        return counts
