"""Adaptation triggering with hysteresis (paper Section 5.1.3).

Degrade when predicted demand exceeds residual energy.  Upgrade only
when residual energy exceeds predicted demand by a margin that is the
sum of two components:

* a *variable* component, 5 % of residual energy — bias toward
  stability when energy is plentiful, agility when it is scarce;
* a *constant* component, 1 % of the initial energy — bias against
  fidelity improvements when residual energy is low.
"""

from __future__ import annotations

__all__ = ["AdaptationTrigger", "HOLD", "DEGRADE", "UPGRADE"]

HOLD = "hold"
DEGRADE = "degrade"
UPGRADE = "upgrade"


class AdaptationTrigger:
    """Decides degrade / upgrade / hold from supply and demand."""

    def __init__(self, initial_energy, variable_fraction=0.05,
                 constant_fraction=0.01, safety_fraction=0.0):
        if initial_energy <= 0:
            raise ValueError(f"initial energy must be positive, got {initial_energy}")
        if variable_fraction < 0 or constant_fraction < 0:
            raise ValueError("hysteresis fractions must be >= 0")
        if not 0.0 <= safety_fraction < 1.0:
            raise ValueError(f"safety fraction {safety_fraction} outside [0, 1)")
        self.initial_energy = initial_energy
        self.variable_fraction = variable_fraction
        self.constant_fraction = constant_fraction
        self.safety_fraction = safety_fraction

    def upgrade_margin(self, residual):
        """Joules by which supply must exceed demand to allow an upgrade."""
        return (
            self.variable_fraction * max(0.0, residual)
            + self.constant_fraction * self.initial_energy
        )

    def decide(self, predicted_demand, residual):
        """Return ``"degrade"``, ``"upgrade"`` or ``"hold"``.

        A small safety fraction biases degradation conservative: the
        smoothed-power predictor under-estimates upcoming bursts during
        workload lulls, so demand is compared against slightly less
        than the full residual.
        """
        if predicted_demand > residual * (1.0 - self.safety_fraction):
            return DEGRADE
        if residual - predicted_demand > self.upgrade_margin(residual):
            return UPGRADE
        return HOLD
