"""Resource expectations: the original Odyssey adaptation API.

Section 2.2 of the paper: "Odyssey allows each application to specify
the fidelity levels it currently supports, along with a set of API
extensions for expressing resource expectations.  If resource levels
stray beyond an application's expectation, Odyssey notifies it through
an upcall.  The application then adjusts its fidelity to match the new
resource level, and communicates a new set of expectations to Odyssey."

This module implements that loop for an arbitrary scalar resource
(network bandwidth in the initial Odyssey prototype).  Applications
register a :class:`ResourceWindow` plus an upcall; the registry is
checked against the monitored level, and on violation the application's
upcall runs and must return the *new* window (re-registering its
expectation).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ResourceWindow",
    "ExpectationRegistry",
    "ExpectationMonitor",
    "ExpectationError",
]


class ExpectationError(Exception):
    """Invalid expectation registration."""


@dataclass(frozen=True)
class ResourceWindow:
    """A tolerance window [low, high] on a scalar resource level."""

    low: float
    high: float

    def __post_init__(self):
        if self.low < 0 or self.high < self.low:
            raise ExpectationError(
                f"invalid window [{self.low}, {self.high}]"
            )

    def contains(self, level):
        return self.low <= level <= self.high


class _Expectation:
    __slots__ = ("name", "window", "upcall", "violations")

    def __init__(self, name, window, upcall):
        self.name = name
        self.window = window
        self.upcall = upcall
        self.violations = 0


class ExpectationRegistry:
    """Tracks per-application expectations for one resource.

    Parameters
    ----------
    resource_name:
        Resource being tracked (e.g. ``"bandwidth"``), for messages.
    """

    def __init__(self, resource_name):
        self.resource_name = resource_name
        self._expectations = {}
        self.upcalls_delivered = 0

    def register(self, name, window, upcall):
        """Register (or replace) an application's expectation.

        ``upcall(level, window)`` runs on violation and must return the
        application's new :class:`ResourceWindow` (or ``None`` to keep
        the old one, e.g. when the app cannot adapt further).
        """
        if not isinstance(window, ResourceWindow):
            raise ExpectationError(f"{name}: window must be a ResourceWindow")
        self._expectations[name] = _Expectation(name, window, upcall)

    def unregister(self, name):
        self._expectations.pop(name, None)

    def window_of(self, name):
        """The currently registered window for an application."""
        expectation = self._expectations.get(name)
        return expectation.window if expectation else None

    def check(self, level):
        """Compare ``level`` against every expectation; deliver upcalls.

        Returns the list of application names notified.
        """
        notified = []
        for expectation in list(self._expectations.values()):
            if expectation.window.contains(level):
                continue
            expectation.violations += 1
            self.upcalls_delivered += 1
            notified.append(expectation.name)
            new_window = expectation.upcall(level, expectation.window)
            if new_window is not None:
                if not isinstance(new_window, ResourceWindow):
                    raise ExpectationError(
                        f"{expectation.name}: upcall must return a "
                        f"ResourceWindow or None"
                    )
                expectation.window = new_window
        return notified


class ExpectationMonitor:
    """Periodically compares a resource level against a registry.

    This is the viceroy's resource-monitoring loop: ``level_fn()``
    produces the current level (e.g. a bandwidth estimator's EWMA) and
    the registry delivers upcalls to applications whose expectation
    windows it violates.
    """

    def __init__(self, sim, registry, level_fn, period=1.0):
        if period <= 0:
            raise ExpectationError(f"period must be positive, got {period}")
        self.sim = sim
        self.registry = registry
        self.level_fn = level_fn
        self.period = period
        self.checks = 0
        self._running = False
        self._entry = None
        tracer = getattr(sim, "tracer", None)
        self._trace = tracer.gate("core") if tracer is not None else None

    def start(self):
        if self._running:
            return
        self._running = True
        self._entry = self.sim.schedule(self.period, self._tick)

    def stop(self):
        self._running = False

    def _tick(self, _time):
        if not self._running:
            return
        level = self.level_fn()
        if level is not None:
            self.checks += 1
            notified = self.registry.check(level)
            if notified and self._trace is not None:
                for name in notified:
                    self._trace.instant(
                        self.sim.now, "core", "expectation.violation",
                        track="expectations",
                        args={
                            "application": name,
                            "resource": self.registry.resource_name,
                            "level": level,
                        },
                    )
        self._entry = self.sim.schedule(self.period, self._tick)

    # ------------------------------------------------------------------
    # snapshot protocol (repro.snapshot)
    # ------------------------------------------------------------------
    def __snapshot__(self, ctx):
        """Monitor loop + registry windows; upcall callables are not
        serialized — the builder re-registers them, and restore only
        re-applies the windows they had adapted to."""
        ctx.claim(self._entry, "tick")
        registry = self.registry
        return {
            "running": self._running,
            "checks": self.checks,
            "upcalls_delivered": registry.upcalls_delivered,
            "expectations": [
                [e.name, e.window.low, e.window.high, e.violations]
                for e in registry._expectations.values()
            ],
        }

    def __restore__(self, state, ctx):
        self._running = bool(state["running"])
        self.checks = int(state["checks"])
        registry = self.registry
        registry.upcalls_delivered = int(state["upcalls_delivered"])
        for name, low, high, violations in state["expectations"]:
            expectation = registry._expectations.get(name)
            if expectation is None:
                raise ExpectationError(
                    f"snapshot expectation {name!r} not re-registered "
                    f"by the builder"
                )
            expectation.window = ResourceWindow(low, high)
            expectation.violations = int(violations)
        for when, seq, kind in ctx.events():
            if kind != "tick":
                raise ExpectationError(
                    f"unexpected expectation event kind {kind!r}"
                )
            self._entry = ctx.push(when, seq, self._tick)
