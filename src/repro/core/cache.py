"""Energy-aware client data caching.

Odyssey is implemented as a Linux VFS file system (paper Section 2.2),
so wardens can cache fetched data on the local disk.  Whether that
*saves* energy is the classic trade-off studied by the disk-management
work the paper cites (Douglis et al., Li et al.): a cache hit avoids
the wireless fetch but may have to spin the disk up, and keeping the
disk spinning costs 0.72 W over standby.

:class:`DiskCache` implements an LRU byte-capacity cache whose reads
and writes run through the machine's disk power model, and
:meth:`DiskCache.fetch_through` wraps any network fetch with
cache-first behaviour so experiments can measure the crossover.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["DiskCache", "CacheError"]


class CacheError(Exception):
    """Invalid cache configuration or operation."""


class DiskCache:
    """LRU disk cache with energy-accurate hits and fills.

    Parameters
    ----------
    machine:
        Machine whose ``disk`` component backs the cache.
    capacity_bytes:
        Maximum resident bytes; least-recently-used entries evict.
    power_manager:
        Optional :class:`~repro.hardware.PowerManager`; disk activity
        resets its spin-down timer so the disk behaves realistically
        around cache traffic.
    write_back:
        Fill the cache on miss (True) or operate read-only (False).
    """

    def __init__(self, machine, capacity_bytes, power_manager=None,
                 write_back=True):
        if capacity_bytes <= 0:
            raise CacheError(f"capacity must be positive, got {capacity_bytes}")
        if "disk" not in machine.components:
            raise CacheError("machine has no disk to back the cache")
        self.machine = machine
        self.capacity_bytes = capacity_bytes
        self.power_manager = power_manager
        self.write_back = write_back
        self._entries = OrderedDict()  # key -> nbytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @property
    def disk(self):
        return self.machine["disk"]

    @property
    def resident_bytes(self):
        return sum(self._entries.values())

    def __contains__(self, key):
        return key in self._entries

    def __len__(self):
        return len(self._entries)

    # ------------------------------------------------------------------
    def read(self, key, process="odyssey"):
        """Generator: read a cached object from disk; returns its bytes.

        Raises ``KeyError`` for absent keys — call sites decide between
        :meth:`read` and a network fetch via :meth:`fetch_through`.
        """
        if key not in self._entries:
            raise KeyError(f"cache miss for {key!r}")
        nbytes = self._entries[key]
        self._entries.move_to_end(key)
        self.hits += 1
        yield from self.disk.read(self.machine, nbytes, process=process,
                                  procedure="_cache_read")
        self._note_activity()
        return nbytes

    def insert(self, key, nbytes, process="odyssey"):
        """Generator: write an object into the cache, evicting LRU."""
        if nbytes > self.capacity_bytes:
            return  # too large to ever cache; skip silently
        while self.resident_bytes + nbytes > self.capacity_bytes:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = nbytes
        yield from self.disk.write(self.machine, nbytes, process=process,
                                   procedure="_cache_write")
        self._note_activity()

    def fetch_through(self, key, fetch_generator_fn, process="odyssey"):
        """Generator: cache-first fetch.

        On hit, the object is read from disk; on miss,
        ``fetch_generator_fn()`` runs (a network fetch returning the
        object's size in bytes) and, in write-back mode, the result is
        inserted.  Returns ``(nbytes, hit)``.
        """
        if key in self._entries:
            nbytes = yield from self.read(key, process=process)
            return nbytes, True
        self.misses += 1
        nbytes = yield from fetch_generator_fn()
        if self.write_back:
            yield from self.insert(key, nbytes, process=process)
        return nbytes, False

    def invalidate(self, key=None):
        """Drop one entry (or everything when ``key`` is None)."""
        if key is None:
            self._entries.clear()
        else:
            self._entries.pop(key, None)

    def _note_activity(self):
        if self.power_manager is not None:
            self.power_manager.note_disk_activity()
