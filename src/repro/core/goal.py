"""Goal-directed energy adaptation (paper Section 5.1).

Odyssey periodically performs three tasks: determine residual energy
(from 100 ms power samples), predict future demand (smoothed power x
time remaining), and decide whether applications should change
fidelity (hysteresis trigger + priority ladder).  Decisions run twice
a second; fidelity *improvements* are capped at one per 15 seconds to
guard against excessive adaptation from energy transients.

If demand exceeds supply and no application can degrade further, the
specified duration is infeasible and the user is alerted as early as
possible (the ``infeasible`` flag / callback).
"""

from __future__ import annotations

from repro.core.demand import DemandPredictor
from repro.core.hysteresis import DEGRADE, UPGRADE, AdaptationTrigger
from repro.core.supply import EnergySupply

__all__ = ["GoalDirectedController"]


class GoalDirectedController:
    """Drives application adaptation toward a battery-duration goal.

    Parameters
    ----------
    viceroy:
        :class:`~repro.core.viceroy.Viceroy` holding the applications.
    monitor:
        :class:`~repro.powerscope.OnlinePowerMonitor` power feed.
    initial_energy:
        Joules available at start (user-supplied, Section 5.2).
    goal_seconds:
        Desired battery duration, measured from :meth:`start`.
    halflife_fraction:
        Smoothing half-life as a fraction of remaining time (0.10).
    decision_period:
        Seconds between adaptation decisions (paper: 0.5).
    upgrade_min_interval:
        Minimum seconds between fidelity improvements (paper: 15).
    timeline:
        Optional :class:`~repro.sim.Timeline`; receives ``supply`` and
        ``demand`` series for Figure 19-style traces.
    """

    def __init__(self, viceroy, monitor, initial_energy, goal_seconds,
                 halflife_fraction=0.10, decision_period=0.5,
                 upgrade_min_interval=15.0, variable_fraction=0.05,
                 constant_fraction=0.01, safety_fraction=0.03,
                 timeline=None, on_infeasible=None):
        if goal_seconds <= 0:
            raise ValueError(f"goal must be positive, got {goal_seconds}")
        self.viceroy = viceroy
        self.monitor = monitor
        self.sim = viceroy.sim
        self.supply = EnergySupply(initial_energy)
        self.predictor = DemandPredictor(halflife_fraction)
        self.trigger = AdaptationTrigger(
            initial_energy,
            variable_fraction=variable_fraction,
            constant_fraction=constant_fraction,
            safety_fraction=safety_fraction,
        )
        self.goal_seconds = goal_seconds
        self.decision_period = decision_period
        self.upgrade_min_interval = upgrade_min_interval
        self.timeline = timeline
        self.on_infeasible = on_infeasible

        self.start_time = None
        self.goal_time = None
        self.running = False
        self.goal_reached = False
        self.infeasible_reported = False
        self.last_upgrade_time = None
        self.decisions = 0
        self._entry = None
        self._subscribed = False

        tracer = getattr(self.sim, "tracer", None)
        self._trace = tracer.gate("core") if tracer is not None else None
        self.metrics = viceroy.metrics
        self._m_decisions = self.metrics.counter("goal.decisions")
        self._m_infeasible = self.metrics.counter("goal.infeasible")
        self._m_demand_ratio = self.metrics.histogram(
            "goal.demand_ratio",
            buckets=(0.5, 0.8, 0.9, 0.95, 1.0, 1.05, 1.1, 1.25, 2.0),
        )

    # ------------------------------------------------------------------
    @property
    def time_remaining(self):
        """Seconds until the goal (0 when reached or not started)."""
        if self.goal_time is None:
            return self.goal_seconds
        return max(0.0, self.goal_time - self.sim.now)

    @property
    def residual_energy(self):
        return self.supply.residual

    def predicted_demand(self):
        """Current demand estimate over the remaining time."""
        return self.predictor.predict(self.time_remaining)

    # ------------------------------------------------------------------
    def start(self):
        """Begin monitoring and deciding; the goal clock starts now."""
        if self.running:
            return
        self.running = True
        self.start_time = self.sim.now
        self.goal_time = self.sim.now + self.goal_seconds
        self.monitor.subscribe(self._on_power_sample)
        self._subscribed = True
        self.monitor.start()
        self._entry = self.sim.schedule(self.decision_period, self._decide)

    def stop(self):
        """Stop deciding (the monitor keeps other subscribers running)."""
        self.running = False

    def extend_goal(self, extra_seconds, extra_energy=0.0):
        """Push the goal later (user revises the duration estimate).

        The paper's Figure 22 experiment extends a 2:45 goal by 30
        minutes at the end of the first hour.  ``extra_energy`` allows
        a simultaneous revision of the available-energy estimate.
        """
        if extra_seconds < 0:
            raise ValueError(f"cannot shorten the goal with {extra_seconds}")
        self.goal_time += extra_seconds
        self.goal_seconds += extra_seconds
        if extra_energy:
            self.supply.add(extra_energy)

    # ------------------------------------------------------------------
    def _on_power_sample(self, time, watts, dt):
        if not self.running:
            return
        self.supply.on_sample(time, watts, dt)
        self.predictor.update(watts, dt, self.time_remaining)

    def _decide(self, _time):
        if not self.running:
            return
        now = self.sim.now
        if now >= self.goal_time:
            self.goal_reached = True
            self.running = False
            return
        demand = self.predicted_demand()
        residual = self.supply.residual
        if self.timeline is not None:
            self.timeline.record(now, "energy", "supply", residual)
            self.timeline.record(now, "energy", "demand", demand)
        self.decisions += 1
        # Stable decision id: decisions fire on a fixed period from
        # :meth:`start`, so the k-th decision of two runs under
        # different policies lands at the same sim instant.  Alignment
        # in :mod:`repro.obs.diff` keys on this id, not on position in
        # the event stream (which shifts with every extra upcall).
        did = self.decisions
        self._m_decisions.inc()
        if residual > 0.0:
            self._m_demand_ratio.observe(demand / residual)

        action = self._choose_action(now, did, demand, residual)
        trace = self._trace
        if trace is not None:
            trace.counter(now, "core", "supply_j", residual, track="goal")
            trace.counter(now, "core", "demand_j", demand, track="goal")
            trace.instant(
                now, "core", f"decision.{action}", track="goal",
                args={
                    "did": did,
                    "supply": residual,
                    "demand": demand,
                    "power_span": self.viceroy._power_span(),
                },
            )
        if action == DEGRADE:
            upcall = self.viceroy.degrade_once(decision_id=did)
            if upcall is None and not self.infeasible_reported:
                # Everything is already at lowest fidelity yet demand
                # still exceeds supply: the duration is infeasible.
                self.infeasible_reported = True
                self._m_infeasible.inc()
                if trace is not None:
                    trace.instant(
                        now, "core", "infeasible", track="goal",
                        args={"did": did, "supply": residual,
                              "demand": demand},
                    )
                if self.on_infeasible is not None:
                    self.on_infeasible(now, demand, residual)
        elif action == UPGRADE and self._upgrade_allowed(now):
            upcall = self.viceroy.upgrade_once(decision_id=did)
            if upcall is not None:
                self.last_upgrade_time = now
        self._entry = self.sim.schedule(self.decision_period, self._decide)

    def _choose_action(self, now, did, demand, residual):
        """Pick HOLD/DEGRADE/UPGRADE for one decision.

        The base policy is the paper's hysteresis trigger; subclasses
        (:class:`repro.snapshot.lookahead.LookaheadGoalController`)
        override this to vet the trigger's proposal against forked
        what-if branches.
        """
        return self.trigger.decide(demand, residual)

    def _upgrade_allowed(self, now):
        if self.last_upgrade_time is None:
            return True
        return now - self.last_upgrade_time >= self.upgrade_min_interval

    # ------------------------------------------------------------------
    # snapshot protocol (repro.snapshot)
    # ------------------------------------------------------------------
    def __snapshot__(self, ctx):
        ctx.claim(self._entry, "decide")
        return {
            "supply": {
                "initial": self.supply.initial,
                "consumed": self.supply.consumed,
            },
            "predictor": {
                "smoothed_watts": self.predictor.smoothed_watts,
                "samples_seen": self.predictor.samples_seen,
            },
            "goal_seconds": self.goal_seconds,
            "goal_time": self.goal_time,
            "start_time": self.start_time,
            "running": self.running,
            "goal_reached": self.goal_reached,
            "infeasible_reported": self.infeasible_reported,
            "last_upgrade_time": self.last_upgrade_time,
            "decisions": self.decisions,
            "subscribed": self._subscribed,
        }

    def __restore__(self, state, ctx):
        self.supply.initial = state["supply"]["initial"]
        self.supply.consumed = state["supply"]["consumed"]
        self.predictor.smoothed_watts = state["predictor"]["smoothed_watts"]
        self.predictor.samples_seen = state["predictor"]["samples_seen"]
        self.goal_seconds = state["goal_seconds"]
        self.goal_time = state["goal_time"]
        self.start_time = state["start_time"]
        self.running = bool(state["running"])
        self.goal_reached = bool(state["goal_reached"])
        self.infeasible_reported = bool(state["infeasible_reported"])
        self.last_upgrade_time = state["last_upgrade_time"]
        self.decisions = int(state["decisions"])
        if state["subscribed"] and not self._subscribed:
            # start() never ran on this fresh instance; re-wire the
            # power feed (the monitor does not serialize callables).
            self.monitor.subscribe(self._on_power_sample)
            self._subscribed = True
        for when, seq, kind in ctx.events():
            if kind != "decide":
                raise ValueError(f"unexpected goal event kind {kind!r}")
            self._entry = ctx.push(when, seq, self._decide)

    # ------------------------------------------------------------------
    def summary(self):
        """Result record for the Figure 20/21/22-style tables."""
        return {
            "goal_seconds": self.goal_seconds,
            "goal_reached": self.goal_reached,
            "residual_energy": self.supply.residual,
            "adaptations": self.viceroy.adaptation_counts(),
            "decisions": self.decisions,
            "infeasible": self.infeasible_reported,
        }
