"""Residual-energy accounting (paper Section 5.1.1).

Odyssey is given an initial energy value and thereafter determines
residual energy by integrating measured power, assuming constant power
consumption between samples.  This is Odyssey's *belief* about the
battery — deliberately separate from the hardware battery model, whose
ground truth the belief should track (tests assert it does).
"""

from __future__ import annotations

__all__ = ["EnergySupply"]


class EnergySupply:
    """Tracks residual energy from periodic power samples."""

    def __init__(self, initial_joules):
        if initial_joules <= 0:
            raise ValueError(f"initial energy must be positive, got {initial_joules}")
        self.initial = float(initial_joules)
        self.consumed = 0.0

    def on_sample(self, _time, watts, dt):
        """Integrate one power sample over its interval."""
        if dt < 0:
            raise ValueError(f"negative sample interval {dt}")
        self.consumed += watts * dt

    @property
    def residual(self):
        """Joules Odyssey believes remain (may go negative if overrun)."""
        return self.initial - self.consumed

    @property
    def fraction_remaining(self):
        return max(0.0, self.residual) / self.initial

    @property
    def depleted(self):
        """True once the believed residual reaches zero."""
        return self.residual <= 0.0

    def add(self, joules):
        """Credit extra energy (e.g. a revised user estimate)."""
        if joules < 0:
            raise ValueError(f"cannot add negative energy {joules}")
        self.initial += joules
