"""The composite machine: component aggregation, energy integration,
and PowerScope-style attribution.

Power model
-----------
Total machine power is the sum of component powers plus a *superlinear
correction*: the paper measured 10.28 W with everything on, 0.21 W more
than the sum of the individual component draws, and a 5.6 W background
(display dim, WaveLAN and disk in standby) that likewise exceeds the
component sum slightly.  The correction is a pluggable callable so the
ThinkPad 560X calibration can reproduce both published totals.

Attribution model
-----------------
PowerScope attributes each current sample — i.e. the *whole machine's*
instantaneous power — to the process/procedure executing at sample time
(paper Section 2.1).  The machine therefore maintains an execution
context stack (process, procedure); the bottom of the stack is the
kernel idle loop.  Asynchronous network interrupt handling is modeled
as an *overlay*: while a transfer is in flight, a fixed fraction of
wall time executes the interrupt handler, so that fraction of energy is
attributed to ``Interrupts-WaveLAN`` exactly as in the paper's Figure 2.

These continuously integrated, exactly attributed energies are the
ground truth; :mod:`repro.powerscope` reconstructs them by statistical
sampling, and tests assert the two agree.
"""

from __future__ import annotations

import itertools

from repro.hardware.component import HardwareError
from repro.sim.resources import Resource

__all__ = ["Machine", "IDLE_PROCESS", "IDLE_PROCEDURE"]

IDLE_PROCESS = "Idle"
IDLE_PROCEDURE = "_kernel_idle"


class Machine:
    """A mobile computer assembled from power components.

    Parameters
    ----------
    sim:
        The driving :class:`~repro.sim.Simulator`.
    supply:
        Object with ``drain(joules)`` (battery or external supply).
    voltage:
        Input voltage; the paper notes it is controlled to within
        0.25 %, so current = power / voltage.
    correction:
        ``callable(machine) -> watts`` superlinear correction term.
    """

    def __init__(self, sim, supply, voltage=16.0, correction=None,
                 timeline=None, scheduler=None):
        self.sim = sim
        self.supply = supply
        self.voltage = voltage
        self.correction = correction or (lambda machine: 0.0)
        self.timeline = timeline
        self.components = {}
        self.cpu_resource = Resource(sim, capacity=1, name="cpu")
        # One disk head: concurrent accesses serialize (thrashing is
        # only painful because of this).
        self.disk_resource = Resource(sim, capacity=1, name="disk")
        # Optional quantum scheduler (repro.sim.scheduler) replaces the
        # FIFO whole-burst CPU model with round-robin time-slicing.
        self.scheduler = scheduler
        self._context_stack = [(IDLE_PROCESS, IDLE_PROCEDURE)]
        self._context_tokens = itertools.count(1)
        self._token_stack = [0]
        self._overlays = {}
        self._overlay_tokens = itertools.count(1)
        self._last_update = sim.now
        self.energy_total = 0.0
        self.energy_by_process = {}
        self.energy_by_procedure = {}
        self.energy_by_component = {}

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def attach(self, component):
        """Add a component; its state changes now integrate energy first."""
        if component.name in self.components:
            raise HardwareError(f"duplicate component {component.name!r}")
        self.components[component.name] = component
        component._pre_change = self.advance
        if self.timeline is not None:
            component.observe(
                lambda comp, old, new: self.timeline.record(
                    self.sim.now, "hardware", comp.name, new
                )
            )
        return component

    def __getitem__(self, name):
        return self.components[name]

    def __contains__(self, name):
        return name in self.components

    # ------------------------------------------------------------------
    # instantaneous readings
    # ------------------------------------------------------------------
    @property
    def power(self):
        """Instantaneous whole-machine draw in watts."""
        total = sum(c.power for c in self.components.values())
        return total + self.correction(self)

    @property
    def current(self):
        """Instantaneous current in amperes (what the multimeter samples)."""
        return self.power / self.voltage

    # ------------------------------------------------------------------
    # execution context (who gets the energy)
    # ------------------------------------------------------------------
    @property
    def context(self):
        """Current ``(process, procedure)`` attribution context."""
        return self._context_stack[-1]

    def push_context(self, process, procedure="main"):
        """Enter an attribution context; returns a token for pop."""
        self.advance()
        token = next(self._context_tokens)
        self._context_stack.append((process, procedure))
        self._token_stack.append(token)
        return token

    def pop_context(self, token):
        """Leave a context previously entered with :meth:`push_context`."""
        if token not in self._token_stack:
            raise HardwareError("pop_context with unknown token")
        self.advance()
        index = self._token_stack.index(token)
        del self._context_stack[index]
        del self._token_stack[index]

    def add_overlay(self, fraction, process, procedure="_interrupt"):
        """Attribute ``fraction`` of machine energy to ``process``.

        Models asynchronous activity (network interrupts) that steals a
        share of wall time from whatever context is executing.  Returns
        a handle for :meth:`remove_overlay`.  Overlapping overlay
        fractions are capped at 1.0 in total.
        """
        if not 0.0 <= fraction <= 1.0:
            raise HardwareError(f"overlay fraction {fraction} outside [0, 1]")
        self.advance()
        handle = next(self._overlay_tokens)
        self._overlays[handle] = (fraction, process, procedure)
        return handle

    def remove_overlay(self, handle):
        """Remove an attribution overlay."""
        if handle not in self._overlays:
            raise HardwareError("remove_overlay with unknown handle")
        self.advance()
        del self._overlays[handle]

    # ------------------------------------------------------------------
    # energy integration
    # ------------------------------------------------------------------
    def advance(self):
        """Integrate energy from the last update to the current instant.

        Power is piecewise constant, so integration is exact provided
        this runs before every state, context, or overlay change —
        which components and context methods guarantee.
        """
        now = self.sim.now
        dt = now - self._last_update
        if dt <= 0.0:
            self._last_update = now
            return
        self._last_update = now
        power = self.power
        energy = power * dt
        self.energy_total += energy
        # Non-ideal supplies (Peukert, recovery) scale their drain by
        # the instantaneous draw and relax during light load.
        note_power = getattr(self.supply, "note_power", None)
        if note_power is not None:
            note_power(power)
        self.supply.drain(energy)
        recover = getattr(self.supply, "recover", None)
        if recover is not None:
            recover(dt)

        # Per-component accounting (correction tracked as its own row).
        for name, comp in self.components.items():
            self.energy_by_component[name] = (
                self.energy_by_component.get(name, 0.0) + comp.power * dt
            )
        correction = self.correction(self)
        if correction:
            self.energy_by_component["(superlinear)"] = (
                self.energy_by_component.get("(superlinear)", 0.0) + correction * dt
            )

        # Attribution: overlays first, remainder to the current context.
        overlay_total = min(1.0, sum(f for f, _p, _pr in self._overlays.values()))
        scale = 1.0
        if overlay_total > 1.0:
            scale = 1.0 / overlay_total
        remaining = 1.0
        for fraction, process, procedure in self._overlays.values():
            share = min(fraction * scale, remaining)
            remaining -= share
            self._credit(process, procedure, energy * share)
        if remaining > 0.0:
            process, procedure = self.context
            self._credit(process, procedure, energy * remaining)

    def _credit(self, process, procedure, joules):
        if joules <= 0.0:
            return
        self.energy_by_process[process] = (
            self.energy_by_process.get(process, 0.0) + joules
        )
        key = (process, procedure)
        self.energy_by_procedure[key] = (
            self.energy_by_procedure.get(key, 0.0) + joules
        )

    # ------------------------------------------------------------------
    # structured activity helpers
    # ------------------------------------------------------------------
    def compute(self, duration, process, procedure="main"):
        """Generator: run a CPU burst with contention and attribution.

        Acquires the (single) CPU, marks it busy, attributes machine
        energy to ``process``/``procedure``, then restores the idle
        state.  Concurrent bursts serialize FIFO by default; with a
        quantum scheduler attached they interleave round-robin, with
        power state and attribution handled per slice.
        """
        cpu = self.components.get("cpu")
        token_box = []

        def on_grant():
            token_box.append(self.push_context(process, procedure))
            if cpu is not None:
                cpu.set_state("busy")

        def on_release():
            if cpu is not None:
                cpu.set_state("idle")
            self.pop_context(token_box.pop())

        if self.scheduler is not None:
            yield from self.scheduler.run(
                duration, owner=process,
                on_slice_start=on_grant, on_slice_end=on_release,
            )
        else:
            yield from self.cpu_resource.use(
                duration, owner=process, on_grant=on_grant, on_release=on_release
            )

    def idle_for(self, duration):
        """Generator: let simulated time pass with no activity."""
        yield self.sim.timeout(duration)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def finish(self):
        """Integrate up to the current instant and return total joules."""
        self.advance()
        return self.energy_total

    def energy_report(self):
        """Energy by process, largest first, after a final integration."""
        self.advance()
        return dict(
            sorted(self.energy_by_process.items(), key=lambda kv: -kv[1])
        )
