"""The composite machine: component aggregation, energy integration,
and PowerScope-style attribution.

Power model
-----------
Total machine power is the sum of component powers plus a *superlinear
correction*: the paper measured 10.28 W with everything on, 0.21 W more
than the sum of the individual component draws, and a 5.6 W background
(display dim, WaveLAN and disk in standby) that likewise exceeds the
component sum slightly.  The correction is a pluggable callable so the
ThinkPad 560X calibration can reproduce both published totals.

Because the power signal is piecewise constant, the machine caches the
instantaneous total (and the correction, computed once per refresh) and
invalidates the cache only when a component is about to change state —
components announce changes through their ``_pre_change`` hook, which
:meth:`Machine.attach` points at :meth:`Machine.power_will_change`.
Component authors adding new power-affecting mutations must call that
hook *before* mutating; see docs/architecture.md ("Performance").

Segment journal
---------------
Instead of updating the attribution dictionaries on every integration
step, :meth:`Machine.advance` appends to a *segment journal*: a list of
``(t0, t1, power, context, overlays, component powers)`` spans.
Consecutive advances with identical state extend the open span in
place, so the journal length is proportional to the number of genuine
change points, not to how often anyone polled.  Per-component and
per-process energies *fold* lazily from closed segments the first time
they are read; the lazy PowerScope sampler replays the journal to
synthesize its sample streams without ever scheduling a tick.

Attribution model
-----------------
PowerScope attributes each current sample — i.e. the *whole machine's*
instantaneous power — to the process/procedure executing at sample time
(paper Section 2.1).  The machine therefore maintains an execution
context stack (process, procedure); the bottom of the stack is the
kernel idle loop.  Asynchronous network interrupt handling is modeled
as an *overlay*: while a transfer is in flight, a fixed fraction of
wall time executes the interrupt handler, so that fraction of energy is
attributed to ``Interrupts-WaveLAN`` exactly as in the paper's Figure 2.

These continuously integrated, exactly attributed energies are the
ground truth; :mod:`repro.powerscope` reconstructs them by statistical
sampling, and tests assert the two agree.
"""

from __future__ import annotations

import json

from repro.hardware.component import HardwareError
from repro.obs.metrics import current_metrics
from repro.sim.resources import Resource

__all__ = ["Machine", "PowerSegment", "IDLE_PROCESS", "IDLE_PROCEDURE"]

IDLE_PROCESS = "Idle"
IDLE_PROCEDURE = "_kernel_idle"


class PowerSegment:
    """One piecewise-constant span of the machine's power signal.

    ``context``, ``overlays`` and ``comp_powers`` are immutable
    snapshots taken when the span opened; ``t1`` extends in place while
    the machine's state stays unchanged.  ``sid`` is the machine-unique
    segment id — the join key between trace events and the joules the
    span cost (see :mod:`repro.obs.export`).
    """

    __slots__ = ("t0", "t1", "power", "context", "overlays",
                 "comp_powers", "correction", "sid")

    def __init__(self, t0, t1, power, context, overlays, comp_powers,
                 correction, sid=0):
        self.t0 = t0
        self.t1 = t1
        self.power = power
        self.context = context
        self.overlays = overlays
        self.comp_powers = comp_powers
        self.correction = correction
        self.sid = sid

    @property
    def duration(self):
        return self.t1 - self.t0

    @property
    def energy(self):
        return self.power * (self.t1 - self.t0)

    def __repr__(self):
        return (f"<PowerSegment [{self.t0:.6f}, {self.t1:.6f}] "
                f"{self.power:.2f}W {self.context}>")


def _segment_row(s):
    """The JSON row for one segment — the snapshot wire format."""
    return [s.t0, s.t1, s.power, list(s.context),
            [list(o) for o in s.overlays],
            [list(cp) for cp in s.comp_powers], s.correction, s.sid]


class _SealedBlock:
    """A run of closed journal segments, serialized exactly once.

    Closed segments are immutable (``advance`` only ever touches the
    open tail), so a block can be shared by reference between the live
    machine, every snapshot taken after it was sealed, and every branch
    restored from those snapshots.  ``rows`` caches the JSON rows and
    ``nbytes`` their canonical encoding size — what a non-COW capture
    would have re-serialized each time.
    """

    __slots__ = ("segments", "rows", "nbytes")

    def __init__(self, segments, rows):
        self.segments = segments
        self.rows = rows
        self.nbytes = len(json.dumps(rows, separators=(",", ":")))


class _SharedJournal:
    """One capture's copy-on-write view of a machine journal.

    Holds the sealed-block tuple by reference plus a private copy of
    the open tail (which the parent keeps mutating), so capturing is
    O(new segments) instead of O(journal).  ``materialize()`` produces
    the exact flat row list a non-sharing capture would have emitted —
    the on-disk payload is byte-identical either way.
    """

    __slots__ = ("blocks", "flat", "flat_len", "suffix_segments",
                 "suffix_rows", "sealed_bytes")

    def __init__(self, blocks, flat, flat_len, suffix_segments, suffix_rows,
                 sealed_bytes):
        self.blocks = blocks
        # The machine's live flat sealed list plus the length at capture
        # time: later seals only append, so `flat[:flat_len]` is this
        # capture's immutable prefix (a compaction swaps in a new list
        # object, leaving this reference untouched).
        self.flat = flat
        self.flat_len = flat_len
        self.suffix_segments = suffix_segments
        self.suffix_rows = suffix_rows
        self.sealed_bytes = sealed_bytes

    def materialize(self):
        rows = []
        for block in self.blocks:
            rows.extend(block.rows)
        rows.extend(self.suffix_rows)
        return rows

    def shared_bytes(self):
        return self.sealed_bytes


class _ContextNode:
    """Doubly-linked context-stack entry, addressable by token in O(1)."""

    __slots__ = ("token", "process", "procedure", "prev", "next")

    def __init__(self, token, process, procedure):
        self.token = token
        self.process = process
        self.procedure = procedure
        self.prev = None
        self.next = None


class Machine:
    """A mobile computer assembled from power components.

    Parameters
    ----------
    sim:
        The driving :class:`~repro.sim.Simulator`.
    supply:
        Object with ``drain(joules)`` (battery or external supply).
    voltage:
        Input voltage; the paper notes it is controlled to within
        0.25 %, so current = power / voltage.
    correction:
        ``callable(machine) -> watts`` superlinear correction term.
        Evaluated once per power-cache refresh (i.e. once per state
        change), never per integration step.
    """

    #: Fold the journal automatically once this many unfolded segments
    #: accumulate, bounding both memory and worst-case fold latency.
    AUTO_FOLD_SEGMENTS = 4096

    def __init__(self, sim, supply, voltage=16.0, correction=None,
                 timeline=None, scheduler=None, metrics=None, profile=None):
        self.sim = sim
        self.supply = supply
        self.voltage = voltage
        self.correction = correction or (lambda machine: 0.0)
        self.timeline = timeline
        # Optional repro.devices.DeviceProfile: scales the wattage table
        # of every subsequently attached component.  Construction-time
        # identity (like `correction`), not snapshotted state — forks
        # rebuild it from the builder params.
        self.profile = profile
        self.components = {}
        self.cpu_resource = Resource(sim, capacity=1, name="cpu")
        # One disk head: concurrent accesses serialize (thrashing is
        # only painful because of this).
        self.disk_resource = Resource(sim, capacity=1, name="disk")
        # Optional quantum scheduler (repro.sim.scheduler) replaces the
        # FIFO whole-burst CPU model with round-robin time-slicing.
        self.scheduler = scheduler

        # Execution context: a doubly-linked stack with a dict from
        # token to node, so out-of-order pops are O(1) instead of a
        # list scan.  The sentinel at the bottom is the kernel idle loop.
        self._ctx_bottom = _ContextNode(0, IDLE_PROCESS, IDLE_PROCEDURE)
        self._ctx_top = self._ctx_bottom
        self._ctx_nodes = {}
        # Plain integers rather than itertools.count so a snapshot can
        # read and restore the counters without burning values.
        self._next_context_token = 1
        self._context = (IDLE_PROCESS, IDLE_PROCEDURE)

        self._overlays = {}
        self._next_overlay_token = 1
        self._overlays_snapshot = ()

        # Cached instantaneous power (piecewise constant between
        # component changes).  Dirty until first read.
        self._power = 0.0
        self._correction_value = 0.0
        self._comp_powers = ()
        self._power_dirty = True

        # Segment journal + lazily folded attribution accumulators.
        self._journal = []
        self._fold_index = 0
        self._journal_pins = 0
        self._folded_journal_energy = 0.0
        self._sid = 0  # last assigned segment id (1-based, monotonic)
        # Copy-on-write capture state: journal[:_sealed_len] is covered
        # by _sealed_blocks — closed, immutable, serialized once, and
        # shared by reference with every snapshot taken since.
        self._sealed_blocks = ()
        self._sealed_len = 0
        self._sealed_bytes = 0
        # Flat view of the sealed prefix, grown in step with the blocks
        # so restore adopts it with one slice instead of a block walk.
        # Not "owned" after adopting a parent's list: the next seal
        # copies before extending (the parent keeps growing it).
        self._sealed_flat = []
        self._sealed_flat_owned = True

        # Observability (repro.obs): the "power" trace gate emits one
        # complete-event per closed journal segment plus a watts
        # counter series; metrics default to the process-wide registry.
        tracer = getattr(sim, "tracer", None)
        self._trace = tracer.gate("power") if tracer is not None else None
        self._last_emitted_sid = 0
        # Branch identity: lookahead evaluators stamp forked machines so
        # their power/span events disentangle from the trunk's (see
        # repro.obs.export.power_spans).  None = the trunk.
        self.branch_id = None
        if self._trace is not None:
            self._trace.add_flush_hook(self.trace_flush)
        self.metrics = metrics if metrics is not None else current_metrics()
        self._m_segments = self.metrics.counter("machine.segments")
        self._m_folds = self.metrics.counter("machine.folds")
        self._m_energy = self.metrics.gauge("machine.energy_j")

        self._last_update = sim.now
        self.energy_total = 0.0
        self._energy_by_process = {}
        self._energy_by_procedure = {}
        self._energy_by_component = {}

        # The supply interface is fixed at construction; resolve the
        # optional methods once instead of via getattr on every advance.
        self._supply_drain = supply.drain
        self._supply_note_power = getattr(supply, "note_power", None)
        self._supply_recover = getattr(supply, "recover", None)

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def attach(self, component):
        """Add a component; its state changes now integrate energy first."""
        if component.name in self.components:
            raise HardwareError(f"duplicate component {component.name!r}")
        self.advance()
        if self.profile is not None:
            factor = self.profile.multiplier(component.name)
            if factor != 1.0:
                component.states = {
                    state: watts * factor
                    for state, watts in component.states.items()
                }
        self.components[component.name] = component
        component._pre_change = self.power_will_change
        self._power_dirty = True
        if self.timeline is not None:
            component.observe(
                lambda comp, old, new: self.timeline.record(
                    self.sim.now, "hardware", comp.name, new
                )
            )
        return component

    def __getitem__(self, name):
        return self.components[name]

    def __contains__(self, name):
        return name in self.components

    # ------------------------------------------------------------------
    # instantaneous readings
    # ------------------------------------------------------------------
    def _refresh_power(self):
        """Recompute the cached total, correction, and component split."""
        total = 0.0
        comp_powers = []
        for name, component in self.components.items():
            watts = component.power
            comp_powers.append((name, watts))
            total += watts
        self._comp_powers = tuple(comp_powers)
        self._correction_value = self.correction(self)
        self._power = total + self._correction_value
        self._power_dirty = False

    @property
    def power(self):
        """Instantaneous whole-machine draw in watts (cached)."""
        if self._power_dirty:
            self._refresh_power()
        return self._power

    @property
    def current(self):
        """Instantaneous current in amperes (what the multimeter samples)."""
        return self.power / self.voltage

    def power_will_change(self):
        """Integrate at the outgoing power, then invalidate the cache.

        Components call this (via their ``_pre_change`` hook) *before*
        any power-affecting mutation; the next :attr:`power` read — which
        necessarily happens after the mutation — recomputes the cache.
        """
        self.advance()
        self._power_dirty = True

    def invalidate_power(self):
        """Mark the cached power stale without integrating.

        Prefer :meth:`power_will_change`; this exists for component
        authors whose mutation already integrated through other means.
        """
        self._power_dirty = True

    # ------------------------------------------------------------------
    # execution context (who gets the energy)
    # ------------------------------------------------------------------
    @property
    def context(self):
        """Current ``(process, procedure)`` attribution context."""
        return self._context

    def push_context(self, process, procedure="main"):
        """Enter an attribution context; returns a token for pop."""
        self.advance()
        token = self._next_context_token
        self._next_context_token = token + 1
        node = _ContextNode(token, process, procedure)
        node.prev = self._ctx_top
        self._ctx_top.next = node
        self._ctx_top = node
        self._ctx_nodes[token] = node
        self._context = (process, procedure)
        return token

    def pop_context(self, token):
        """Leave a context previously entered with :meth:`push_context`.

        Pops may arrive out of order (concurrent activities interleave);
        removing a non-top entry unlinks it without disturbing the rest
        of the stack.
        """
        node = self._ctx_nodes.get(token)
        if node is None:
            raise HardwareError("pop_context with unknown token")
        self.advance()
        del self._ctx_nodes[token]
        node.prev.next = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._ctx_top = node.prev
        self._context = (self._ctx_top.process, self._ctx_top.procedure)

    def overlay_snapshot(self):
        """Current overlays as an immutable ``(fraction, process,
        procedure)`` tuple, in insertion order."""
        return self._overlays_snapshot

    def add_overlay(self, fraction, process, procedure="_interrupt"):
        """Attribute ``fraction`` of machine energy to ``process``.

        Models asynchronous activity (network interrupts) that steals a
        share of wall time from whatever context is executing.  Returns
        a handle for :meth:`remove_overlay`.  Overlapping overlay
        fractions are capped at 1.0 in total.
        """
        if not 0.0 <= fraction <= 1.0:
            raise HardwareError(f"overlay fraction {fraction} outside [0, 1]")
        self.advance()
        handle = self._next_overlay_token
        self._next_overlay_token = handle + 1
        self._overlays[handle] = (fraction, process, procedure)
        self._overlays_snapshot = tuple(self._overlays.values())
        return handle

    def remove_overlay(self, handle):
        """Remove an attribution overlay."""
        if handle not in self._overlays:
            raise HardwareError("remove_overlay with unknown handle")
        self.advance()
        del self._overlays[handle]
        self._overlays_snapshot = tuple(self._overlays.values())

    # ------------------------------------------------------------------
    # energy integration
    # ------------------------------------------------------------------
    def advance(self):
        """Integrate energy from the last update to the current instant.

        Power is piecewise constant, so integration is exact provided
        this runs before every state, context, or overlay change —
        which components and context methods guarantee.  The elapsed
        span joins the segment journal: it extends the open segment
        when nothing changed, and opens a new one otherwise.
        """
        now = self.sim.now
        t0 = self._last_update
        dt = now - t0
        if dt <= 0.0:
            self._last_update = now
            return
        self._last_update = now
        if self._power_dirty:
            self._refresh_power()
        power = self._power
        energy = power * dt
        self.energy_total += energy
        # Non-ideal supplies (Peukert, recovery) scale their drain by
        # the instantaneous draw and relax during light load.
        if self._supply_note_power is not None:
            self._supply_note_power(power)
        self._supply_drain(energy)
        if self._supply_recover is not None:
            self._supply_recover(dt)

        journal = self._journal
        if len(journal) > self._fold_index:
            last = journal[-1]
            if (last.power == power
                    and last.context is self._context
                    and last.overlays is self._overlays_snapshot
                    and last.comp_powers is self._comp_powers):
                last.t1 = now
                return
        trace = self._trace
        if trace is not None:
            if journal:
                self._trace_segment(journal[-1])
            trace.counter(t0, "power", "watts", power, track="watts")
        self._sid += 1
        journal.append(PowerSegment(
            t0, now, power, self._context, self._overlays_snapshot,
            self._comp_powers, self._correction_value, sid=self._sid,
        ))
        self._m_segments.inc()
        if (len(journal) - self._fold_index > self.AUTO_FOLD_SEGMENTS):
            self._fold()

    # ------------------------------------------------------------------
    # segment journal
    # ------------------------------------------------------------------
    @property
    def journal(self):
        """The live segment list (read-only by convention).

        Folded segments are compacted away unless a reader holds a pin
        (see :meth:`pin_journal`), so indices are only stable while
        pinned.
        """
        return self._journal

    def pin_journal(self):
        """Keep folded segments in memory until :meth:`unpin_journal`.

        Lazy samplers pin while running so they can replay every span
        between their start and stop instants.
        """
        self._journal_pins += 1

    def unpin_journal(self):
        """Release a pin taken with :meth:`pin_journal`."""
        if self._journal_pins <= 0:
            raise HardwareError("unpin_journal without matching pin")
        self._journal_pins -= 1

    def journal_energy(self):
        """Total joules recorded by the journal (folded + open spans)."""
        total = self._folded_journal_energy
        for segment in self._journal[self._fold_index:]:
            total += segment.power * (segment.t1 - segment.t0)
        return total

    def _fold(self):
        """Fold closed segments into the attribution accumulators.

        Folding is idempotent per segment; once every pin is released
        the folded prefix is discarded to bound memory.
        """
        journal = self._journal
        end = len(journal)
        if self._fold_index < end:
            by_component = self._energy_by_component
            for index in range(self._fold_index, end):
                segment = journal[index]
                dt = segment.t1 - segment.t0
                energy = segment.power * dt
                self._folded_journal_energy += energy
                for name, watts in segment.comp_powers:
                    by_component[name] = (
                        by_component.get(name, 0.0) + watts * dt
                    )
                if segment.correction:
                    by_component["(superlinear)"] = (
                        by_component.get("(superlinear)", 0.0)
                        + segment.correction * dt
                    )
                # Attribution: overlays first, remainder to the context.
                remaining = 1.0
                for fraction, process, procedure in segment.overlays:
                    share = min(fraction, remaining)
                    remaining -= share
                    self._credit(process, procedure, energy * share)
                if remaining > 0.0:
                    process, procedure = segment.context
                    self._credit(process, procedure, energy * remaining)
            self._fold_index = end
            self._m_folds.inc()
            self._m_energy.set(self.energy_total)
        if self._journal_pins == 0 and self._fold_index:
            if self._trace is not None:
                # The open segment is about to be compacted away; emit
                # it now or its span is lost (closed predecessors were
                # emitted at append time — the sid guard skips them).
                self._trace_segment(journal[self._fold_index - 1])
            del journal[:self._fold_index]
            self._fold_index = 0
            # Sealed blocks indexed the pre-compaction prefix; drop
            # them (snapshots holding references are unaffected) and
            # let the next capture reseal the now-short journal.
            self._sealed_blocks = ()
            self._sealed_len = 0
            self._sealed_bytes = 0
            self._sealed_flat = []
            self._sealed_flat_owned = True

    # ------------------------------------------------------------------
    # tracing (repro.obs)
    # ------------------------------------------------------------------
    def _trace_segment(self, segment):
        """Emit one ``power/span`` complete-event per journal segment.

        Idempotent via the monotonic sid guard: a segment may reach
        here when its successor is appended, when the fold compacts it
        away, or from the tracer's flush hook — it is emitted once.
        """
        if segment.sid <= self._last_emitted_sid:
            return
        self._last_emitted_sid = segment.sid
        dur = segment.t1 - segment.t0
        process, procedure = segment.context
        components = dict(segment.comp_powers)
        if segment.correction:
            components["(superlinear)"] = segment.correction
        args = {
            "sid": segment.sid,
            "watts": segment.power,
            "joules": segment.power * dur,
            "process": process,
            "procedure": procedure,
            "components": components,
        }
        # Stamped only on forks: trunk span payloads (and the goldens
        # pinned to them) stay byte-identical to the pre-branch format.
        if self.branch_id is not None:
            args["branch"] = self.branch_id
        self._trace.complete(
            segment.t0, "power", "span", dur=dur, track="machine",
            args=args,
        )

    def power_span_id(self):
        """The journal span id covering the current instant.

        Instrumented call sites stamp events with this sid as their
        ``power_span`` argument — the join key back to the watts and
        joules of the covering segment (:func:`repro.obs.export.join_power`).
        When no span is open yet the *next* sid is returned, a forward
        reference to the segment that will cover this instant.
        """
        self.advance()
        journal = self._journal
        return journal[-1].sid if journal else self._sid + 1

    def trace_flush(self):
        """Tracer flush hook: emit the still-open tail journal segment."""
        if self._trace is None:
            return
        self.advance()
        journal = self._journal
        if journal:
            self._trace_segment(journal[-1])

    def _credit(self, process, procedure, joules):
        if joules <= 0.0:
            return
        self._energy_by_process[process] = (
            self._energy_by_process.get(process, 0.0) + joules
        )
        key = (process, procedure)
        self._energy_by_procedure[key] = (
            self._energy_by_procedure.get(key, 0.0) + joules
        )

    # ------------------------------------------------------------------
    # folded accounting views
    # ------------------------------------------------------------------
    @property
    def energy_by_process(self):
        """Joules per process, folded from the journal on access."""
        self._fold()
        return self._energy_by_process

    @property
    def energy_by_procedure(self):
        """Joules per (process, procedure), folded on access."""
        self._fold()
        return self._energy_by_procedure

    @property
    def energy_by_component(self):
        """Joules per component (plus the correction row), folded on access."""
        self._fold()
        return self._energy_by_component

    # ------------------------------------------------------------------
    # structured activity helpers
    # ------------------------------------------------------------------
    def compute(self, duration, process, procedure="main"):
        """Generator: run a CPU burst with contention and attribution.

        Acquires the (single) CPU, marks it busy, attributes machine
        energy to ``process``/``procedure``, then restores the idle
        state.  Concurrent bursts serialize FIFO by default; with a
        quantum scheduler attached they interleave round-robin, with
        power state and attribution handled per slice.
        """
        cpu = self.components.get("cpu")
        token_box = []

        def on_grant():
            token_box.append(self.push_context(process, procedure))
            if cpu is not None:
                cpu.set_state("busy")

        def on_release():
            if cpu is not None:
                cpu.set_state("idle")
            self.pop_context(token_box.pop())

        if self.scheduler is not None:
            yield from self.scheduler.run(
                duration, owner=process,
                on_slice_start=on_grant, on_slice_end=on_release,
            )
        else:
            yield from self.cpu_resource.use(
                duration, owner=process, on_grant=on_grant, on_release=on_release
            )

    def idle_for(self, duration):
        """Generator: let simulated time pass with no activity."""
        yield self.sim.timeout(duration)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def finish(self):
        """Integrate up to the current instant and return total joules."""
        self.advance()
        self._m_energy.set(self.energy_total)
        return self.energy_total

    def energy_report(self):
        """Energy by process, largest first, after a final integration."""
        self.advance()
        return dict(
            sorted(self.energy_by_process.items(), key=lambda kv: -kv[1])
        )

    # ------------------------------------------------------------------
    # snapshot protocol (repro.snapshot)
    # ------------------------------------------------------------------
    def _seal_closed(self):
        """Extend the sealed-block cache over every closed segment.

        Only the last journal entry can still mutate (``advance``
        extends its ``t1`` in place), so everything before it is sealed:
        serialized once, then shared by reference with every later
        capture.  Amortized O(1) per segment over the machine's life.
        """
        journal = self._journal
        closed = len(journal) - 1 if journal else 0
        if closed > self._sealed_len:
            segments = journal[self._sealed_len:closed]
            block = _SealedBlock(
                tuple(segments), [_segment_row(s) for s in segments],
            )
            self._sealed_blocks = self._sealed_blocks + (block,)
            if not self._sealed_flat_owned:
                self._sealed_flat = self._sealed_flat[:self._sealed_len]
                self._sealed_flat_owned = True
            self._sealed_flat.extend(segments)
            self._sealed_len = closed
            self._sealed_bytes += block.nbytes

    def __snapshot__(self, ctx):
        """Serialize the full accounting state, journal included.

        Deliberately does NOT :meth:`advance` first: capture is
        side-effect free, and the not-yet-integrated span between
        ``_last_update`` and ``sim.now`` is integrated by the branch's
        first advance exactly as the uninterrupted run would.  The raw
        journal is serialized without folding — fold points are part of
        the replayable state.  The machine owns no heap entries, so it
        claims nothing.

        The journal travels on the shared-structure channel: the state
        dict carries a marker, the sealed prefix is shared by
        reference, and only the open tail is copied — capture cost is
        O(segments since the last capture), not O(journal).
        """
        if self._journal_pins:
            raise HardwareError(
                "cannot snapshot a machine while its journal is pinned"
            )
        self._seal_closed()
        suffix = self._journal[self._sealed_len:]
        journal_ref = ctx.share("journal", _SharedJournal(
            self._sealed_blocks,
            self._sealed_flat,
            self._sealed_len,
            tuple(
                PowerSegment(s.t0, s.t1, s.power, s.context, s.overlays,
                             s.comp_powers, s.correction, sid=s.sid)
                for s in suffix
            ),
            [_segment_row(s) for s in suffix],
            self._sealed_bytes,
        ))
        stack = []
        node = self._ctx_bottom.next
        while node is not None:
            stack.append([node.token, node.process, node.procedure])
            node = node.next
        return {
            "components": {
                name: comp.state for name, comp in self.components.items()
            },
            "context_stack": stack,
            "next_context_token": self._next_context_token,
            "overlays": [
                [token, fraction, process, procedure]
                for token, (fraction, process, procedure)
                in self._overlays.items()
            ],
            "next_overlay_token": self._next_overlay_token,
            "power": self._power,
            "correction_value": self._correction_value,
            "comp_powers": [list(cp) for cp in self._comp_powers],
            "power_dirty": self._power_dirty,
            "journal": journal_ref,
            "fold_index": self._fold_index,
            "folded_journal_energy": self._folded_journal_energy,
            "sid": self._sid,
            "last_emitted_sid": self._last_emitted_sid,
            "last_update": self._last_update,
            "energy_total": self.energy_total,
            "energy_by_process": dict(self._energy_by_process),
            "energy_by_procedure": [
                [process, procedure, joules]
                for (process, procedure), joules
                in self._energy_by_procedure.items()
            ],
            "energy_by_component": dict(self._energy_by_component),
        }

    def __restore__(self, state, ctx):
        if set(state["components"]) != set(self.components):
            raise HardwareError(
                f"snapshot components {sorted(state['components'])} do not "
                f"match machine components {sorted(self.components)}"
            )
        for name, comp_state in state["components"].items():
            component = self.components[name]
            if comp_state not in component.states:
                raise HardwareError(
                    f"{name}: snapshot state {comp_state!r} unknown"
                )
            component.state = comp_state
        self._ctx_nodes = {}
        self._ctx_top = self._ctx_bottom
        self._ctx_bottom.next = None
        for token, process, procedure in state["context_stack"]:
            node = _ContextNode(int(token), process, procedure)
            node.prev = self._ctx_top
            self._ctx_top.next = node
            self._ctx_top = node
            self._ctx_nodes[node.token] = node
        self._next_context_token = int(state["next_context_token"])
        self._context = (self._ctx_top.process, self._ctx_top.procedure)
        self._overlays = {
            int(token): (fraction, process, procedure)
            for token, fraction, process, procedure in state["overlays"]
        }
        self._next_overlay_token = int(state["next_overlay_token"])
        self._overlays_snapshot = tuple(self._overlays.values())
        self._power = state["power"]
        self._correction_value = state["correction_value"]
        self._comp_powers = tuple(
            (name, watts) for name, watts in state["comp_powers"]
        )
        self._power_dirty = bool(state["power_dirty"])
        journal_state = state["journal"]
        if type(journal_state) is dict:
            # COW adoption: sealed blocks join by reference (closed
            # segments are immutable), only the open tail is copied so
            # this branch's extensions stay private.
            shared = ctx.shared("journal")
            if shared is None:
                raise HardwareError(
                    "shared journal marker without a live structure; "
                    "flat restores must carry materialized rows"
                )
            journal = shared.flat[:shared.flat_len]
            journal.extend(
                PowerSegment(s.t0, s.t1, s.power, s.context, s.overlays,
                             s.comp_powers, s.correction, sid=s.sid)
                for s in shared.suffix_segments
            )
            self._journal = journal
            self._sealed_blocks = shared.blocks
            self._sealed_len = shared.flat_len
            self._sealed_bytes = shared.sealed_bytes
            self._sealed_flat = shared.flat
            self._sealed_flat_owned = False
        else:
            self._journal = [
                PowerSegment(
                    t0, t1, power, tuple(context),
                    tuple(tuple(o) for o in overlays),
                    tuple(tuple(cp) for cp in comp_powers),
                    correction, sid=sid,
                )
                for t0, t1, power, context, overlays, comp_powers,
                correction, sid in journal_state
            ]
            self._sealed_blocks = ()
            self._sealed_len = 0
            self._sealed_bytes = 0
            self._sealed_flat = []
            self._sealed_flat_owned = True
        # `advance` merges the open segment via identity (`is`) checks
        # on the context/overlays/component-power tuples, so wherever
        # the values still agree the open segment must share the
        # machine's *current* objects — otherwise the first post-restore
        # advance would open a spurious segment the uninterrupted run
        # never has.
        if self._journal:
            last = self._journal[-1]
            if last.context == self._context:
                last.context = self._context
            if last.overlays == self._overlays_snapshot:
                last.overlays = self._overlays_snapshot
            if last.comp_powers == self._comp_powers:
                last.comp_powers = self._comp_powers
        self._fold_index = int(state["fold_index"])
        self._folded_journal_energy = state["folded_journal_energy"]
        self._sid = int(state["sid"])
        self._last_emitted_sid = int(state["last_emitted_sid"])
        self._last_update = state["last_update"]
        self.energy_total = state["energy_total"]
        self._energy_by_process = dict(state["energy_by_process"])
        self._energy_by_procedure = {
            (process, procedure): joules
            for process, procedure, joules in state["energy_by_procedure"]
        }
        self._energy_by_component = dict(state["energy_by_component"])
