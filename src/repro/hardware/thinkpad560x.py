"""Calibration of the IBM ThinkPad 560X testbed (paper Figure 4).

Published component powers (Figure 4):

====================  ==========  =========
Component             State       Power (W)
====================  ==========  =========
Display               Bright      4.54
Display               Dim         1.95
WaveLAN               Idle        1.46
WaveLAN               Standby     0.18
Disk                  Idle        0.88
Disk                  Standby     0.16
Other (base)          Idle        3.20
====================  ==========  =========

Published totals the correction term reproduces:

* 10.28 W with screen brightest, disk and network idle — 0.21 W more
  than the component sum (4.54 + 1.46 + 0.88 + 3.20 = 10.08).
* 5.6 W background (display dim, WaveLAN & disk standby) — the
  component sum is 5.49 W, so the correction contributes ~0.11 W.

Powers the paper did not publish (CPU busy draw, NIC transmit/receive,
disk active) are calibration constants chosen from the literature the
paper cites (Stemm & Katz for WaveLAN; Douglis et al. for disks) and
tuned so the application-level results land in the paper's reported
bands; see DESIGN.md §5.
"""

from __future__ import annotations

from repro.hardware.battery import Battery, ExternalSupply
from repro.hardware.component import PowerComponent
from repro.hardware.cpu import Cpu
from repro.hardware.disk import Disk
from repro.hardware.display import Display, ZonedDisplay
from repro.hardware.machine import Machine
from repro.hardware.wavelan import WaveLan

__all__ = [
    "DISPLAY_BRIGHT_W",
    "DISPLAY_DIM_W",
    "WAVELAN_IDLE_W",
    "WAVELAN_STANDBY_W",
    "DISK_IDLE_W",
    "DISK_STANDBY_W",
    "BASE_W",
    "CPU_BUSY_EXTRA_W",
    "CPU_POLL_EXTRA_W",
    "WAVELAN_RECV_W",
    "WAVELAN_XMIT_W",
    "DISK_ACTIVE_W",
    "FULL_ON_TOTAL_W",
    "BACKGROUND_W",
    "VOLTAGE",
    "NOMINAL_BATTERY_J",
    "superlinear_correction",
    "build_machine",
]

# -- Figure 4 (published) ----------------------------------------------
DISPLAY_BRIGHT_W = 4.54
DISPLAY_DIM_W = 1.95
WAVELAN_IDLE_W = 1.46
WAVELAN_STANDBY_W = 0.18
DISK_IDLE_W = 0.88
DISK_STANDBY_W = 0.16
BASE_W = 3.20

# -- published totals reproduced by the correction term -----------------
FULL_ON_TOTAL_W = 10.28   # bright display, disk and network idle
BACKGROUND_W = 5.60       # dim display, WaveLAN & disk standby

# -- calibration constants (not in Figure 4; see module docstring) ------
CPU_BUSY_EXTRA_W = 9.0    # whole-system extra under load, above hlt baseline
CPU_POLL_EXTRA_W = 0.8    # idle loop without hlt (power management off)
WAVELAN_RECV_W = 2.50
WAVELAN_XMIT_W = 2.70
DISK_ACTIVE_W = 2.10
DISK_SPINUP_S = 2.5
VOLTAGE = 16.0            # external supply voltage (controlled to 0.25 %)
NOMINAL_BATTERY_J = 90_000.0   # fully charged 560X battery (Fig. 22)

SCREEN_WIDTH = 800
SCREEN_HEIGHT = 600


def superlinear_correction(machine):
    """The 560X's measured superlinearity.

    0.11 W whenever the machine is powered, plus a further 0.10 W when
    the display is bright — reproducing both published totals:
    10.08 + 0.21 = ~10.28 W full-on and 5.49 + 0.11 = 5.60 W background.
    """
    display = machine.components.get("display")
    extra = 0.10 if display is not None and display.state == Display.BRIGHT else 0.0
    return 0.11 + extra


def build_machine(sim, supply=None, timeline=None, zoned=None, scheduler=None,
                  profile=None):
    """Assemble a calibrated ThinkPad 560X model.

    Parameters
    ----------
    sim:
        Driving simulator.
    supply:
        Energy supply; defaults to an :class:`ExternalSupply` (the
        paper removed the battery during measurement).
    timeline:
        Optional :class:`~repro.sim.Timeline` to record state changes.
    zoned:
        ``None`` for the stock display, or ``(rows, cols)`` for the
        Section 4 zoned-backlighting projection (``(2, 2)`` = 4 zones,
        ``(2, 4)`` = 8 zones).
    scheduler:
        Optional :class:`~repro.sim.scheduler.QuantumScheduler` for
        round-robin CPU time-slicing (FIFO whole-burst by default).
    profile:
        Optional :class:`~repro.devices.DeviceProfile`; scales each
        component's wattage table as it is attached (the default
        ``None`` reproduces the calibrated Figure-4 machine exactly).
    """
    machine = Machine(
        sim,
        supply=supply if supply is not None else ExternalSupply(),
        voltage=VOLTAGE,
        correction=superlinear_correction,
        timeline=timeline,
        scheduler=scheduler,
        profile=profile,
    )
    machine.attach(PowerComponent("base", {"on": BASE_W}, "on"))
    machine.attach(Cpu(CPU_BUSY_EXTRA_W, poll_extra_watts=CPU_POLL_EXTRA_W))
    if zoned is None:
        display = Display(
            DISPLAY_BRIGHT_W, DISPLAY_DIM_W,
            width=SCREEN_WIDTH, height=SCREEN_HEIGHT,
        )
    else:
        rows, cols = zoned
        display = ZonedDisplay(
            DISPLAY_BRIGHT_W, DISPLAY_DIM_W, rows, cols,
            width=SCREEN_WIDTH, height=SCREEN_HEIGHT,
        )
    machine.attach(display)
    machine.attach(
        Disk(
            DISK_IDLE_W, DISK_STANDBY_W, DISK_ACTIVE_W,
            spinup_seconds=DISK_SPINUP_S,
        )
    )
    machine.attach(
        WaveLan(WAVELAN_IDLE_W, WAVELAN_STANDBY_W, WAVELAN_RECV_W, WAVELAN_XMIT_W)
    )
    return machine


def nominal_battery():
    """A fully charged 560X battery (~90 kJ, paper Section 5.4)."""
    return Battery(NOMINAL_BATTERY_J)
