"""Non-ideal battery models.

The paper deliberately removed the battery and used an external supply
"to avoid confounding effects due to non-ideal battery behavior"
(Section 3.2).  These models put those effects back, so the
reproduction can quantify what the paper avoided: rate-dependent
capacity (Peukert's law), recovery during light load, and a sloped
discharge voltage curve.  They plug into the machine exactly like the
ideal :class:`~repro.hardware.battery.Battery`.

References in the paper's bibliography that study these effects:
Douglis et al. on storage alternatives; the Smart Battery Data
Specification the paper proposes as a measurement source.
"""

from __future__ import annotations

import math

from repro.hardware.battery import SupplyError

__all__ = ["PeukertBattery", "RecoveryBattery", "VoltageCurve"]


class PeukertBattery:
    """Rate-dependent capacity following Peukert's law.

    Discharging at a power ``p`` above the rated power drains an
    *effective* energy of ``joules * (p / rated_power)**(k - 1)``:
    heavy bursts waste capacity, light loads approach the ideal.
    ``k`` is the Peukert exponent — 1.0 is an ideal battery; lithium-ion
    cells of the era are ~1.05, lead-acid ~1.2.
    """

    def __init__(self, capacity_joules, rated_power_w, exponent=1.05):
        if capacity_joules <= 0:
            raise SupplyError(f"capacity must be positive, got {capacity_joules}")
        if rated_power_w <= 0:
            raise SupplyError(f"rated power must be positive, got {rated_power_w}")
        if exponent < 1.0:
            raise SupplyError(f"Peukert exponent must be >= 1, got {exponent}")
        self.capacity = float(capacity_joules)
        self.rated_power_w = float(rated_power_w)
        self.exponent = float(exponent)
        self.drawn = 0.0
        self._last_power = rated_power_w

    def note_power(self, watts):
        """Record the instantaneous draw used to scale the next drain."""
        if watts < 0:
            raise SupplyError(f"negative power {watts}")
        self._last_power = max(watts, 1e-9)

    def drain(self, joules):
        if joules < 0:
            raise SupplyError(f"cannot drain negative energy {joules}")
        ratio = self._last_power / self.rated_power_w
        effective = joules * ratio ** (self.exponent - 1.0)
        self.drawn = min(self.capacity, self.drawn + effective)

    @property
    def residual(self):
        return self.capacity - self.drawn

    @property
    def exhausted(self):
        return self.residual <= 0.0

    @property
    def fraction_remaining(self):
        return self.residual / self.capacity


class RecoveryBattery:
    """Charge-recovery effect: idle periods restore a little capacity.

    Models the relaxation of cell chemistry after bursts.  A fraction
    of recently drained charge becomes available again while the draw
    stays below a threshold.  Conservative and bounded: total recovered
    energy never exceeds ``recovery_fraction`` of what was drained.
    """

    def __init__(self, capacity_joules, recovery_fraction=0.05,
                 idle_threshold_w=6.0, recovery_rate_w=0.5):
        if capacity_joules <= 0:
            raise SupplyError(f"capacity must be positive, got {capacity_joules}")
        if not 0.0 <= recovery_fraction < 1.0:
            raise SupplyError(
                f"recovery fraction {recovery_fraction} outside [0, 1)"
            )
        self.capacity = float(capacity_joules)
        self.recovery_fraction = recovery_fraction
        self.idle_threshold_w = idle_threshold_w
        self.recovery_rate_w = recovery_rate_w
        self.drawn = 0.0
        self.recovered = 0.0
        self._recovery_budget = 0.0
        self._last_power = 0.0

    def note_power(self, watts):
        self._last_power = watts

    def drain(self, joules):
        if joules < 0:
            raise SupplyError(f"cannot drain negative energy {joules}")
        self.drawn = min(self.capacity, self.drawn + joules)
        self._recovery_budget += joules * self.recovery_fraction

    def recover(self, dt):
        """Apply recovery over ``dt`` seconds of sufficiently light load."""
        if dt < 0:
            raise SupplyError(f"negative interval {dt}")
        if self._last_power > self.idle_threshold_w:
            return 0.0
        amount = min(self.recovery_rate_w * dt, self._recovery_budget, self.drawn)
        self.drawn -= amount
        self._recovery_budget -= amount
        self.recovered += amount
        return amount

    @property
    def residual(self):
        return self.capacity - self.drawn

    @property
    def exhausted(self):
        return self.residual <= 0.0

    @property
    def fraction_remaining(self):
        return self.residual / self.capacity


class VoltageCurve:
    """Li-ion style discharge voltage as a function of state of charge.

    Useful for SmartBattery-style gauges that estimate charge from
    terminal voltage: flat through the middle of the discharge, a bump
    at the top, a knee at the bottom.
    """

    def __init__(self, v_full=12.6, v_nominal=11.1, v_empty=9.0):
        if not v_empty < v_nominal < v_full:
            raise SupplyError(
                f"voltages must be ordered: {v_empty} < {v_nominal} < {v_full}"
            )
        self.v_full = v_full
        self.v_nominal = v_nominal
        self.v_empty = v_empty

    def voltage(self, fraction_remaining):
        """Terminal voltage at a state of charge in [0, 1]."""
        if not 0.0 <= fraction_remaining <= 1.0:
            raise SupplyError(
                f"state of charge {fraction_remaining} outside [0, 1]"
            )
        soc = fraction_remaining
        if soc >= 0.9:
            # Top bump: quick drop from v_full to the plateau.
            t = (soc - 0.9) / 0.1
            return self.v_nominal + (self.v_full - self.v_nominal) * t
        if soc >= 0.15:
            # Long flat plateau with a gentle slope.
            t = (soc - 0.15) / 0.75
            plateau_low = self.v_nominal - 0.25
            return plateau_low + (self.v_nominal - plateau_low) * t
        # Knee: exponential-looking drop to empty.
        t = soc / 0.15
        plateau_low = self.v_nominal - 0.25
        return self.v_empty + (plateau_low - self.v_empty) * math.sqrt(t)

    def soc_from_voltage(self, volts):
        """Inverse lookup (bisection): state of charge from voltage."""
        if volts >= self.v_full:
            return 1.0
        if volts <= self.v_empty:
            return 0.0
        lo, hi = 0.0, 1.0
        for _ in range(60):
            mid = (lo + hi) / 2
            if self.voltage(mid) < volts:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2
