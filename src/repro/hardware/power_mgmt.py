"""Hardware power-management policy (paper Section 3.1).

The paper's "Hardware-Only Power Mgmt." configuration powered down as
many components as possible for each application:

* disk placed in standby after 10 seconds of inactivity;
* wireless interface in standby except during RPCs or bulk transfers
  (implemented by the modified network layer, :mod:`repro.net`);
* display turned off when the application permits (speech), left
  bright otherwise.

When disabled (the "Baseline" configuration) the disk keeps spinning,
the NIC idles in receive-ready mode, and the display stays bright —
matching the paper's baseline with BIOS power management turned off.
"""

from __future__ import annotations

from repro.hardware.cpu import Cpu
from repro.hardware.disk import Disk
from repro.hardware.display import Display
from repro.hardware.wavelan import WaveLan

__all__ = ["PowerManager"]


class PowerManager:
    """Applies (or withholds) the paper's hardware power-management policy.

    Parameters
    ----------
    machine:
        The :class:`~repro.hardware.machine.Machine` to manage.
    enabled:
        False reproduces the paper's baseline (no power management).
    disk_spindown_timeout:
        Seconds of disk inactivity before standby (paper: 10 s).
    display_policy:
        ``"bright"`` (video, map, web) or ``"off"`` (speech — user
        interacts by voice, so the display can be dark).
    """

    def __init__(self, machine, enabled, disk_spindown_timeout=10.0,
                 display_policy="bright"):
        if display_policy not in ("bright", "dim", "off"):
            raise ValueError(f"invalid display policy {display_policy!r}")
        self.machine = machine
        self.enabled = enabled
        self.disk_spindown_timeout = disk_spindown_timeout
        self.display_policy = display_policy
        self._spindown_deadline = None

    # ------------------------------------------------------------------
    def apply_initial_states(self):
        """Configure component resting states before a run starts."""
        display = self.machine.components.get("display")
        disk = self.machine.components.get("disk")
        nic = self.machine.components.get("wavelan")
        cpu = self.machine.components.get("cpu")
        if not self.enabled:
            if display is not None:
                display.set_state(Display.BRIGHT)
            if disk is not None:
                disk.set_state(Disk.IDLE)
            if nic is not None:
                nic.set_resting_state(WaveLan.IDLE)
            if cpu is not None and isinstance(cpu, Cpu):
                cpu.set_resting_state(Cpu.POLL)
            return
        if cpu is not None and isinstance(cpu, Cpu):
            cpu.set_resting_state(Cpu.HALT)
        if display is not None:
            display.set_state(
                {
                    "bright": Display.BRIGHT,
                    "dim": Display.DIM,
                    "off": Display.OFF,
                }[self.display_policy]
            )
        if nic is not None:
            # Standby except during RPCs/bulk transfers (paper §3.1).
            nic.set_resting_state(WaveLan.STANDBY)
        if disk is not None:
            # Experiments start after >10 s of inactivity, so the disk
            # is already spun down ("the disk remains in standby mode
            # for the entire duration of an experiment", Section 3.3.2).
            # Later activity spins it up; the timer spins it back down.
            disk.standby()

    # ------------------------------------------------------------------
    def note_disk_activity(self):
        """Reset the spin-down timer after a disk access completes."""
        disk = self.machine.components.get("disk")
        if disk is None or not self.enabled:
            return
        self._schedule_spindown(disk)

    def _schedule_spindown(self, disk):
        deadline = self.machine.sim.now + self.disk_spindown_timeout
        self._spindown_deadline = deadline
        self.machine.sim.schedule(
            self.disk_spindown_timeout, lambda _t: self._maybe_spindown(disk)
        )

    def _maybe_spindown(self, disk):
        # Only the most recently scheduled timer may fire the spin-down;
        # later activity pushes the deadline forward and supersedes it.
        if not self.enabled or self._spindown_deadline is None:
            return
        if self.machine.sim.now + 1e-9 < self._spindown_deadline:
            return
        if disk.state == Disk.IDLE:
            disk.standby()
