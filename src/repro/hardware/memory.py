"""Physical-memory model with paging costs.

Paper Section 3.7 raises the one way concurrency can *increase* energy:
"if physical memory size is inadequate to accommodate the working sets
of two applications, their concurrent execution will trigger higher
paging activity, possibly leading to increased energy usage."  The
testbed's 64 MB held every working set, so the paper never measured
it; this model makes the effect measurable.

Applications declare working sets.  While the sum fits in physical
memory, compute runs at full speed.  When oversubscribed, a fraction of
compute time proportional to the memory *pressure* is spent servicing
page faults — disk reads that also keep the disk from spinning down.
"""

from __future__ import annotations

__all__ = ["MemorySystem", "MemoryError_"]


class MemoryError_(Exception):
    """Invalid memory declaration (underscore avoids the builtin)."""


class MemorySystem:
    """Tracks working sets and charges paging overhead.

    Parameters
    ----------
    machine:
        Machine whose disk services page faults.
    capacity_mb:
        Physical memory (the testbed had 64 MB).
    fault_fraction_per_pressure:
        Fraction of compute time spent paging per unit of pressure,
        where pressure = oversubscription / capacity.  E.g. with 0.5,
        working sets totalling 96 MB on a 64 MB machine (pressure 0.5)
        spend 25 % of compute time paging.
    fault_page_bytes:
        Bytes read from disk per fault burst.
    """

    def __init__(self, machine, capacity_mb=64.0,
                 fault_fraction_per_pressure=0.5,
                 fault_page_bytes=256 * 1024):
        if capacity_mb <= 0:
            raise MemoryError_(f"capacity must be positive, got {capacity_mb}")
        if fault_fraction_per_pressure < 0:
            raise MemoryError_("fault fraction must be >= 0")
        self.machine = machine
        self.capacity_mb = capacity_mb
        self.fault_fraction_per_pressure = fault_fraction_per_pressure
        self.fault_page_bytes = fault_page_bytes
        self.working_sets = {}
        self.faults = 0

    # ------------------------------------------------------------------
    def declare(self, name, megabytes):
        """Declare (or update) an application's working set."""
        if megabytes < 0:
            raise MemoryError_(f"{name}: negative working set {megabytes}")
        self.working_sets[name] = megabytes

    def release(self, name):
        """Drop an application's working set (it exited)."""
        self.working_sets.pop(name, None)

    @property
    def resident_mb(self):
        return sum(self.working_sets.values())

    @property
    def pressure(self):
        """Oversubscription as a fraction of capacity (0 when it fits)."""
        excess = self.resident_mb - self.capacity_mb
        return max(0.0, excess / self.capacity_mb)

    @property
    def oversubscribed(self):
        return self.pressure > 0.0

    def paging_fraction(self):
        """Fraction of compute time currently lost to paging."""
        return min(0.9, self.fault_fraction_per_pressure * self.pressure)

    # ------------------------------------------------------------------
    def compute(self, duration, process, procedure="main"):
        """Generator: a compute burst including paging overhead.

        Under pressure, the burst is stretched: the extra time is spent
        in page-fault disk reads attributed to the kernel (as PowerScope
        attributes fault handling), and the disk is kept busy — both
        effects the paper's Section 3.7 caveat anticipates.
        """
        fraction = self.paging_fraction()
        if fraction <= 0.0:
            yield from self.machine.compute(duration, process, procedure)
            return
        disk = self.machine.components.get("disk")
        paging_time = duration * fraction / (1.0 - fraction)
        # Interleave: split the burst into a handful of chunks so disk
        # activity is spread through the burst, not appended at the end.
        chunks = max(1, int(paging_time / 0.05))
        chunk_compute = duration / chunks
        chunk_fault_bytes = int(
            paging_time * (disk.read_bandwidth if disk else 2.5e6) / chunks
        )
        for _ in range(chunks):
            yield from self.machine.compute(chunk_compute, process, procedure)
            if disk is not None and chunk_fault_bytes > 0:
                self.faults += 1
                yield from disk.read(
                    self.machine, chunk_fault_bytes,
                    process="kernel", procedure="_page_fault",
                )
