"""Hardware power models for the simulated IBM ThinkPad 560X testbed."""

from repro.hardware.battery import Battery, ExternalSupply, SupplyError
from repro.hardware.battery_models import (
    PeukertBattery,
    RecoveryBattery,
    VoltageCurve,
)
from repro.hardware.component import HardwareError, PowerComponent
from repro.hardware.cpu import Cpu
from repro.hardware.disk import Disk
from repro.hardware.display import Display, Rect, ZonedDisplay
from repro.hardware.machine import IDLE_PROCESS, Machine
from repro.hardware.memory import MemoryError_, MemorySystem
from repro.hardware.power_mgmt import PowerManager
from repro.hardware.wavelan import WaveLan
from repro.hardware import thinkpad560x
from repro.hardware.thinkpad560x import build_machine

__all__ = [
    "Battery",
    "ExternalSupply",
    "SupplyError",
    "PeukertBattery",
    "RecoveryBattery",
    "VoltageCurve",
    "HardwareError",
    "PowerComponent",
    "Cpu",
    "Disk",
    "Display",
    "ZonedDisplay",
    "Rect",
    "WaveLan",
    "Machine",
    "IDLE_PROCESS",
    "MemorySystem",
    "MemoryError_",
    "PowerManager",
    "thinkpad560x",
    "build_machine",
]
