"""Display power models: the stock backlit panel and the paper's
projected *zoned backlighting* panel (Section 4).

The stock display has three states taken from Figure 4 of the paper:
bright (4.54 W), dim (1.95 W) and off.  The zoned display divides the
panel into a grid of independently lit zones; each zone draws a share of
the full-panel power proportional to its area, which is exactly the
assumption the paper uses for its Section 4 projection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.component import HardwareError, PowerComponent

__all__ = ["Display", "ZonedDisplay", "Rect"]


@dataclass(frozen=True)
class Rect:
    """A window rectangle in screen coordinates (pixels)."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self):
        if self.width < 0 or self.height < 0:
            raise HardwareError(f"negative rect dimensions: {self}")

    @property
    def area(self):
        return self.width * self.height

    def intersects(self, other):
        """True when this rect overlaps ``other`` with positive area."""
        return (
            self.x < other.x + other.width
            and other.x < self.x + self.width
            and self.y < other.y + other.height
            and other.y < self.y + self.height
        )


class Display(PowerComponent):
    """Conventional backlit panel: bright / dim / off."""

    BRIGHT = "bright"
    DIM = "dim"
    OFF = "off"

    def __init__(self, bright_watts, dim_watts, name="display",
                 width=800, height=600):
        super().__init__(
            name,
            states={self.BRIGHT: bright_watts, self.DIM: dim_watts, self.OFF: 0.0},
            initial=self.BRIGHT,
        )
        self.width = width
        self.height = height

    @property
    def screen(self):
        """Full-screen rectangle."""
        return Rect(0, 0, self.width, self.height)

    def bright(self):
        self.set_state(self.BRIGHT)

    def dim(self):
        self.set_state(self.DIM)

    def off(self):
        self.set_state(self.OFF)


class ZonedDisplay(Display):
    """A display whose backlight is divided into independently lit zones.

    Zones form a ``rows x cols`` grid.  Each zone's bright/dim power is
    the full-panel bright/dim power scaled by the zone's area fraction
    (1/zones).  The component's reported power is the sum over zones,
    so the machine integrates zoned energy exactly like any other
    component.

    The paper's 4-zone display is a 2x2 grid and the 8-zone display a
    2x4 grid (Figure 17).
    """

    def __init__(self, bright_watts, dim_watts, rows, cols,
                 name="display", width=800, height=600):
        if rows < 1 or cols < 1:
            raise HardwareError(f"invalid zone grid {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.zone_levels = [self.BRIGHT] * (rows * cols)
        # Initialise the underlying Display after zone bookkeeping exists
        # because `power` consults zone_levels.
        super().__init__(bright_watts, dim_watts, name=name,
                         width=width, height=height)

    # -- zone geometry --------------------------------------------------
    @property
    def zones(self):
        """Total number of zones."""
        return self.rows * self.cols

    def zone_rect(self, index):
        """Screen rectangle covered by zone ``index`` (row-major)."""
        if not 0 <= index < self.zones:
            raise HardwareError(f"zone index {index} out of range")
        row, col = divmod(index, self.cols)
        zone_w = self.width / self.cols
        zone_h = self.height / self.rows
        return Rect(col * zone_w, row * zone_h, zone_w, zone_h)

    def zones_for(self, rect):
        """Indices of zones a window rectangle overlaps."""
        return [i for i in range(self.zones) if rect.intersects(self.zone_rect(i))]

    # -- power ----------------------------------------------------------
    @property
    def power(self):
        per_zone = {
            self.BRIGHT: self.states[self.BRIGHT] / self.zones,
            self.DIM: self.states[self.DIM] / self.zones,
            self.OFF: 0.0,
        }
        # The component's own `state` acts as a master switch: when the
        # whole display is off, zones draw nothing regardless of level.
        if self.state == self.OFF:
            return 0.0
        return sum(per_zone[level] for level in self.zone_levels)

    # -- zone control ---------------------------------------------------
    def set_zone(self, index, level):
        """Set one zone's illumination level (bright / dim / off)."""
        if level not in (self.BRIGHT, self.DIM, self.OFF):
            raise HardwareError(f"unknown zone level {level!r}")
        if not 0 <= index < self.zones:
            raise HardwareError(f"zone index {index} out of range")
        if self.zone_levels[index] == level:
            return
        if self._pre_change is not None:
            self._pre_change()
        self.zone_levels[index] = level

    def set_all_zones(self, level):
        """Set every zone to ``level``."""
        for i in range(self.zones):
            self.set_zone(i, level)

    def illuminate(self, rects, level=Display.BRIGHT, background=Display.OFF):
        """Light exactly the zones overlapped by ``rects``.

        Zones touched by any rectangle get ``level``; all other zones
        get ``background``.  Returns the number of zones lit at
        ``level`` — the quantity the paper's Section 4 projection is
        framed in ("the map output only occupies three zones").
        """
        lit = set()
        for rect in rects:
            lit.update(self.zones_for(rect))
        for i in range(self.zones):
            self.set_zone(i, level if i in lit else background)
        return len(lit)
