"""Energy supplies: an ideal battery and an external power supply.

The paper removed the laptop battery and powered the client externally
to avoid confounding effects of non-ideal battery behaviour, while the
goal-directed experiments (Section 5) still *account* against a fixed
initial energy value.  Both modes are modeled:

* :class:`ExternalSupply` — never exhausts; used when only measuring.
* :class:`Battery` — finite reservoir drained by the machine; exposes
  residual energy and an exhaustion flag so experiments can detect a
  missed battery-duration goal.
"""

from __future__ import annotations

__all__ = ["SupplyError", "ExternalSupply", "Battery"]


class SupplyError(Exception):
    """Invalid supply operation (negative capacity or drain)."""


class ExternalSupply:
    """Wall power: infinite energy, still tracks total drawn."""

    def __init__(self):
        self.drawn = 0.0

    def drain(self, joules):
        if joules < 0:
            raise SupplyError(f"cannot drain negative energy {joules}")
        self.drawn += joules

    @property
    def exhausted(self):
        return False

    @property
    def residual(self):
        return float("inf")

    # snapshot protocol (repro.snapshot) — no heap entries to claim
    def __snapshot__(self, ctx):
        return {"drawn": self.drawn}

    def __restore__(self, state, ctx):
        self.drawn = state["drawn"]


class Battery:
    """An ideal (voltage-flat, rate-independent) energy reservoir.

    The nominal ThinkPad 560X battery holds roughly 90 000 J (the
    paper's Figure 22 uses this as "roughly matching a fully-charged
    ThinkPad 560X battery"); the Section 5 experiments deliberately use
    a small 12 000–13 000 J supply to keep runs short.
    """

    def __init__(self, capacity_joules):
        if capacity_joules <= 0:
            raise SupplyError(f"capacity must be positive, got {capacity_joules}")
        self.capacity = float(capacity_joules)
        self.drawn = 0.0

    def drain(self, joules):
        """Remove ``joules`` from the reservoir (clamps at empty)."""
        if joules < 0:
            raise SupplyError(f"cannot drain negative energy {joules}")
        self.drawn = min(self.capacity, self.drawn + joules)

    def charge(self, joules):
        """Grow the reservoir mid-run (battery swap, revised estimate)."""
        if joules < 0:
            raise SupplyError(f"cannot charge negative energy {joules}")
        self.capacity += joules

    @property
    def residual(self):
        """Joules remaining."""
        return self.capacity - self.drawn

    @property
    def exhausted(self):
        """True once the reservoir is empty."""
        return self.residual <= 0.0

    @property
    def fraction_remaining(self):
        """Residual energy as a fraction of capacity."""
        return self.residual / self.capacity

    # snapshot protocol (repro.snapshot) — no heap entries to claim
    def __snapshot__(self, ctx):
        return {"capacity": self.capacity, "drawn": self.drawn}

    def __restore__(self, state, ctx):
        # Capacity is runtime state, not a build constant: charge() can
        # have grown it between construction and capture.
        self.capacity = state["capacity"]
        self.drawn = state["drawn"]
