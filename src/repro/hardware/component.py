"""Power-state machines for hardware components.

Each component (display, disk, wireless NIC, CPU) is a named set of
power states, each drawing a constant number of watts.  The
:class:`~repro.hardware.machine.Machine` owns the composition: it sums
component draws, applies the superlinear correction the paper measured,
and integrates energy over simulated time.

Components must notify the machine *before* changing state so that the
energy consumed in the outgoing state is integrated at the old power
level — state changes are edges in a piecewise-constant power signal.

The notification hook (``_pre_change``, pointed by ``Machine.attach``
at :meth:`~repro.hardware.machine.Machine.power_will_change`) also
invalidates the machine's cached instantaneous power, so authors of
component subclasses that mutate power through paths other than
:meth:`PowerComponent.set_state` (e.g. zoned displays re-lighting
individual zones) MUST call ``self._pre_change()`` before every
power-affecting mutation.  Skipping it silently corrupts both the
energy integral and the cache; see docs/architecture.md ("Performance").
"""

from __future__ import annotations

__all__ = ["HardwareError", "PowerComponent"]


class HardwareError(Exception):
    """Invalid hardware operation (unknown state, duplicate name, ...)."""


class PowerComponent:
    """A hardware component with named constant-power states.

    Parameters
    ----------
    name:
        Component name, unique within a machine (e.g. ``"display"``).
    states:
        Mapping of state name to watts drawn in that state.
    initial:
        Starting state name.

    Examples
    --------
    >>> disk = PowerComponent("disk", {"standby": 0.16, "idle": 0.88}, "idle")
    >>> disk.power
    0.88
    >>> disk.set_state("standby")
    >>> disk.power
    0.16
    """

    def __init__(self, name, states, initial):
        if not states:
            raise HardwareError(f"{name}: at least one power state is required")
        for state, watts in states.items():
            if watts < 0:
                raise HardwareError(f"{name}.{state}: negative power {watts}")
        if initial not in states:
            raise HardwareError(f"{name}: unknown initial state {initial!r}")
        self.name = name
        self.states = dict(states)
        self.state = initial
        self._pre_change = None  # set by Machine.attach
        self._observers = []

    def __repr__(self):
        return f"<{type(self).__name__} {self.name} state={self.state} {self.power:.2f}W>"

    @property
    def power(self):
        """Watts drawn in the current state."""
        return self.states[self.state]

    def set_state(self, state):
        """Transition to ``state``, integrating energy up to this instant."""
        if state not in self.states:
            raise HardwareError(
                f"{self.name}: unknown state {state!r} "
                f"(valid: {sorted(self.states)})"
            )
        if state == self.state:
            return
        if self._pre_change is not None:
            self._pre_change()
        old, self.state = self.state, state
        for observer in self._observers:
            observer(self, old, state)

    def observe(self, callback):
        """Register ``callback(component, old_state, new_state)``."""
        self._observers.append(callback)

    def is_off(self):
        """True when the component draws no power at all."""
        return self.power == 0.0
