"""CPU power model.

The ThinkPad 560X's baseline ("Other" in the paper's Figure 4) power of
3.20 W already includes the processor halted in the kernel idle loop
(a Pentium ``hlt`` instruction).  The CPU component models the *extra*
draw above that floor in three states:

* ``halt`` — idle with hardware power management: the kernel issues
  ``hlt``; no extra draw (this is the Figure 4 operating point).
* ``poll`` — idle *without* power management: the paper's baseline
  disables hardware power management, which includes the CPU-slowing /
  idle-halt techniques it cites (Weiser et al., Lorch & Smith), so the
  idle loop spins and draws a small extra amount.
* ``busy`` — executing application code.

Which idle state the CPU falls back to after a burst is the *resting
state*, selected by :class:`~repro.hardware.power_mgmt.PowerManager`.
"""

from __future__ import annotations

from repro.hardware.component import PowerComponent

__all__ = ["Cpu"]


class Cpu(PowerComponent):
    """Processor with halt / poll / busy states (watts are extra over base)."""

    HALT = "halt"
    POLL = "poll"
    BUSY = "busy"
    # Backwards-compatible alias: "idle" means the current resting state.
    IDLE = "idle"

    def __init__(self, busy_extra_watts, poll_extra_watts=0.0, name="cpu"):
        super().__init__(
            name,
            states={
                self.HALT: 0.0,
                self.POLL: poll_extra_watts,
                self.BUSY: busy_extra_watts,
            },
            initial=self.HALT,
        )
        self._resting_state = self.HALT

    @property
    def resting_state(self):
        """Idle state adopted when no burst is executing (halt or poll)."""
        return self._resting_state

    def set_resting_state(self, state):
        """Select the idle policy (power management chooses halt)."""
        if state not in (self.HALT, self.POLL):
            raise ValueError(f"invalid CPU resting state {state!r}")
        self._resting_state = state
        if self.state != self.BUSY:
            self.set_state(state)

    def set_state(self, state):
        # Resolve the generic "idle" request to the configured policy.
        if state == self.IDLE:
            state = self._resting_state
        super().set_state(state)

    def busy(self):
        """Enter the busy state (a compute burst is executing)."""
        self.set_state(self.BUSY)

    def idle(self):
        """Return to the configured idle state (halt or poll)."""
        self.set_state(self._resting_state)
