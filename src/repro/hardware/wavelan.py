"""WaveLAN wireless-interface power model.

Figure 4 of the paper gives the two passive states we can take
directly: idle (receive-ready) at 1.46 W and standby at 0.18 W.  Active
transmit/receive powers were not published for the 900 MHz WaveLAN in
the paper; we use values in line with the measurements of Stemm & Katz
(cited by the paper) and record them as calibration constants in
:mod:`repro.hardware.thinkpad560x`.

The NIC also raises receive/transmit *interrupts*; the paper's profiles
attribute those samples to the ``Interrupts-WaveLAN`` pseudo-process.
The network layer models this with an attribution overlay while a
transfer is in flight (see :meth:`repro.hardware.machine.Machine.add_overlay`).
"""

from __future__ import annotations

from repro.hardware.component import PowerComponent

__all__ = ["WaveLan"]


class WaveLan(PowerComponent):
    """Wireless NIC with off / standby / idle / recv / xmit states."""

    OFF = "off"
    STANDBY = "standby"
    IDLE = "idle"
    RECV = "recv"
    XMIT = "xmit"

    def __init__(self, idle_watts, standby_watts, recv_watts, xmit_watts,
                 name="wavelan"):
        super().__init__(
            name,
            states={
                self.OFF: 0.0,
                self.STANDBY: standby_watts,
                self.IDLE: idle_watts,
                self.RECV: recv_watts,
                self.XMIT: xmit_watts,
            },
            initial=self.IDLE,
        )
        # Reference count of in-flight transfers so overlapping RPCs
        # keep the NIC awake until the last one finishes.
        self._active_transfers = 0
        self._resting_state = self.IDLE

    @property
    def resting_state(self):
        """State adopted when no transfer is in flight (idle or standby)."""
        return self._resting_state

    def set_resting_state(self, state):
        """Choose the passive state (power management picks standby)."""
        if state not in (self.IDLE, self.STANDBY, self.OFF):
            raise ValueError(f"invalid resting state {state!r}")
        self._resting_state = state
        if self._active_transfers == 0:
            self.set_state(state)

    def begin_transfer(self, direction):
        """Enter recv/xmit for a transfer; nests across overlapping RPCs."""
        if direction not in (self.RECV, self.XMIT):
            raise ValueError(f"invalid transfer direction {direction!r}")
        self._active_transfers += 1
        self.set_state(direction)

    def end_transfer(self):
        """Leave the active state, returning to the resting state when idle."""
        if self._active_transfers == 0:
            raise RuntimeError("end_transfer without begin_transfer")
        self._active_transfers -= 1
        if self._active_transfers == 0:
            self.set_state(self._resting_state)
