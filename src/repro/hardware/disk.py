"""Hard-disk power model.

States follow Figure 4 of the paper: a spinning-but-idle disk draws
0.88 W and a standby (spun-down) disk 0.16 W.  Reads draw extra power
while the head is active, and leaving standby costs a spin-up delay —
the classic trade-off studied by the disk spin-down literature the
paper cites (Douglis et al., Li et al.).
"""

from __future__ import annotations

from repro.hardware.component import PowerComponent

__all__ = ["Disk"]


class Disk(PowerComponent):
    """Disk with off / standby / idle (spinning) / active states."""

    OFF = "off"
    STANDBY = "standby"
    IDLE = "idle"
    ACTIVE = "active"

    def __init__(self, idle_watts, standby_watts, active_watts,
                 spinup_seconds=2.5, read_bandwidth=2.5e6, name="disk"):
        super().__init__(
            name,
            states={
                self.OFF: 0.0,
                self.STANDBY: standby_watts,
                self.IDLE: idle_watts,
                self.ACTIVE: active_watts,
            },
            initial=self.IDLE,
        )
        self.spinup_seconds = spinup_seconds
        self.read_bandwidth = read_bandwidth  # bytes/second
        self.last_activity = 0.0

    def standby(self):
        """Spin the disk down."""
        self.set_state(self.STANDBY)

    def spin_up_needed(self):
        """True when an access must first wait for spin-up."""
        return self.state in (self.STANDBY, self.OFF)

    def read(self, machine, nbytes, process="kernel", procedure="_disk_read"):
        """Generator: read ``nbytes``, spinning up first if necessary.

        Energy during the transfer is attributed to ``process`` the way
        PowerScope attributes kernel I/O time to the requesting process.
        """
        yield from self._access(machine, nbytes, process, procedure)

    def write(self, machine, nbytes, process="kernel", procedure="_disk_write"):
        """Generator: write ``nbytes`` (same power/time model as reads)."""
        yield from self._access(machine, nbytes, process, procedure)

    def _access(self, machine, nbytes, process, procedure):
        sim = machine.sim
        # One head: concurrent accesses from different processes queue.
        grant = machine.disk_resource.acquire(owner=process)
        yield grant
        try:
            if self.spin_up_needed():
                # Spin-up draws active power for the whole delay.
                self.set_state(self.ACTIVE)
                yield sim.timeout(self.spinup_seconds)
            self.set_state(self.ACTIVE)
            duration = nbytes / self.read_bandwidth
            token = machine.push_context(process, procedure)
            try:
                yield sim.timeout(duration)
            finally:
                machine.pop_context(token)
                self.set_state(self.IDLE)
                self.last_activity = sim.now
        finally:
            machine.disk_resource.release(grant)
