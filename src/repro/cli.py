"""Command-line interface: ``python -m repro <command>``.

Lets a user regenerate any of the paper's experiments without writing
code:

* ``python -m repro fig06|fig08|fig10|fig13`` — print a figure's table
* ``python -m repro goal --energy 6000 --goal 400`` — one goal run
  with an ASCII supply/demand chart
* ``python -m repro profile --seconds 20`` — a PowerScope profile
* ``python -m repro report`` — headline results vs the paper's bands
* ``python -m repro export-figures DIR`` — every figure's plot data
  as CSV
* ``python -m repro sweep --jobs 4 --trials 5`` — the fidelity studies
  as one parallel, cached fleet campaign
* ``python -m repro diff a.jsonl b.jsonl`` — decision divergence and
  per-window energy deltas between two traced runs
* ``python -m repro snapshot roundtrip|sweep|gc`` — fork-determinism
  check, the warm-started goal-extension sweep, and store pruning
* ``python -m repro bench`` — hot-path micro-benchmarks; with
  ``--compare BENCH_core.json`` a CI regression gate
* ``python -m repro serve`` — start the persistent campaign service
  (warm worker pool + shared cache, local HTTP)
* ``python -m repro submit|status|result|queues`` — client verbs
  against a running service

Commands that run many independent simulations take ``--jobs N`` to
execute them on the fleet's process pool (see ``repro.fleet``).

Pass ``--csv PATH`` where supported to also write machine-readable
output.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import render_table
from repro.analysis.export import energy_table_csv, timeline_csv, write_csv

__all__ = ["main"]


def _positive_int(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text):
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _cmd_energy_table(args, table_fn, label, app=None):
    jobs = getattr(args, "jobs", None)
    if app is not None and jobs is not None and jobs != 1:
        from repro.fleet import energy_table

        table = energy_table(app, jobs=jobs, think_time_s=args.think)
    elif args.think is not None:
        table = table_fn(think_time_s=args.think)
    else:
        table = table_fn()
    objects = list(next(iter(table.values())))
    rows = [
        [config] + [f"{table[config][obj]:.1f}" for obj in objects]
        for config in table
    ]
    print(render_table(["config (J)"] + objects, rows, title=label))
    if args.csv:
        write_csv(args.csv, energy_table_csv(table, objects))
        print(f"wrote {args.csv}")
    return 0


def _cmd_goal(args):
    from repro.experiments import (
        derive_goals,
        fidelity_runtime_bounds,
        run_goal_experiment,
    )

    goal = args.goal
    if goal is None:
        t_hi, t_lo = fidelity_runtime_bounds(args.energy)
        goal = derive_goals(t_hi, t_lo, count=3)[1]
        print(f"fidelity bounds {t_hi:.0f}-{t_lo:.0f}s; derived goal {goal:.0f}s")
    result = run_goal_experiment(
        goal, initial_energy=args.energy, halflife_fraction=args.halflife
    )
    print(f"goal {result.goal_seconds:.0f}s: "
          f"{'MET' if result.goal_met else 'MISSED'} "
          f"(survived {result.survived_seconds:.0f}s, "
          f"residual {result.residual_energy:.0f} J)")
    print("adaptations:", result.adaptations)
    if not args.no_chart:
        from repro.analysis import ascii_chart

        supply = result.timeline.series("energy", "supply")
        demand = result.timeline.series("energy", "demand")
        if supply[0]:
            print()
            print(ascii_chart(
                [supply, demand],
                labels=["supply", "demand"],
                title="supply vs predicted demand (Figure 19 style)",
            ))
    if args.csv:
        write_csv(args.csv, timeline_csv(result.timeline,
                                         categories={"energy", "fidelity"}))
        print(f"wrote {args.csv}")
    return 0 if result.goal_met else 1


def _cmd_calibrate(args):
    """Check headline percentages against the paper's bands."""
    from repro.experiments.calibration import (
        calibration_report,
        render_report,
        report_ok,
    )

    report = calibration_report()
    print(render_report(report))
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if report_ok(report) else 1


def _cmd_profile(args):
    from repro.experiments import build_rig
    from repro.powerscope import profile_run, render_profile
    from repro.workloads.videos import VideoClip

    rig = build_rig(pm_enabled=not args.no_pm)
    clip = VideoClip("cli-clip", args.seconds, 12.0, 16_250)
    player = rig.apps["video"]
    rig.sim.spawn(player.play(clip))
    profile = profile_run(rig.machine, until=args.seconds, rate_hz=args.rate)
    print(render_profile(profile, detail_process="xanim"))
    return 0


def _cmd_trace(args):
    """Run one experiment under a recording tracer and export everything."""
    import os

    from repro.obs import JsonlSink, Tracer, installed
    from repro.obs.export import (
        join_power,
        join_summary,
        read_events_jsonl,
        write_chrome_trace,
        write_events_jsonl,
        write_metrics,
    )
    from repro.obs.metrics import current_metrics

    prefix = args.out
    out_dir = os.path.dirname(prefix)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    sink = JsonlSink(prefix + ".jsonl") if args.stream else None
    tracer = Tracer(
        capacity=args.ring,
        categories=set(args.categories) if args.categories else None,
        sink=sink,
    )
    with installed(tracer):
        beam = getattr(args, "beam", None)
        learned = getattr(args, "learned_model", False)
        drift = getattr(args, "drift", None)
        if args.experiment == "goal" and (args.pulse or args.lookahead
                                          or beam or learned or drift):
            from repro.snapshot.scenario import run_pulse_goal

            pulse_kwargs = {"lookahead": args.lookahead or bool(beam),
                            "horizon": args.horizon}
            if beam:
                pulse_kwargs["beam_width"] = beam
                pulse_kwargs["beam_depth"] = args.depth
            if args.goal is not None:
                pulse_kwargs["goal_seconds"] = args.goal
            if args.energy is not None:
                pulse_kwargs["initial_energy"] = args.energy
            if learned:
                pulse_kwargs["learned_model"] = True
            if drift is not None:
                pulse_kwargs["drift"] = drift
            if args.device_file is not None:
                from repro.devices import load_fleet

                fleet = load_fleet(args.device_file)
                if args.device_id is not None:
                    matches = [d for d in fleet
                               if d.device_id == args.device_id]
                    if not matches:
                        print(f"error: no device {args.device_id!r} in "
                              f"{args.device_file}", file=sys.stderr)
                        return 2
                    pulse_kwargs["device"] = matches[0]
                else:
                    pulse_kwargs["device"] = fleet[0]
            summary = run_pulse_goal(**pulse_kwargs)
            print(f"pulse goal: {'MET' if summary['goal_met'] else 'MISSED'} "
                  f"(residual {summary['battery_residual_j']:.0f} J)")
            calibration = summary.get("calibration")
            if calibration is not None:
                multipliers = ", ".join(
                    f"{name}={value:.3f}"
                    for name, value in calibration["multipliers"].items()
                )
                print(f"calibration: {calibration['fits']} fits over "
                      f"{calibration['readings']} readings, residual "
                      f"{calibration['last_residual_w']:+.3f} W "
                      f"({multipliers})")
            if pulse_kwargs["lookahead"]:
                look = summary["lookahead"]
                print(f"lookahead: {look['evaluations']} evaluations, "
                      f"{look['overrides']} overrides, "
                      f"{look['branches_run']} branches")
            if beam:
                plan = summary["lookahead"]["beam"]
                print(f"beam: width {plan['width']} x depth "
                      f"{plan['depth']}, {plan['plans']} plans, "
                      f"{plan['expansions']} expansions")
        elif args.experiment == "goal":
            from repro.experiments import run_goal_experiment

            controller_kwargs = {}
            if args.no_hysteresis:
                controller_kwargs = {"variable_fraction": 0.0,
                                     "constant_fraction": 0.0}
            goal = args.goal if args.goal is not None else 400.0
            energy = args.energy if args.energy is not None else 6000.0
            result = run_goal_experiment(goal,
                                         initial_energy=energy,
                                         **controller_kwargs)
            print(f"goal {result.goal_seconds:.0f}s: "
                  f"{'MET' if result.goal_met else 'MISSED'} "
                  f"(residual {result.residual_energy:.0f} J)")
        elif args.experiment == "bursty":
            from repro.experiments import run_bursty_experiment

            goal = args.goal if args.goal is not None else 400.0
            result = run_bursty_experiment(args.seed, goal)
            print(f"bursty goal {goal:.0f}s (seed {args.seed}): "
                  f"{'MET' if result.goal_met else 'MISSED'}")
        else:  # video
            from repro.experiments import build_rig
            from repro.workloads.videos import VideoClip

            rig = build_rig()
            clip = VideoClip("trace-clip", args.seconds, 12.0, 16_250)
            rig.sim.spawn(rig.apps["video"].play(clip))
            rig.sim.run(until=args.seconds)
            print(f"video playback traced for {args.seconds:.0f}s "
                  f"({rig.machine.finish():.0f} J)")
        tracer.flush()

    if sink is not None:
        # The sink streamed every event to disk as it was emitted;
        # read the complete log back so the Chrome trace and the join
        # cover events the ring buffer may have evicted.
        sink.close()
        events = read_events_jsonl(prefix + ".jsonl")
        print(f"streamed {prefix}.jsonl ({sink.count} events)")
    else:
        events = list(tracer.events)
        write_events_jsonl(events, prefix + ".jsonl")
        print(f"wrote {prefix}.jsonl ({len(events)} events"
              + (f", {tracer.dropped} dropped" if tracer.dropped else "")
              + ")")
    write_chrome_trace(events, prefix + ".trace.json")
    print(f"wrote {prefix}.trace.json (load at https://ui.perfetto.dev)")
    write_metrics(current_metrics(), prefix + ".metrics.json")
    print(f"wrote {prefix}.metrics.json")
    joined = join_power(events)
    if joined:
        summary = join_summary(joined)
        print(f"event↔energy join: {summary['resolved']}/{summary['total']} "
              f"events resolved to a power-journal span")
        if summary["unresolved"]:
            sids = ", ".join(str(s) for s in summary["unresolved_sids"][:10])
            print(f"WARNING: {summary['unresolved']} join(s) unresolved "
                  f"(span ids: {sids}"
                  + (", ..." if len(summary["unresolved_sids"]) > 10 else "")
                  + ") — span events merged away, ring-dropped, or the "
                  f"'power' category was filtered", file=sys.stderr)
    return 0


def _cmd_diff(args):
    """Diff two traced runs: decision divergence + energy attribution."""
    import json

    from repro.obs.diff import diff_traces
    from repro.obs.export import read_events_jsonl

    events_a = read_events_jsonl(args.left)
    events_b = read_events_jsonl(args.right)
    diff = diff_traces(
        events_a, events_b,
        label_a=args.left, label_b=args.right,
        gap=args.gap,
    )
    # Write the JSON before printing the report so `repro diff ... | head`
    # (stdout closed early) still leaves the artifact on disk.
    if args.json:
        import os

        out_dir = os.path.dirname(args.json)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(diff.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(diff.render(max_windows=args.max_windows))
    if args.json:
        print(f"wrote {args.json}")
    if args.fail_on_divergence and not diff.identical:
        return 1
    return 0


def _cmd_verify_profile(args):
    """Verify a traced run's energy signature against a golden."""
    import json

    from repro.obs.export import read_events_jsonl
    from repro.obs.signature import (SignatureError, read_signature,
                                     verify_signature)

    try:
        events = read_events_jsonl(args.run)
        golden = read_signature(args.against)
        diff = verify_signature(
            events, golden,
            rel_tolerance=args.tolerance,
            abs_tolerance_j=args.abs_tolerance,
        )
    except (OSError, SignatureError, ValueError) as exc:
        print(f"verify-profile: {exc}", file=sys.stderr)
        return 2
    # Write the JSON before printing the report so a closed stdout
    # still leaves the artifact on disk (same contract as `repro diff`).
    if args.json:
        import os

        out_dir = os.path.dirname(args.json)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(diff.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(diff.render(max_phases=args.max_phases))
    if args.json:
        print(f"wrote {args.json}")
    if diff.regression:
        return 1
    return 0


def build_parser():
    """Build the argparse parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Energy-aware adaptation for mobile "
                    "applications' (SOSP 1999).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flags(p):
        """Flags shared by every experiment-running command."""
        p.add_argument("--trace", default=None, metavar="PREFIX",
                       help="record a trace of the run; writes "
                            "PREFIX.jsonl and PREFIX.trace.json")
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the metrics snapshot as JSON")

    def add_matrix_flags(p):
        """The policy-diff-matrix mode shared by sweep and submit."""
        p.add_argument("--diff-against", default=None, metavar="SPEC",
                       help="run a policy diff matrix instead of the "
                            "fidelity sweep: every candidate policy "
                            "diffs against this baseline policy spec "
                            "('default', or 'key=value,...' — e.g. "
                            "'hysteresis=off,lookahead=on')")
        p.add_argument("--candidate", action="append", default=None,
                       metavar="SPEC",
                       help="add a candidate policy spec (repeatable; "
                            "default: the hysteresis x lookahead grid)")
        p.add_argument("--vary", action="append", default=None,
                       metavar="KEY=V1,V2",
                       help="sweep a policy key over listed values; "
                            "repeat for a cross product (e.g. "
                            "--vary hysteresis=on,off "
                            "--vary horizon=6,12)")
        p.add_argument("--scenario", default=None, metavar="SPEC",
                       help="shared scenario params for every variant "
                            "(e.g. 'goal_seconds=120,"
                            "initial_energy=1000')")
        p.add_argument("--devices", default=None, metavar="PATH",
                       help="fan the matrix across a device fleet read "
                            "from a calibration file (see "
                            "repro.devices.write_fleet); one row per "
                            "(device, policy) pair")
        p.add_argument("--fleet-size", type=_positive_int, default=None,
                       metavar="N",
                       help="fan the matrix across N generated devices "
                            "(byte-stable per --fleet-seed) instead of "
                            "a fleet file")
        p.add_argument("--fleet-seed", type=int, default=0, metavar="S",
                       help="seed for --fleet-size device generation "
                            "(default 0)")
        p.add_argument("--matrix-out", default=None, metavar="PATH",
                       help="write the matrix as canonical JSON — "
                            "byte-identical across serial, --jobs N, "
                            "cache-warm, and service-submitted runs")
        p.add_argument("--fail-on-divergence", action="store_true",
                       help="exit 1 when any candidate row violates "
                            "the thresholds below (with none set: any "
                            "divergence from the baseline at all)")
        p.add_argument("--max-windows", type=_nonnegative_int,
                       default=None, metavar="N",
                       help="allow up to N divergence windows per row")
        p.add_argument("--max-delta-j", type=float, default=None,
                       metavar="J",
                       help="allow up to J joules of absolute energy "
                            "delta per row")
        p.add_argument("--max-shape-distance", type=float, default=None,
                       metavar="D",
                       help="allow up to D signature shape distance "
                            "per row")

    for fig, label in (
        ("fig06", "Figure 6 — video energy by fidelity"),
        ("fig08", "Figure 8 — speech energy by strategy"),
        ("fig10", "Figure 10 — map energy by fidelity"),
        ("fig13", "Figure 13 — Web energy by JPEG quality"),
    ):
        p = sub.add_parser(fig, help=label)
        p.add_argument("--think", type=float, default=None,
                       help="think time in seconds (map/web only)")
        p.add_argument("--csv", help="also write the table as CSV")
        p.add_argument("--jobs", type=_positive_int, default=None,
                       help="run the table's cells on N fleet workers")
        add_obs_flags(p)

    p = sub.add_parser("goal", help="run one goal-directed experiment")
    p.add_argument("--energy", type=float, default=6000.0,
                   help="initial energy in joules")
    p.add_argument("--goal", type=float, default=None,
                   help="battery-duration goal in seconds (derived if omitted)")
    p.add_argument("--halflife", type=float, default=0.10,
                   help="smoothing half-life fraction")
    p.add_argument("--csv", help="write the supply/demand/fidelity trace as CSV")
    p.add_argument("--no-chart", action="store_true",
                   help="skip the ASCII supply/demand chart")
    add_obs_flags(p)

    p = sub.add_parser("profile", help="PowerScope profile of video playback")
    p.add_argument("--seconds", type=float, default=20.0)
    p.add_argument("--rate", type=float, default=600.0,
                   help="sampling rate in Hz")
    p.add_argument("--no-pm", action="store_true",
                   help="disable hardware power management")
    add_obs_flags(p)

    p = sub.add_parser(
        "trace",
        help="run one experiment under the tracer and export JSONL, "
             "Chrome trace JSON, and a metrics snapshot",
    )
    p.add_argument("experiment", choices=("goal", "bursty", "video"),
                   help="which experiment to trace")
    p.add_argument("--out", default="trace/run", metavar="PREFIX",
                   help="output prefix (default trace/run → trace/run.jsonl, "
                        "trace/run.trace.json, trace/run.metrics.json)")
    p.add_argument("--ring", type=_positive_int, default=None,
                   help="ring-buffer capacity (default: unbounded)")
    p.add_argument("--categories", nargs="*", default=None,
                   choices=("sim", "power", "core", "powerscope", "fleet",
                            "branch", "service", "workload", "calibration"),
                   help="restrict tracing to these categories")
    p.add_argument("--goal", type=float, default=None,
                   help="goal seconds (goal/bursty; default 400, "
                        "or 290 with --pulse/--lookahead)")
    p.add_argument("--energy", type=float, default=None,
                   help="initial energy in joules (goal; default 6000, "
                        "or 2400 with --pulse/--lookahead)")
    p.add_argument("--pulse", action="store_true",
                   help="run the snapshot-capable pulse scenario instead "
                        "of the generator-based goal rig (goal only)")
    p.add_argument("--lookahead", action="store_true",
                   help="vet adaptation decisions with forked what-if "
                        "branches (implies --pulse); branch verdicts "
                        "are traced on the 'branch' category")
    p.add_argument("--horizon", type=float, default=12.0,
                   help="lookahead branch horizon in seconds (default 12)")
    p.add_argument("--beam", type=_positive_int, default=None, metavar="W",
                   help="beam-search adaptation schedules with width W "
                        "(implies --lookahead); keeps the W best-margin "
                        "schedules per stage")
    p.add_argument("--depth", type=_positive_int, default=2,
                   help="beam stages across the horizon (default 2; "
                        "only with --beam)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed (bursty)")
    p.add_argument("--seconds", type=float, default=20.0,
                   help="playback seconds (video)")
    p.add_argument("--no-hysteresis", action="store_true",
                   help="zero the upgrade hysteresis margins (goal); "
                        "pair with a default run for `repro diff`")
    p.add_argument("--learned-model", action="store_true",
                   help="feed the controller a Sesame-style learned "
                        "power model (SmartBattery gauge + online "
                        "calibrator) instead of ground truth (implies "
                        "--pulse; goal only); calibration events land "
                        "on the 'calibration' category")
    p.add_argument("--drift", default=None, metavar="AT:FACTOR",
                   help="scale real component wattages by FACTOR at "
                        "sim time AT (e.g. 60:1.25; implies --pulse)")
    p.add_argument("--device-file", default=None, metavar="PATH",
                   help="run on the first device of this fleet file "
                        "(or DEVICE_ID with --device-id)")
    p.add_argument("--device-id", default=None, metavar="ID",
                   help="pick a device from --device-file by id")
    p.add_argument("--stream", action="store_true",
                   help="stream events to PREFIX.jsonl as they are "
                        "emitted (safe to combine with --ring: the "
                        "file keeps the prefix the ring drops)")

    p = sub.add_parser(
        "calibrate",
        help="check headline savings percentages against the paper's "
             "published bands; exits nonzero on any MISS",
    )
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the structured report as JSON")

    p = sub.add_parser(
        "diff",
        help="align two traced runs on decision ids and report "
             "divergence windows with attributed energy deltas",
    )
    p.add_argument("left", help="baseline trace (PREFIX.jsonl)")
    p.add_argument("right", help="candidate trace (PREFIX.jsonl)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the diff as deterministic JSON")
    p.add_argument("--gap", type=_nonnegative_int, default=0,
                   help="merge divergence windows separated by at most "
                        "this many matching decisions (default 0)")
    p.add_argument("--max-windows", type=_positive_int, default=10,
                   help="windows to show in the text report (default 10)")
    p.add_argument("--fail-on-divergence", action="store_true",
                   help="exit 1 if the decision spines differ (CI gate)")

    p = sub.add_parser(
        "verify-profile",
        help="verify a traced run's per-phase energy signature against "
             "a golden; exits 1 when behaviour matches but energy does "
             "not (or 2 on unreadable inputs)",
    )
    p.add_argument("run", help="traced run to verify (PREFIX.jsonl)")
    p.add_argument("--against", required=True, metavar="PATH",
                   help="golden signature JSON (from regen_goldens.py "
                        "--signatures or repro.obs.write_signature)")
    p.add_argument("--tolerance", type=float, default=None, metavar="REL",
                   help="relative per-phase tolerance (default: the "
                        "golden's recorded band)")
    p.add_argument("--abs-tolerance", type=float, default=None, metavar="J",
                   help="absolute per-phase tolerance floor in joules "
                        "(default: the golden's recorded band)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the signature diff as deterministic "
                        "JSON")
    p.add_argument("--max-phases", type=_positive_int, default=10,
                   help="out-of-band phases to show in the text report "
                        "(default 10)")
    p.add_argument("--fail-on-regression", action="store_true",
                   help="explicit CI marker; regressions already exit 1")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the metrics snapshot (signature.* series) "
                        "as JSON")

    p = sub.add_parser(
        "export-figures", help="write every figure's plot data as CSV"
    )
    p.add_argument("directory", help="output directory")
    p.add_argument("--figures", nargs="*", default=None,
                   help="subset of figure ids (default: all)")
    p.add_argument("--jobs", type=_positive_int, default=None,
                   help="regenerate figures on N fleet workers")
    p.add_argument("--cache-dir", default=None,
                   help="fleet result cache directory (re-runs are free)")

    p = sub.add_parser(
        "bench",
        help="micro-benchmarks of the engine/accounting/profiling hot paths",
    )
    p.add_argument("--quick", action="store_true",
                   help="small workloads for CI smoke use")
    p.add_argument("--out", default="BENCH_core.json",
                   help="write results JSON here (default BENCH_core.json)")
    p.add_argument("--compare", default=None, metavar="BASELINE",
                   help="compare against a baseline results file; exit 1 on "
                        "regression")
    p.add_argument("--max-regression", type=float, default=0.25,
                   help="allowed normalized slowdown vs baseline "
                        "(default 0.25 = 25%%)")
    p.add_argument("--min-speedup", type=float, default=None,
                   help="fail --compare unless the fig22 eager/lazy speedup "
                        "is at least this (e.g. 3.0)")
    p.add_argument("--confirm", type=_nonnegative_int, default=2,
                   help="re-run regressed benchmarks up to N times before "
                        "failing --compare, to reject scheduler noise "
                        "(default 2; 0 disables)")
    p.add_argument("--only", nargs="*", default=None, metavar="NAME",
                   help="subset of benchmarks to run; each token matches "
                        "by substring (e.g. 'snapshot' selects every "
                        "snapshot_* bench)")
    p.add_argument("--repeats", type=_positive_int, default=None,
                   help="repeat count per benchmark (min is reported)")

    p = sub.add_parser(
        "report", help="headline results across all experiments"
    )
    p.add_argument("--no-goal", action="store_true",
                   help="skip the goal-directed experiments")
    p.add_argument("--no-concurrency", action="store_true",
                   help="skip the concurrency experiment")
    p.add_argument("--energy", type=float, default=6000.0,
                   help="initial energy for the goal experiments")
    p.add_argument("--jobs", type=_positive_int, default=None,
                   help="run the fidelity tables on N fleet workers")
    add_obs_flags(p)

    p = sub.add_parser(
        "sweep",
        help="run the fidelity studies as one parallel fleet campaign",
    )
    p.add_argument("--apps", nargs="*", default=None,
                   choices=("video", "speech", "map", "web"),
                   help="subset of applications (default: all four)")
    p.add_argument("--jobs", type=_positive_int, default=None,
                   help="worker processes (default: one per CPU)")
    p.add_argument("--trials", type=_positive_int, default=1,
                   help="jittered trials per cell (1 = calibration run)")
    p.add_argument("--think", type=float, default=None,
                   help="think time in seconds (map/web)")
    p.add_argument("--cache-dir", default=None,
                   help="fleet result cache directory (re-runs are free)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-task wall-clock budget in seconds")
    p.add_argument("--retries", type=_nonnegative_int, default=2,
                   help="extra attempts per failing task")
    p.add_argument("--progress", action="store_true",
                   help="print a line per finished task")
    p.add_argument("--csv-dir", default=None,
                   help="also write one CSV per application table")
    p.add_argument("--results-out", default=None, metavar="PATH",
                   help="write the raw task values as canonical JSON "
                        "(byte-comparable with `repro result --out`)")
    p.add_argument("--telemetry-out", default=None, metavar="PATH",
                   help="write the campaign telemetry snapshot as JSON")
    p.add_argument("--worker-trace", action="store_true",
                   help="collect in-worker ring traces and merge them "
                        "into the coordinator trace on per-task tracks "
                        "(needs --trace)")
    add_matrix_flags(p)
    add_obs_flags(p)

    p = sub.add_parser(
        "snapshot",
        help="checkpoint/fork the pulse scenario: determinism roundtrip, "
             "a warm-started extension sweep, or store pruning",
    )
    p.add_argument("mode", choices=("roundtrip", "sweep", "gc"),
                   help="roundtrip: capture mid-run, fork, verify the fork "
                        "finishes byte-identical to an uninterrupted run; "
                        "sweep: goal-extension campaign that restores the "
                        "shared scenario prefix from --snapshot-dir; "
                        "gc: prune old snapshots from --snapshot-dir")
    p.add_argument("--keep-latest", type=_nonnegative_int, default=None,
                   metavar="N",
                   help="gc: keep only the N most recent snapshots "
                        "(pinned snapshots always survive)")
    p.add_argument("--dry-run", action="store_true",
                   help="gc: report what would be deleted without deleting")
    p.add_argument("--at", type=float, default=120.0,
                   help="capture / extension instant in sim seconds "
                        "(default 120)")
    p.add_argument("--lookahead", action="store_true",
                   help="roundtrip: use the lookahead controller; "
                        "sweep: add the lookahead policy as a second axis")
    p.add_argument("--horizon", type=float, default=12.0,
                   help="lookahead branch horizon in seconds (default 12)")
    p.add_argument("--extensions", nargs="*", type=float,
                   default=(0.0, 20.0, 40.0),
                   help="goal extensions in seconds to sweep (default "
                        "0 20 40)")
    p.add_argument("--snapshot-dir", default=None, metavar="DIR",
                   help="snapshot store directory; omitting it runs the "
                        "sweep cold (every prefix re-simulated)")
    p.add_argument("--jobs", type=_positive_int, default=None,
                   help="worker processes for the sweep (default: serial)")
    p.add_argument("--verify-cold", action="store_true",
                   help="re-run every sweep point cold and fail unless the "
                        "warm results are identical")
    p.add_argument("--telemetry-out", default=None, metavar="PATH",
                   help="write the campaign telemetry snapshot as JSON")
    add_obs_flags(p)

    # ------------------------------------------------------------------
    # campaign service
    # ------------------------------------------------------------------
    from repro.service.client import DEFAULT_ENDPOINT

    def add_endpoint(p):
        p.add_argument("--endpoint", default=DEFAULT_ENDPOINT,
                       help=f"service base URL (default {DEFAULT_ENDPOINT})")

    p = sub.add_parser(
        "serve",
        help="start the persistent campaign service: a warm worker pool "
             "serving submitted campaigns over local HTTP",
    )
    p.add_argument("--workers", type=_positive_int, default=2,
                   help="warm pool size (default 2)")
    p.add_argument("--cache-dir", default=None,
                   help="shared result cache directory (all clients "
                        "benefit from each other's completed tasks)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=7341,
                   help="listen port (default 7341; 0 picks a free port)")
    p.add_argument("--retries", type=_nonnegative_int, default=2,
                   help="default extra attempts per failing task")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-task wall-clock budget in seconds")
    p.add_argument("--heartbeat", type=float, default=0.2,
                   help="worker heartbeat period in seconds (default 0.2)")
    p.add_argument("--heartbeat-timeout", type=float, default=5.0,
                   help="declare a worker dead after this long without a "
                        "heartbeat (default 5.0)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    add_obs_flags(p)

    p = sub.add_parser(
        "submit", help="submit a campaign to a running service"
    )
    add_endpoint(p)
    p.add_argument("--sweep", action="store_true",
                   help="submit the fidelity-study sweep campaign "
                        "(the default; same campaign as `repro sweep`)")
    p.add_argument("--spec", default=None, metavar="PATH",
                   help="submit a campaign spec from a JSON file instead")
    p.add_argument("--apps", nargs="*", default=None,
                   choices=("video", "speech", "map", "web"),
                   help="sweep: subset of applications")
    p.add_argument("--trials", type=_positive_int, default=1,
                   help="sweep: jittered trials per cell")
    p.add_argument("--think", type=float, default=None,
                   help="sweep: think time in seconds (map/web)")
    p.add_argument("--queue", default="default",
                   help="named queue to submit into (default 'default')")
    p.add_argument("--priority", type=int, default=0,
                   help="priority within the queue (higher runs first)")
    p.add_argument("--client", default=None,
                   help="client label recorded on the job")
    p.add_argument("--retries", type=_nonnegative_int, default=None,
                   help="override the service's per-task retry budget")
    p.add_argument("--timeout", type=float, default=None,
                   help="override the service's per-task timeout")
    p.add_argument("--wait", action="store_true",
                   help="block until the job is terminal; exit nonzero "
                        "if any task permanently failed")
    p.add_argument("--wait-timeout", type=float, default=None,
                   help="give up waiting after this many seconds")
    p.add_argument("--results-out", default=None, metavar="PATH",
                   help="with --wait: write the raw task values as "
                        "canonical JSON (byte-comparable with "
                        "`repro sweep --results-out`)")
    p.add_argument("--telemetry-out", default=None, metavar="PATH",
                   help="with --wait: write the job telemetry as JSON")
    add_matrix_flags(p)

    p = sub.add_parser("status", help="one job's state and progress")
    p.add_argument("job_id")
    add_endpoint(p)

    p = sub.add_parser(
        "result", help="fetch a terminal job's values and telemetry"
    )
    p.add_argument("job_id")
    add_endpoint(p)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the raw task values as canonical JSON")
    p.add_argument("--telemetry-out", default=None, metavar="PATH",
                   help="write the job telemetry as JSON")

    p = sub.add_parser(
        "queues", help="per-queue depths and the worker table"
    )
    add_endpoint(p)

    return parser


def _cmd_bench(args):
    import json
    import os

    from repro.perf import (
        compare,
        render_bench_table,
        render_comparison,
        run_benchmarks,
    )
    from repro.perf.bench import load_results

    def write_out(results):
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")

    results = run_benchmarks(
        quick=args.quick, only=args.only, repeats=args.repeats
    )
    print(render_bench_table(results))
    if args.out:
        write_out(results)
    if args.compare:
        baseline = load_results(args.compare)
        rows, failures = compare(
            results, baseline,
            max_regression=args.max_regression,
            min_speedup=args.min_speedup,
        )
        # A 0.2 s benchmark that absorbs one scheduler burst looks 30 %
        # slower; a real regression reproduces.  Re-measure only the
        # benchmarks that tripped before failing the gate.
        attempt = 0
        while failures and attempt < args.confirm:
            rerun = [r["name"] for r in rows if r["regressed"]]
            if any(f.startswith("fig22_longduration:") for f in failures):
                if ("fig22_longduration" in results["benches"]
                        and "fig22_longduration" not in rerun):
                    rerun.append("fig22_longduration")
            if not rerun:
                break
            attempt += 1
            print()
            print(f"possible noise — re-running {', '.join(rerun)} "
                  f"to confirm (attempt {attempt}/{args.confirm})")
            redo = run_benchmarks(
                quick=args.quick, only=rerun, repeats=args.repeats
            )
            results["benches"].update(redo["benches"])
            rows, failures = compare(
                results, baseline,
                max_regression=args.max_regression,
                min_speedup=args.min_speedup,
            )
        if attempt and args.out:
            write_out(results)
        print()
        print(render_comparison(rows, max_regression=args.max_regression))
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print("no regressions vs baseline")
    return 0


def _cmd_snapshot(args):
    if args.mode == "roundtrip":
        return _cmd_snapshot_roundtrip(args)
    if args.mode == "gc":
        return _cmd_snapshot_gc(args)
    return _cmd_snapshot_sweep(args)


def _cmd_snapshot_gc(args):
    """Prune old snapshots from the store, keeping pinned + the newest N."""
    from repro.snapshot.disk import SnapshotStore

    if args.snapshot_dir is None:
        print("error: gc needs --snapshot-dir", file=sys.stderr)
        return 2
    if args.keep_latest is None:
        print("error: gc needs --keep-latest N", file=sys.stderr)
        return 2
    store = SnapshotStore(args.snapshot_dir)
    before = len(store)
    report = store.prune(keep_latest=args.keep_latest, dry_run=args.dry_run)
    verb = "would delete" if args.dry_run else "deleted"
    print(f"{before} snapshot(s) in {args.snapshot_dir}: "
          f"{verb} {len(report['deleted'])}, kept {len(report['kept'])} "
          f"({len(report['pinned'])} pinned)")
    for key in report["deleted"]:
        print(f"  {verb} {key}")
    return 0


def _cmd_snapshot_roundtrip(args):
    """Fork-determinism check: capture mid-run, finish both, compare."""
    from repro.fleet.spec import canonical_json
    from repro.snapshot import Snapshot
    from repro.snapshot.scenario import build_pulse_scenario

    kwargs = {"lookahead": args.lookahead, "horizon": args.horizon}
    reference = build_pulse_scenario(**kwargs).start().run()
    interrupted = build_pulse_scenario(**kwargs).start().run(until=args.at)
    snap = Snapshot.capture(interrupted.sim)
    print(f"captured at t={snap.time:g}s ({len(snap.payload['events'])} "
          f"pending events, {len(snap.payload['states'])} objects)")
    fork = snap.fork().run()
    interrupted.run()

    summaries = {
        "uninterrupted": canonical_json(reference.summary()),
        "fork": canonical_json(fork.summary()),
        "parent": canonical_json(interrupted.summary()),
    }
    finals = {
        name: canonical_json(Snapshot.capture(sc.sim).payload)
        for name, sc in (("uninterrupted", reference), ("fork", fork),
                         ("parent", interrupted))
    }
    ok = (len(set(summaries.values())) == 1
          and len(set(finals.values())) == 1)
    if ok:
        print("roundtrip OK: fork and parent are byte-identical to the "
              "uninterrupted run (summary + full final state)")
        return 0
    for name in ("fork", "parent"):
        if summaries[name] != summaries["uninterrupted"]:
            print(f"FAIL: {name} summary diverges from uninterrupted run")
        elif finals[name] != finals["uninterrupted"]:
            print(f"FAIL: {name} final state diverges from "
                  f"uninterrupted run")
    return 1


def _cmd_snapshot_sweep(args):
    """Warm-started goal-extension sweep over the snapshot store."""
    from repro.fleet.runner import FleetRunner
    from repro.fleet.spec import canonical_json
    from repro.snapshot.warm import build_warm_campaign, pulse_goal_summary

    axis = (False, True) if args.lookahead else (False,)
    warm = args.snapshot_dir is not None
    if not warm:
        print("no --snapshot-dir: running cold (no prefix reuse)")
    spec = build_warm_campaign(
        extensions=tuple(args.extensions), lookahead_axis=axis,
        extend_at=args.at, warm=warm, snapshot_dir=args.snapshot_dir,
        horizon=args.horizon,
    )
    runner = FleetRunner(jobs=args.jobs if args.jobs is not None else 1)
    result = runner.run(spec)
    rows = []
    for task, task_result in zip(spec.tasks, result.results):
        value = task_result.value
        if not isinstance(value, dict):
            rows.append([task.id, "FAILED", "-", "-", "-", "-"])
            continue
        rows.append([
            task.id,
            "met" if value["goal_met"] else "missed",
            f"{value['survived_seconds']:.0f}",
            f"{value['energy_total_j']:.0f}",
            f"{value['battery_residual_j']:.0f}",
            "warm" if value.get("snapshot_restored") else "cold",
        ])
    print(render_table(
        ["task", "goal", "survived (s)", "energy (J)", "residual (J)",
         "prefix"],
        rows, title="goal-extension sweep",
    ))
    print(result.telemetry.render())
    if args.telemetry_out:
        import json

        with open(args.telemetry_out, "w", encoding="utf-8") as handle:
            json.dump(result.telemetry.snapshot(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.telemetry_out}")
    for failure in result.failures:
        print(f"FAILED {failure.task_id} "
              f"(attempts {failure.attempts}): {failure.error}")
    code = 0 if result.ok else 1
    if args.verify_cold and result.ok:
        strip = lambda s: {k: v for k, v in s.items()
                           if k != "snapshot_restored"}
        mismatches = []
        for task, task_result in zip(spec.tasks, result.results):
            cold = pulse_goal_summary(**{**task.params, "warm": False})
            if canonical_json(strip(cold)) != canonical_json(
                    strip(task_result.value)):
                mismatches.append(task.id)
        if mismatches:
            print(f"FAIL: warm result differs from cold for "
                  f"{', '.join(mismatches)}")
            code = 1
        else:
            print(f"verified: all {len(spec.tasks)} warm results "
                  f"identical to cold re-runs")
    return code


def _matrix_spec(args):
    """Build the policy-matrix campaign a matrix-mode invocation names."""
    import itertools

    from repro.fleet.diffmatrix import (
        DEFAULT_GRID,
        SCENARIO_KEYS,
        parse_policy_spec,
        policy_matrix_campaign,
    )

    baseline = parse_policy_spec(args.diff_against)
    scenario = parse_policy_spec(args.scenario or "",
                                 allowed=SCENARIO_KEYS)
    candidates = list(args.candidate or ())
    if args.vary:
        axes = []
        for vary in args.vary:
            key, sep, values = vary.partition("=")
            if not sep or not values:
                raise ValueError(f"malformed --vary {vary!r} "
                                 f"(expected KEY=V1,V2,...)")
            axes.append([(key.strip(), v.strip())
                         for v in values.split(",") if v.strip()])
        for combo in itertools.product(*axes):
            candidates.append(",".join(f"{k}={v}" for k, v in combo))
    if not candidates:
        candidates = list(DEFAULT_GRID)
    for candidate in candidates:
        parse_policy_spec(candidate)  # fail fast on a bad spec
    devices_path = getattr(args, "devices", None)
    fleet_size = getattr(args, "fleet_size", None)
    if devices_path or fleet_size:
        from repro.devices import (fleet_matrix_campaign, generate_fleet,
                                   load_fleet)

        if devices_path and fleet_size:
            raise ValueError("--devices and --fleet-size are exclusive")
        if devices_path:
            fleet = load_fleet(devices_path)
        else:
            fleet = generate_fleet(fleet_size,
                                   getattr(args, "fleet_seed", 0))
        return fleet_matrix_campaign(fleet, candidates, baseline=baseline,
                                     scenario=scenario)
    return policy_matrix_campaign(candidates, baseline=baseline,
                                  scenario=scenario)


def _matrix_finish(spec, values, args):
    """Fold, render, persist, and gate a completed matrix campaign."""
    from repro.devices.fleetmatrix import FLEET_TASK_FN, fleet_from_values
    from repro.fleet.diffmatrix import matrix_from_values

    # The spec's task fn says which matrix this is; both folds share
    # the document/render/violations surface.
    if spec.tasks and spec.tasks[0].fn == FLEET_TASK_FN:
        matrix = fleet_from_values(spec, values)
    else:
        matrix = matrix_from_values(spec, values)
    if args.matrix_out:
        import os

        out_dir = os.path.dirname(args.matrix_out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.matrix_out, "w", encoding="utf-8") as handle:
            handle.write(matrix.document())
        print(f"wrote {args.matrix_out}")
    print(matrix.render())
    if args.fail_on_divergence:
        problems = matrix.violations(
            max_windows=args.max_windows,
            max_abs_delta_j=args.max_delta_j,
            max_shape_distance=args.max_shape_distance,
        )
        for problem in problems:
            print(f"DIVERGENCE: {problem}")
        if problems:
            return 1
    return 0


def _cmd_sweep_matrix(args):
    """``repro sweep --diff-against``: the policy diff matrix."""
    from repro.fleet import FleetRunner, ProgressPrinter

    try:
        spec = _matrix_spec(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    printer = ProgressPrinter() if args.progress else None
    runner = FleetRunner(
        jobs=args.jobs, timeout_s=args.timeout, retries=args.retries,
        cache=args.cache_dir, progress=printer,
        worker_trace=args.worker_trace,
    )
    result = runner.run(spec)
    if printer is not None:
        printer.close()
    code = _matrix_finish(spec, result.values, args)
    print(result.telemetry.render())
    if args.results_out:
        from repro.service.jobs import results_document

        with open(args.results_out, "w", encoding="utf-8") as handle:
            handle.write(results_document(result.spec.name, result.values))
        print(f"wrote {args.results_out}")
    if args.telemetry_out:
        import json

        with open(args.telemetry_out, "w", encoding="utf-8") as handle:
            json.dump(result.telemetry.snapshot(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.telemetry_out}")
    for failure in result.failures:
        print(f"FAILED {failure.task_id} "
              f"(attempts {failure.attempts}): {failure.error}")
    if not result.ok:
        return 1
    return code


def _cmd_sweep(args):
    from repro.fleet import ProgressPrinter, run_sweep

    if args.diff_against is not None:
        return _cmd_sweep_matrix(args)
    printer = ProgressPrinter() if args.progress else None
    tables, result = run_sweep(
        apps=args.apps,
        jobs=args.jobs,
        trials=args.trials,
        think_time_s=args.think,
        cache=args.cache_dir,
        timeout_s=args.timeout,
        retries=args.retries,
        progress=printer,
        worker_trace=args.worker_trace,
    )
    if printer is not None:
        printer.close()
    for app, table in tables.items():
        # A partially failed campaign leaves holes in the table (failed
        # cells are omitted by tables_from_result); take the object set
        # as the union across rows and render missing cells as "-" so a
        # partial sweep still reports everything it *did* measure.
        objects = list(dict.fromkeys(
            obj for row in table.values() for obj in row
        ))
        rows = [
            [config] + [
                f"{table[config][obj]:.1f}" if obj in table[config] else "-"
                for obj in objects
            ]
            for config in table
        ]
        title = f"{app} energy (J)"
        if args.trials > 1:
            title += f" — mean ± 90% CI over {args.trials} trials"
        print(render_table([f"{app} (J)"] + objects, rows, title=title))
        print()
        if args.csv_dir:
            import os

            os.makedirs(args.csv_dir, exist_ok=True)
            means = {
                config: {
                    obj: (cell.mean if hasattr(cell, "mean") else cell)
                    for obj, cell in row.items()
                }
                for config, row in table.items()
            }
            path = os.path.join(args.csv_dir, f"sweep_{app}.csv")
            write_csv(path, energy_table_csv(means, objects))
            print(f"wrote {path}")
    print(result.telemetry.render())
    if args.results_out:
        from repro.service.jobs import results_document

        with open(args.results_out, "w", encoding="utf-8") as handle:
            handle.write(results_document(result.spec.name, result.values))
        print(f"wrote {args.results_out}")
    if args.telemetry_out:
        import json

        with open(args.telemetry_out, "w", encoding="utf-8") as handle:
            json.dump(result.telemetry.snapshot(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.telemetry_out}")
    for failure in result.failures:
        print(f"FAILED {failure.task_id} "
              f"(attempts {failure.attempts}): {failure.error}")
    return 0 if result.ok else 1


def _cmd_serve(args):
    """Run the persistent campaign service until shutdown."""
    from repro.service import CampaignService, serve

    service = CampaignService(
        workers=args.workers,
        cache=args.cache_dir,
        retries=args.retries,
        timeout_s=args.timeout,
        heartbeat_s=args.heartbeat,
        heartbeat_timeout_s=args.heartbeat_timeout,
    )
    with service:
        server = serve(service, host=args.host, port=args.port,
                       verbose=args.verbose)
        print(f"campaign service listening on {server.endpoint} "
              f"({args.workers} workers"
              + (f", cache {args.cache_dir}" if args.cache_dir else "")
              + ")", flush=True)
        try:
            server.serve_until_shutdown()
        except KeyboardInterrupt:
            print("\ninterrupt — shutting down", flush=True)
        finally:
            server.server_close()
    snapshot = service.snapshot()
    print(f"served {snapshot['jobs']} job(s); "
          f"{snapshot['reclaimed_workers']} worker(s) reclaimed")
    return 0


def _load_spec(args):
    """The campaign a ``submit`` names: built-in sweep or a spec file."""
    from repro.fleet.spec import CampaignSpec

    if args.spec is not None:
        import json

        with open(args.spec, "r", encoding="utf-8") as handle:
            return CampaignSpec.from_dict(json.load(handle))
    if getattr(args, "diff_against", None) is not None:
        # The same campaign `repro sweep --diff-against` runs, so the
        # folded matrix is byte-comparable with the one-shot path.
        return _matrix_spec(args)
    # --sweep (the default): the same campaign `repro sweep` runs, so
    # service results are byte-comparable with the one-shot path.
    from repro.fleet.campaigns import sweep_campaign

    return sweep_campaign(apps=args.apps, think_time_s=args.think,
                          trials=args.trials)


def _write_result_artifacts(payload, results_out=None, telemetry_out=None):
    from repro.service.jobs import results_document

    if results_out:
        with open(results_out, "w", encoding="utf-8") as handle:
            handle.write(results_document(payload["campaign"],
                                          payload["values"]))
        print(f"wrote {results_out}")
    if telemetry_out:
        import json

        with open(telemetry_out, "w", encoding="utf-8") as handle:
            json.dump(payload["telemetry"], handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {telemetry_out}")


def _print_job_outcome(payload):
    """Common terminal-job rendering for submit --wait / result."""
    telemetry = payload["telemetry"]
    print(f"job {payload['job_id']} ({payload['campaign']}): "
          f"{payload['state']} — {telemetry['done']}/{telemetry['total']} "
          f"tasks, {telemetry['cached']} cached, "
          f"{telemetry['failed']} failed, wall {telemetry['wall_s']:.2f}s")
    for failure in payload.get("failures", ()):
        print(f"FAILED {failure['task_id']} "
              f"(attempts {failure['attempts']}): {failure['error']}")


def _service_client(args):
    from repro.service import ServiceClient

    return ServiceClient(args.endpoint)


def _cmd_submit(args):
    from repro.service import ServiceError, ServiceUnavailable

    try:
        try:
            spec = _load_spec(args)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        client = _service_client(args)
        job_id = client.submit(
            spec, queue=args.queue, priority=args.priority,
            client=args.client, retries=args.retries,
            timeout_s=args.timeout,
        )
        print(f"submitted {job_id} ({spec.name}, {len(spec)} tasks) "
              f"to queue {args.queue!r} at {client.endpoint}")
        if not args.wait:
            return 0
        client.wait(job_id, timeout=args.wait_timeout)
        payload = client.result(job_id)
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_job_outcome(payload)
    _write_result_artifacts(payload, results_out=args.results_out,
                            telemetry_out=args.telemetry_out)
    matrix_code = 0
    if args.diff_against is not None:
        matrix_code = _matrix_finish(spec, payload["values"], args)
    # Like `repro sweep`: any permanently failed task is a nonzero exit.
    if payload["state"] != "done":
        return 1
    return matrix_code


def _cmd_status(args):
    from repro.service import ServiceError

    try:
        status = _service_client(args).status(args.job_id)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    telemetry = status["telemetry"]
    print(f"job {status['job_id']} ({status['campaign']}): "
          f"{status['state']}  queue={status['queue']} "
          f"priority={status['priority']}"
          + (f" client={status['client']}" if status["client"] else ""))
    print(f"  tasks: {telemetry['done']}/{telemetry['total']} done, "
          f"{telemetry['running']} running, {telemetry['queued']} queued, "
          f"{telemetry['cached']} cached, {telemetry['failed']} failed, "
          f"{telemetry['retried']} retried")
    running = status["tasks"]["running"]
    if running:
        print(f"  running: {', '.join(running)}")
    for failure in status.get("failures", ()):
        print(f"  FAILED {failure['task_id']}: {failure['error']}")
    return 0


def _cmd_result(args):
    from repro.service import ServiceError

    try:
        payload = _service_client(args).result(args.job_id)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_job_outcome(payload)
    _write_result_artifacts(payload, results_out=args.out,
                            telemetry_out=args.telemetry_out)
    return 0 if payload["state"] == "done" else 1


def _cmd_queues(args):
    from repro.service import ServiceError

    try:
        client = _service_client(args)
        queues = client.queues()
        workers = client.workers()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if queues:
        rows = [
            [name, str(entry["jobs"]), str(entry["active_jobs"]),
             str(entry["pending_tasks"])]
            for name, entry in sorted(queues.items())
        ]
        print(render_table(["queue", "jobs", "active", "pending tasks"],
                           rows, title="queues"))
    else:
        print("no jobs submitted yet")
    rows = [
        [w["id"], str(w["pid"]), "yes" if w["alive"] else "NO",
         f"{w['heartbeat_age_s']:.2f}s",
         w["current"]["task"] if w["current"] else "-",
         str(w["completed"])]
        for w in workers
    ]
    print()
    print(render_table(
        ["worker", "pid", "alive", "beat age", "running", "completed"],
        rows, title="workers",
    ))
    return 0


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    trace_prefix = getattr(args, "trace", None)
    if args.command != "trace" and trace_prefix:
        import os

        from repro.obs import Tracer, installed
        from repro.obs.export import write_chrome_trace, write_events_jsonl

        tracer = Tracer()
        with installed(tracer):
            code = _dispatch(args)
            tracer.flush()
        out_dir = os.path.dirname(trace_prefix)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        events = list(tracer.events)
        write_events_jsonl(events, trace_prefix + ".jsonl")
        write_chrome_trace(events, trace_prefix + ".trace.json")
        print(f"wrote {trace_prefix}.jsonl and {trace_prefix}.trace.json "
              f"({len(events)} events)")
    else:
        code = _dispatch(args)
    if getattr(args, "metrics_out", None):
        from repro.obs.export import write_metrics
        from repro.obs.metrics import current_metrics

        write_metrics(current_metrics(), args.metrics_out)
        print(f"wrote {args.metrics_out}")
    return code


def _dispatch(args):
    if args.command == "fig06":
        from repro.experiments import video_energy_table

        table_fn = lambda **kw: video_energy_table()
        return _cmd_energy_table(args, table_fn, "Figure 6 — video",
                                 app="video")
    if args.command == "fig08":
        from repro.experiments import speech_energy_table

        table_fn = lambda **kw: speech_energy_table()
        return _cmd_energy_table(args, table_fn, "Figure 8 — speech",
                                 app="speech")
    if args.command == "fig10":
        from repro.experiments import map_energy_table

        return _cmd_energy_table(args, map_energy_table, "Figure 10 — map",
                                 app="map")
    if args.command == "fig13":
        from repro.experiments import web_energy_table

        return _cmd_energy_table(args, web_energy_table, "Figure 13 — web",
                                 app="web")
    if args.command == "goal":
        return _cmd_goal(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "verify-profile":
        return _cmd_verify_profile(args)
    if args.command == "export-figures":
        from repro.experiments import export_figures

        written = export_figures(args.directory, figures=args.figures,
                                 jobs=args.jobs, cache=args.cache_dir)
        for path in written:
            print(f"wrote {path}")
        return 0
    if args.command == "report":
        from repro.experiments import full_report, render_report

        report = full_report(
            include_concurrency=not args.no_concurrency,
            include_goal=not args.no_goal,
            goal_energy=args.energy,
            jobs=args.jobs,
        )
        print(render_report(report))
        return 0
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "snapshot":
        return _cmd_snapshot(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "result":
        return _cmd_result(args)
    if args.command == "queues":
        return _cmd_queues(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
