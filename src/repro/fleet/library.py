"""Fleet task library: module-level, JSON-parameter experiment callables.

Pool workers receive a task as ``(dotted path, params dict)``, so every
function here (a) is importable by path, (b) takes only primitives —
workload objects are resolved by name inside the worker — and (c) is
deterministic given its parameters.  ``trial=0`` means the unperturbed
calibration cost model, matching :func:`repro.experiments.runner.trial_costs`.

The last few functions are fault-injection and load helpers used by the
fleet's own tests and benchmarks.
"""

from __future__ import annotations

import os
import time

from repro.experiments.fidelity_study import (
    measure_map,
    measure_speech,
    measure_video,
    measure_web,
)
from repro.experiments.runner import trial_costs
from repro.workloads import (
    clip_by_name,
    image_by_name,
    map_by_name,
    utterance_by_name,
)

__all__ = [
    "video_energy",
    "speech_energy",
    "map_energy",
    "web_energy",
    "run_figure",
    "seeded_value",
    "sleep_for",
    "spin_for",
    "always_fail",
    "fail_until_marker",
    "die_once_then",
]


def video_energy(clip, config, trial=0, spread=0.03):
    """Energy (J) to play the named clip under a Figure 6 config."""
    costs = trial_costs(trial, spread=spread)
    return measure_video(clip_by_name(clip), config, costs=costs)


def speech_energy(utterance, config, trial=0, spread=0.03):
    """Energy (J) to recognize the named utterance (Figure 8 config)."""
    costs = trial_costs(trial, spread=spread)
    return measure_speech(utterance_by_name(utterance), config, costs=costs)


def map_energy(city, config, think_time_s=5.0, trial=0, spread=0.03):
    """Energy (J) to fetch and view the named map (Figure 10 config)."""
    costs = trial_costs(trial, spread=spread)
    return measure_map(
        map_by_name(city), config, think_time_s=think_time_s, costs=costs
    )


def web_energy(image, config, think_time_s=5.0, trial=0, spread=0.03):
    """Energy (J) to fetch and view the named image (Figure 13 config)."""
    costs = trial_costs(trial, spread=spread)
    return measure_web(
        image_by_name(image), config, think_time_s=think_time_s, costs=costs
    )


def run_figure(name):
    """Regenerate one paper figure's CSV bundle: ``{stem: csv_text}``."""
    from repro.experiments.figures import FIGURES

    try:
        figure_fn = FIGURES[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; available: {sorted(FIGURES)}"
        ) from None
    return dict(figure_fn())


# ----------------------------------------------------------------------
# fault-injection and load helpers (tests, benchmarks, examples)
# ----------------------------------------------------------------------
def seeded_value(seed, scale=1.0):
    """A deterministic pseudo-random float — pure function of ``seed``."""
    import random

    return random.Random(seed).random() * scale


def sleep_for(seconds, value=None):
    """Block for wall-clock ``seconds`` (I/O-shaped load); returns ``value``."""
    time.sleep(seconds)
    return seconds if value is None else value


def spin_for(seconds, value=None):
    """Busy-loop for wall-clock ``seconds`` (CPU-shaped load)."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass
    return seconds if value is None else value


def always_fail(message="injected fault"):
    """A task that deterministically crashes."""
    raise RuntimeError(message)


def fail_until_marker(marker, value=1.0):
    """Fail on the first attempt, succeed once ``marker`` exists.

    The marker file carries the "already failed once" state across
    worker processes, making retry behaviour testable.
    """
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("failed once\n")
        raise RuntimeError("transient fault (first attempt)")
    return value


def die_once_then(marker, fn, **params):
    """Kill the whole worker process on the first attempt, then compute.

    Unlike :func:`fail_until_marker` (which raises and lets the worker
    report the error), this calls ``os._exit`` — the worker vanishes
    mid-task without a completion message, exactly the failure the
    service's heartbeat/reclaim machinery exists for.  Once the marker
    exists, later attempts run the named library function normally, so
    a reclaimed-and-retried task still produces its real value.
    """
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("died once\n")
        os._exit(17)
    from repro.fleet.spec import resolve_callable

    return resolve_callable(fn)(**params)
