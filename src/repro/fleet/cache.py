"""On-disk result cache keyed by stable task hashes.

One JSON file per completed task, named by the task's
:func:`~repro.fleet.spec.task_key`.  Re-running a campaign therefore
executes only tasks whose spec (callable path, parameters, or the
global :data:`~repro.fleet.spec.CACHE_KEY_VERSION`) changed; everything
else is served from disk.  Writes are atomic (tempfile + rename) so a
killed campaign never leaves a truncated record behind.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of ``<key>.json`` records for completed tasks."""

    def __init__(self, directory):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    def path(self, key):
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key):
        """Return the cached record for ``key``, or ``None``.

        A corrupt record (interrupted write from a pre-atomic era, disk
        fault) is treated as a miss and removed, never an error.
        """
        if key is None:
            return None
        try:
            with open(self.path(key), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            self.discard(key)
            return None

    def put(self, key, record):
        """Atomically store ``record`` (a JSON-serializable dict)."""
        if key is None:
            raise ValueError("cannot cache a task without a stable key")
        text = json.dumps(record, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def discard(self, key):
        try:
            os.unlink(self.path(key))
        except OSError:
            pass

    def keys(self):
        return [
            name[: -len(".json")]
            for name in os.listdir(self.directory)
            if name.endswith(".json") and not name.startswith(".tmp-")
        ]

    def __len__(self):
        return len(self.keys())

    def __contains__(self, key):
        return key is not None and os.path.exists(self.path(key))

    def clear(self):
        for key in self.keys():
            self.discard(key)
