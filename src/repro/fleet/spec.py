"""Declarative campaign model: tasks, stable keys, deterministic seeds.

A *task* is one independent simulation: a module-level callable named by
dotted path, plus JSON-serializable keyword parameters.  A *campaign*
is an ordered collection of uniquely-named tasks.  Everything about a
task is data, which buys three properties at once:

* it pickles across a process pool without dragging closures along;
* it hashes stably (:func:`task_key`), so an on-disk cache can tell
  whether a task has already been executed by *any* previous run;
* seeds derive deterministically from the campaign seed and the task id
  (:func:`derive_seed`), so serial and parallel execution are
  bit-identical — ordering and worker count never leak into results.

Tasks may optionally carry an opaque ``payload`` of extra positional
arguments (e.g. a caller-supplied experiment callable).  Payloads ride
along to workers via pickle but are *not* part of the cache key; a task
with a payload is simply uncacheable.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field, replace

__all__ = [
    "Task",
    "CampaignSpec",
    "derive_seed",
    "task_key",
    "resolve_callable",
]

# Bump to invalidate every previously cached result (task semantics changed).
CACHE_KEY_VERSION = 1


def canonical_json(obj):
    """Canonical JSON text for hashing: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_seed(root_seed, *components):
    """Derive a deterministic 63-bit seed from a root seed and labels.

    The derivation is a stable hash, so it is independent of execution
    order, worker count, and Python's per-process hash randomization.
    """
    text = canonical_json([int(root_seed), list(map(str, components))])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def resolve_callable(path):
    """Import ``"pkg.module:attr"`` (or ``"pkg.module.attr"``) to a callable."""
    if ":" in path:
        module_name, _, attr = path.partition(":")
    else:
        module_name, _, attr = path.rpartition(".")
    if not module_name or not attr:
        raise ValueError(f"not a dotted callable path: {path!r}")
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, attr)
    except AttributeError:
        raise ValueError(f"{module_name!r} has no attribute {attr!r}") from None
    if not callable(fn):
        raise ValueError(f"{path!r} resolved to non-callable {fn!r}")
    return fn


def task_key(fn, params):
    """Stable hex digest identifying one task's work, or the cache key."""
    text = canonical_json({
        "v": CACHE_KEY_VERSION,
        "fn": fn,
        "params": params,
    })
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Task:
    """One schedulable simulation: ``resolve(fn)(*payload, **params)``.

    Parameters must be JSON-serializable (they are hashed into the
    cache key); anything that is not — a callable, a rich object —
    travels in ``payload`` and marks the task uncacheable.
    """

    id: str
    fn: str
    params: dict = field(default_factory=dict)
    payload: tuple = ()
    timeout_s: float = None

    def __post_init__(self):
        if not self.id:
            raise ValueError("task id must be non-empty")
        object.__setattr__(self, "payload", tuple(self.payload))
        object.__setattr__(self, "params", dict(self.params))
        if self.cacheable:
            canonical_json(self.params)  # fail fast on non-JSON params

    @property
    def cacheable(self):
        """Only pure-data tasks have a stable identity worth caching."""
        return not self.payload

    def key(self):
        """Cache key, or ``None`` when the task carries a payload."""
        if not self.cacheable:
            return None
        return task_key(self.fn, self.params)

    def resolve(self):
        return resolve_callable(self.fn)

    def call(self):
        """Execute in the current process (the serial path and workers)."""
        return self.resolve()(*self.payload, **self.params)

    def to_dict(self):
        """Wire format for the campaign service; pure-data tasks only."""
        if self.payload:
            raise ValueError(
                f"task {self.id!r} carries a payload and cannot be "
                f"serialized for submission"
            )
        record = {"id": self.id, "fn": self.fn, "params": self.params}
        if self.timeout_s is not None:
            record["timeout_s"] = self.timeout_s
        return record

    @classmethod
    def from_dict(cls, record):
        return cls(
            id=record["id"],
            fn=record["fn"],
            params=record.get("params", {}),
            timeout_s=record.get("timeout_s"),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """An ordered, uniquely-named collection of independent tasks."""

    name: str
    tasks: tuple
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "tasks", tuple(self.tasks))
        seen = set()
        for task in self.tasks:
            if task.id in seen:
                raise ValueError(
                    f"duplicate task id {task.id!r} in campaign {self.name!r}"
                )
            seen.add(task.id)

    def __len__(self):
        return len(self.tasks)

    def to_dict(self):
        """Wire format for the campaign service (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "tasks": [task.to_dict() for task in self.tasks],
        }

    @classmethod
    def from_dict(cls, record):
        """Rebuild a spec a client serialized with :meth:`to_dict`.

        The round-trip is exact for pure-data campaigns, so a spec
        submitted over the service wire hashes (and therefore caches
        and seeds) identically to the in-process original.
        """
        return cls(
            name=record["name"],
            tasks=tuple(Task.from_dict(t) for t in record.get("tasks", ())),
            seed=record.get("seed", 0),
        )

    def auto_seeded(self, param="seed"):
        """Give every task lacking ``param`` a seed derived from its id.

        The derived seed depends only on ``(self.seed, task.id)``, never
        on position or worker assignment, so any execution order
        reproduces the same per-task randomness.
        """
        tasks = []
        for task in self.tasks:
            if param in task.params:
                tasks.append(task)
            else:
                params = dict(task.params)
                params[param] = derive_seed(self.seed, self.name, task.id)
                tasks.append(replace(task, params=params))
        return replace(self, tasks=tuple(tasks))
