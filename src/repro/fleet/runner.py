"""FleetRunner: execute a campaign across a process pool, fault-tolerantly.

Execution contract:

* **Determinism.** Tasks are independent and individually deterministic,
  so results depend only on each task's spec — never on worker count or
  completion order.  ``CampaignResult.results`` is always in campaign
  task order, which makes serial (``jobs=1``) and parallel aggregates
  bit-identical.
* **Fault tolerance.** A task that raises, times out, or takes its
  worker process down is retried up to ``retries`` times with
  exponential backoff; a task that exhausts its attempts becomes a
  *recorded failure* — the campaign still completes and returns every
  other result.  Failures are never silently dropped.
* **Caching.** With a cache attached, each cacheable task's result is
  stored under its stable spec hash; a re-run executes only tasks whose
  spec changed.
* **Serial path.** ``jobs=1`` runs everything in-process with the same
  retry/cache/telemetry semantics and zero pool overhead — it is both
  the speedup baseline and the degenerate case.
"""

from __future__ import annotations

import heapq
import itertools
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

try:  # BrokenProcessPool moved in 3.3→3.7 eras; import defensively.
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = OSError

from repro.fleet.cache import ResultCache
from repro.fleet.telemetry import FleetTelemetry
from repro.fleet.worker import run_task
from repro.obs.metrics import current_metrics
from repro.obs.tracer import current_tracer

__all__ = ["FleetRunner", "TaskResult", "CampaignResult"]

#: Terminal task states.
OK, CACHED, FAILED = "ok", "cached", "failed"


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one task: a value, a cache hit, or a recorded failure."""

    task_id: str
    status: str
    value: object = None
    error: str = None
    attempts: int = 0
    wall_s: float = 0.0

    @property
    def ok(self):
        return self.status in (OK, CACHED)


@dataclass(frozen=True)
class CampaignResult:
    """Every task's outcome, in campaign order, plus run telemetry."""

    spec: object
    results: tuple
    telemetry: FleetTelemetry

    @property
    def values(self):
        """``{task_id: value}`` for every task that produced a value."""
        return {r.task_id: r.value for r in self.results if r.ok}

    @property
    def failures(self):
        return tuple(r for r in self.results if r.status == FAILED)

    @property
    def ok(self):
        return not self.failures

    def value(self, task_id):
        """The value of one task; raises if it failed or is unknown."""
        for result in self.results:
            if result.task_id == task_id:
                if not result.ok:
                    raise KeyError(
                        f"task {task_id!r} failed: {result.error}"
                    )
                return result.value
        raise KeyError(f"no task {task_id!r} in campaign {self.spec.name!r}")

    def raise_on_failure(self):
        """Raise :class:`~repro.fleet.errors.CampaignError` if any task failed."""
        if self.failures:
            from repro.fleet.errors import CampaignError

            summary = "; ".join(
                f"{r.task_id}: {r.error}" for r in self.failures
            )
            raise CampaignError(
                f"{len(self.failures)} of {len(self.results)} tasks failed "
                f"in campaign {self.spec.name!r}: {summary}",
                failures=self.failures,
            )
        return self


def _describe(exc):
    return f"{type(exc).__name__}: {exc}"


class FleetRunner:
    """Run :class:`~repro.fleet.spec.CampaignSpec` instances.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``, ``1`` runs
        serially in-process.
    timeout_s:
        Default per-task wall-clock budget, enforced inside workers
        (see :mod:`repro.fleet.worker`).  ``Task.timeout_s`` overrides.
    retries:
        Extra attempts after the first failure of a task.
    backoff_s:
        Base retry delay; attempt *n* waits ``backoff_s * 2**(n-1)``.
    cache:
        ``None``, a directory path, or a :class:`ResultCache`.
    progress:
        Optional callable ``progress(event, task_id, telemetry, detail)``
        invoked on cached/ok/failed/retry events.
    worker_trace:
        Collect a ring-buffered trace *inside* each worker and merge it
        into the coordinator's stream when the task completes: every
        worker event re-emits under the ``fleet`` category on a
        ``w<pid>/<task-id>`` track, named ``<orig-cat>/<orig-name>`` —
        so per-task sim activity is visible without polluting the
        coordinator's sim-domain categories (decision spines and power
        joins never read ``fleet``).  Effective only when the
        coordinator's own ``fleet`` gate is open.
    """

    def __init__(self, jobs=None, timeout_s=None, retries=2,
                 backoff_s=0.05, cache=None, progress=None,
                 tracer=None, metrics=None, worker_trace=False):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.progress = progress
        # Tracing happens at the coordinator (pool workers are separate
        # processes) with wall-clock timestamps on the "fleet" category.
        self.tracer = tracer if tracer is not None else current_tracer()
        self._trace = self.tracer.gate("fleet")
        # Shipping worker rings is pure overhead when nothing records
        # them, so the flag only takes effect with an open fleet gate.
        self.worker_trace = bool(worker_trace) and self._trace is not None
        self.metrics = metrics if metrics is not None else current_metrics()
        self._m_events = {
            OK: self.metrics.counter("fleet.tasks_ok"),
            CACHED: self.metrics.counter("fleet.tasks_cached"),
            FAILED: self.metrics.counter("fleet.tasks_failed"),
            "retry": self.metrics.counter("fleet.retries"),
        }
        self._m_task_wall = self.metrics.histogram("fleet.task_wall_s")

    # ------------------------------------------------------------------
    def run(self, spec):
        """Execute every task; returns a :class:`CampaignResult`."""
        telemetry = FleetTelemetry(total=len(spec.tasks))
        started = time.monotonic()
        trace = self._trace
        campaign_t0 = self.tracer.wall() if trace is not None else 0.0
        results = {}
        pending = []
        for task in spec.tasks:
            record = self.cache.get(task.key()) if self.cache else None
            if record is not None:
                results[task.id] = TaskResult(
                    task.id, CACHED, value=record["value"],
                    wall_s=record.get("wall_s", 0.0),
                )
                telemetry.cached += 1
                self._emit(CACHED, task.id, telemetry)
            else:
                pending.append(task)

        if pending:
            if self.jobs == 1:
                self._run_serial(pending, results, telemetry)
            else:
                self._run_pool(pending, results, telemetry)

        telemetry.wall_s = time.monotonic() - started
        if trace is not None:
            trace.complete(
                campaign_t0, "fleet", "campaign", dur=telemetry.wall_s,
                track="campaign",
                args={"name": spec.name, **telemetry.snapshot()},
            )
        ordered = tuple(results[task.id] for task in spec.tasks)
        return CampaignResult(spec=spec, results=ordered, telemetry=telemetry)

    # ------------------------------------------------------------------
    def _emit(self, event, task_id, telemetry, detail=None):
        counter = self._m_events.get(event)
        if counter is not None:
            counter.inc()
        if self._trace is not None and event != OK:
            # OK tasks get a complete-span from _record_success instead.
            args = {"task": task_id, "done": telemetry.done}
            if detail:
                args["detail"] = detail
            self._trace.instant(
                self.tracer.wall(), "fleet", f"task.{event}",
                track="tasks", args=args,
            )
        if self.progress is not None:
            self.progress(event, task_id, telemetry, detail)

    def _merge_worker_trace(self, task, outcome):
        """Replay one worker's ring buffer onto a per-task fleet track."""
        records = outcome.get("trace")
        if self._trace is None or not records:
            return
        worker = outcome.get("worker_pid")
        track = f"w{worker}/{task.id}" if worker is not None else f"w/{task.id}"
        for record in records:
            self._trace.replay(
                record, cat="fleet",
                name=f"{record.get('cat', '?')}/{record.get('name', '?')}",
                track=track,
            )
        dropped = outcome.get("trace_dropped", 0)
        if dropped:
            self._trace.instant(
                self.tracer.wall(), "fleet", "task.trace_dropped",
                track=track, args={"task": task.id, "dropped": dropped},
            )

    def _record_success(self, task, outcome, attempt, results, telemetry):
        results[task.id] = TaskResult(
            task.id, OK, value=outcome["value"],
            attempts=attempt, wall_s=outcome["wall_s"],
        )
        telemetry.succeeded += 1
        telemetry.busy_s += outcome["wall_s"]
        value = outcome["value"]
        if isinstance(value, dict) and value.get("snapshot_restored"):
            telemetry.restored += 1
        self._merge_worker_trace(task, outcome)
        self._m_task_wall.observe(outcome["wall_s"])
        if self._trace is not None:
            end = self.tracer.wall()
            self._trace.complete(
                max(0.0, end - outcome["wall_s"]), "fleet", "task",
                dur=outcome["wall_s"], track="tasks",
                args={"task": task.id, "attempts": attempt},
            )
        if self.cache is not None and task.cacheable:
            self.cache.put(task.key(), {
                "fn": task.fn,
                "params": task.params,
                "value": outcome["value"],
                "wall_s": outcome["wall_s"],
            })
        self._emit(OK, task.id, telemetry, f"{outcome['wall_s']:.3f}s")

    def _record_failure(self, task, error, attempt, results, telemetry):
        results[task.id] = TaskResult(
            task.id, FAILED, error=error, attempts=attempt,
        )
        telemetry.failed += 1
        self._emit(FAILED, task.id, telemetry, error)

    # ------------------------------------------------------------------
    def _run_serial(self, tasks, results, telemetry):
        for task in tasks:
            for attempt in range(1, self.retries + 2):
                telemetry.attempts += 1
                try:
                    outcome = run_task(task, self.timeout_s,
                                       collect_trace=self.worker_trace)
                except Exception as exc:
                    if attempt <= self.retries:
                        telemetry.retried += 1
                        self._emit("retry", task.id, telemetry, _describe(exc))
                        time.sleep(self.backoff_s * 2 ** (attempt - 1))
                        continue
                    self._record_failure(
                        task, _describe(exc), attempt, results, telemetry
                    )
                else:
                    self._record_success(
                        task, outcome, attempt, results, telemetry
                    )
                break

    # ------------------------------------------------------------------
    def _run_pool(self, tasks, results, telemetry):
        executor = ProcessPoolExecutor(max_workers=self.jobs)
        inflight = {}
        retry_heap = []  # (due_time, tiebreak, task, attempt)
        tiebreak = itertools.count()

        def submit(task, attempt):
            nonlocal executor
            telemetry.attempts += 1
            try:
                future = executor.submit(run_task, task, self.timeout_s,
                                         self.worker_trace)
            except BrokenProcessPool:
                # The pool died between completions; replace it wholesale.
                executor.shutdown(wait=False, cancel_futures=True)
                executor = ProcessPoolExecutor(max_workers=self.jobs)
                future = executor.submit(run_task, task, self.timeout_s,
                                         self.worker_trace)
            inflight[future] = (task, attempt)
            telemetry.running += 1

        def fail_or_retry(task, attempt, error):
            if attempt <= self.retries:
                telemetry.retried += 1
                self._emit("retry", task.id, telemetry, error)
                due = time.monotonic() + self.backoff_s * 2 ** (attempt - 1)
                heapq.heappush(
                    retry_heap, (due, next(tiebreak), task, attempt + 1)
                )
            else:
                self._record_failure(task, error, attempt, results, telemetry)

        try:
            for task in tasks:
                submit(task, 1)

            while inflight or retry_heap:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    _, _, task, attempt = heapq.heappop(retry_heap)
                    submit(task, attempt)
                if not inflight:
                    time.sleep(max(0.0, retry_heap[0][0] - now))
                    continue
                wait_timeout = (
                    max(0.0, retry_heap[0][0] - now) if retry_heap else None
                )
                done, _ = wait(
                    inflight, timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    task, attempt = inflight.pop(future)
                    telemetry.running -= 1
                    try:
                        outcome = future.result()
                    except BrokenProcessPool as exc:
                        # Worker crash kills every in-flight future; each
                        # surfaces here and burns one attempt for its task.
                        fail_or_retry(
                            task, attempt,
                            f"worker process crashed ({_describe(exc)})",
                        )
                    except Exception as exc:
                        fail_or_retry(task, attempt, _describe(exc))
                    else:
                        self._record_success(
                            task, outcome, attempt, results, telemetry
                        )
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
