"""FleetRunner: execute a campaign across a process pool, fault-tolerantly.

Execution contract:

* **Determinism.** Tasks are independent and individually deterministic,
  so results depend only on each task's spec — never on worker count or
  completion order.  ``CampaignResult.results`` is always in campaign
  task order, which makes serial (``jobs=1``) and parallel aggregates
  bit-identical.
* **Fault tolerance.** A task that raises, times out, or takes its
  worker process down is retried up to ``retries`` times with
  exponential backoff; a task that exhausts its attempts becomes a
  *recorded failure* — the campaign still completes and returns every
  other result.  Failures are never silently dropped.
* **Caching.** With a cache attached, each cacheable task's result is
  stored under its stable spec hash; a re-run executes only tasks whose
  spec changed.
* **Serial path.** ``jobs=1`` runs everything in-process with the same
  retry/cache/telemetry semantics and zero pool overhead — it is both
  the speedup baseline and the degenerate case.

The retry/cache/telemetry semantics themselves live in
:class:`~repro.fleet.execution.CampaignExecution`; this module only
decides *where* attempts run (in-process or on a one-shot pool).  The
persistent :mod:`repro.service` drives the same execution engine from a
warm worker pool, so one-shot and service campaigns are bit-identical.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

try:  # BrokenProcessPool moved in 3.3→3.7 eras; import defensively.
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = OSError

from repro.fleet.cache import ResultCache
from repro.fleet.execution import (
    CACHED,
    FAILED,
    OK,
    CampaignExecution,
    CampaignResult,
    TaskResult,
    describe_error,
)
from repro.fleet.worker import run_task
from repro.obs.metrics import current_metrics
from repro.obs.tracer import current_tracer

__all__ = ["FleetRunner", "TaskResult", "CampaignResult"]

_describe = describe_error


class FleetRunner:
    """Run :class:`~repro.fleet.spec.CampaignSpec` instances.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``, ``1`` runs
        serially in-process.
    timeout_s:
        Default per-task wall-clock budget, enforced inside workers
        (see :mod:`repro.fleet.worker`).  ``Task.timeout_s`` overrides.
    retries:
        Extra attempts after the first failure of a task.
    backoff_s:
        Base retry delay; attempt *n* waits ``backoff_s * 2**(n-1)``.
    cache:
        ``None``, a directory path, or a :class:`ResultCache`.
    progress:
        Optional callable ``progress(event, task_id, telemetry, detail)``
        invoked on cached/ok/failed/retry events.
    worker_trace:
        Collect a ring-buffered trace *inside* each worker and merge it
        into the coordinator's stream when the task completes: every
        worker event re-emits under the ``fleet`` category on a
        ``w<pid>/<task-id>`` track, named ``<orig-cat>/<orig-name>`` —
        so per-task sim activity is visible without polluting the
        coordinator's sim-domain categories (decision spines and power
        joins never read ``fleet``).  Effective only when the
        coordinator's own ``fleet`` gate is open.
    """

    def __init__(self, jobs=None, timeout_s=None, retries=2,
                 backoff_s=0.05, cache=None, progress=None,
                 tracer=None, metrics=None, worker_trace=False):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.progress = progress
        # Tracing happens at the coordinator (pool workers are separate
        # processes) with wall-clock timestamps on the "fleet" category.
        self.tracer = tracer if tracer is not None else current_tracer()
        self._trace = self.tracer.gate("fleet")
        # Shipping worker rings is pure overhead when nothing records
        # them, so the flag only takes effect with an open fleet gate.
        self.worker_trace = bool(worker_trace) and self._trace is not None
        self.metrics = metrics if metrics is not None else current_metrics()

    def _execution(self, spec):
        return CampaignExecution(
            spec, cache=self.cache, retries=self.retries,
            backoff_s=self.backoff_s, timeout_s=self.timeout_s,
            progress=self.progress, tracer=self.tracer,
            metrics=self.metrics, worker_trace=self.worker_trace,
        )

    # ------------------------------------------------------------------
    def run(self, spec):
        """Execute every task; returns a :class:`CampaignResult`."""
        execution = self._execution(spec)
        pending = execution.admit()
        if pending:
            if self.jobs == 1:
                self._run_serial(execution, pending)
            else:
                self._run_pool(execution, pending)
        return execution.finish()

    # ------------------------------------------------------------------
    def _run_serial(self, execution, tasks):
        for task in tasks:
            attempt = 1
            while True:
                execution.note_attempt()
                try:
                    outcome = run_task(task, execution.timeout_s,
                                       collect_trace=execution.worker_trace)
                except Exception as exc:
                    due = execution.record_error(
                        task, _describe(exc), attempt
                    )
                    if due is None:
                        break
                    while True:
                        time.sleep(max(0.0, due - time.monotonic()))
                        popped = execution.pop_due()
                        if popped:
                            ((task, attempt),) = popped
                            break
                else:
                    execution.record_success(task, outcome, attempt)
                    break

    # ------------------------------------------------------------------
    def _run_pool(self, execution, tasks):
        executor = ProcessPoolExecutor(max_workers=self.jobs)
        inflight = {}
        telemetry = execution.telemetry

        def submit(task, attempt):
            nonlocal executor
            execution.note_attempt()
            try:
                future = executor.submit(run_task, task,
                                         execution.timeout_s,
                                         execution.worker_trace)
            except BrokenProcessPool:
                # The pool died between completions; replace it wholesale.
                executor.shutdown(wait=False, cancel_futures=True)
                executor = ProcessPoolExecutor(max_workers=self.jobs)
                future = executor.submit(run_task, task,
                                         execution.timeout_s,
                                         execution.worker_trace)
            inflight[future] = (task, attempt)
            telemetry.running += 1

        try:
            for task in tasks:
                submit(task, 1)

            while inflight or execution.awaiting_retry:
                now = time.monotonic()
                for task, attempt in execution.pop_due(now):
                    submit(task, attempt)
                if not inflight:
                    time.sleep(max(0.0, execution.next_due() - now))
                    continue
                next_due = execution.next_due()
                wait_timeout = (
                    max(0.0, next_due - now) if next_due is not None
                    else None
                )
                done, _ = wait(
                    inflight, timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    task, attempt = inflight.pop(future)
                    telemetry.running -= 1
                    try:
                        outcome = future.result()
                    except BrokenProcessPool as exc:
                        # Worker crash kills every in-flight future; each
                        # surfaces here and burns one attempt for its task.
                        execution.record_error(
                            task,
                            f"worker process crashed ({_describe(exc)})",
                            attempt,
                        )
                    except Exception as exc:
                        execution.record_error(task, _describe(exc), attempt)
                    else:
                        execution.record_success(task, outcome, attempt)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
