"""Campaign progress counters and the CLI progress printer.

``busy_s`` accumulates every successful task's in-worker wall time, so
``busy_s / wall_s`` estimates the speedup over running the same work
serially — the number the sweep command reports.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

__all__ = ["FleetTelemetry", "ProgressPrinter"]


@dataclass
class FleetTelemetry:
    """Live counters for one campaign run."""

    total: int = 0
    cached: int = 0
    succeeded: int = 0
    failed: int = 0
    retried: int = 0
    attempts: int = 0
    running: int = 0
    busy_s: float = 0.0
    wall_s: float = 0.0
    #: Successful tasks that warm-started from a stored snapshot
    #: instead of cold-simulating their scenario prefix.
    restored: int = 0

    @property
    def done(self):
        return self.cached + self.succeeded + self.failed

    @property
    def executed(self):
        """Tasks that actually ran (i.e. were not served from cache)."""
        return self.succeeded + self.failed

    @property
    def queued(self):
        return max(0, self.total - self.done - self.running)

    #: Below this wall time the busy/wall ratio is numerically
    #: meaningless (clock granularity dominates), so no speedup is
    #: estimated.
    MIN_WALL_S = 1e-3

    @property
    def speedup_estimate(self):
        """Estimated speedup vs running the executed work serially.

        Returns 0.0 when the campaign's wall time is too short to
        divide by meaningfully — in particular for cache-dominated
        runs that finish in microseconds (see :attr:`from_cache`).
        """
        if self.wall_s < self.MIN_WALL_S:
            return 0.0
        return self.busy_s / self.wall_s

    @property
    def from_cache(self):
        """True when every completed task was served from cache."""
        return self.cached > 0 and self.executed == 0

    def snapshot(self):
        return {
            "total": self.total,
            "queued": self.queued,
            "running": self.running,
            "done": self.done,
            "cached": self.cached,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "retried": self.retried,
            "attempts": self.attempts,
            "restored": self.restored,
            "busy_s": self.busy_s,
            "wall_s": self.wall_s,
            "speedup_estimate": self.speedup_estimate,
            "from_cache": self.from_cache,
        }

    def render(self):
        """One summary line for the terminal."""
        line = (
            f"fleet: {self.total} tasks  ok {self.succeeded}  "
            f"cached {self.cached}  failed {self.failed}  "
            f"retries {self.retried}  wall {self.wall_s:.2f}s"
        )
        if self.restored:
            line += f"  restored {self.restored}"
        if self.from_cache:
            line += "  (from cache)"
        elif self.succeeded:
            line += f"  busy {self.busy_s:.2f}s"
            speedup = self.speedup_estimate
            if speedup > 0.0:
                line += f"  est. speedup {speedup:.1f}x"
        return line


@dataclass
class ProgressPrinter:
    """Per-task progress: ``[done/total] ok map/cropped (0.3s)``.

    On a TTY, updates rewrite one line in place (``\\r``); call
    :meth:`close` when the campaign finishes to terminate it.  On a
    non-TTY stream (a CI log, a pipe) each update is a plain full line,
    so redirected output stays readable instead of one giant
    carriage-return soup.
    """

    stream: object = field(default_factory=lambda: sys.stderr)

    def __post_init__(self):
        isatty = getattr(self.stream, "isatty", None)
        self._tty = bool(isatty()) if callable(isatty) else False
        self._open_line = False

    def __call__(self, event, task_id, telemetry, detail=None):
        suffix = f" ({detail})" if detail else ""
        line = (
            f"[{telemetry.done}/{telemetry.total}] {event} {task_id}{suffix}"
        )
        if self._tty:
            self.stream.write(f"\r\x1b[2K{line}")
            self.stream.flush()
            self._open_line = True
        else:
            print(line, file=self.stream, flush=True)

    def close(self):
        """Terminate an in-place progress line (no-op on non-TTY)."""
        if self._open_line:
            self.stream.write("\n")
            self.stream.flush()
            self._open_line = False
