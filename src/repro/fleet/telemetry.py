"""Campaign progress counters and the CLI progress printer.

``busy_s`` accumulates every successful task's in-worker wall time, so
``busy_s / wall_s`` estimates the speedup over running the same work
serially — the number the sweep command reports.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

__all__ = ["FleetTelemetry", "ProgressPrinter"]


@dataclass
class FleetTelemetry:
    """Live counters for one campaign run."""

    total: int = 0
    cached: int = 0
    succeeded: int = 0
    failed: int = 0
    retried: int = 0
    attempts: int = 0
    running: int = 0
    busy_s: float = 0.0
    wall_s: float = 0.0

    @property
    def done(self):
        return self.cached + self.succeeded + self.failed

    @property
    def executed(self):
        """Tasks that actually ran (i.e. were not served from cache)."""
        return self.succeeded + self.failed

    @property
    def queued(self):
        return max(0, self.total - self.done - self.running)

    @property
    def speedup_estimate(self):
        """Estimated speedup vs running the executed work serially."""
        if self.wall_s <= 0.0:
            return 0.0
        return self.busy_s / self.wall_s

    def snapshot(self):
        return {
            "total": self.total,
            "queued": self.queued,
            "running": self.running,
            "done": self.done,
            "cached": self.cached,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "retried": self.retried,
            "attempts": self.attempts,
            "busy_s": self.busy_s,
            "wall_s": self.wall_s,
        }

    def render(self):
        """One summary line for the terminal."""
        line = (
            f"fleet: {self.total} tasks  ok {self.succeeded}  "
            f"cached {self.cached}  failed {self.failed}  "
            f"retries {self.retried}  wall {self.wall_s:.2f}s"
        )
        if self.succeeded:
            line += (
                f"  busy {self.busy_s:.2f}s"
                f"  est. speedup {self.speedup_estimate:.1f}x"
            )
        return line


@dataclass
class ProgressPrinter:
    """Per-task progress lines: ``[done/total] ok map/cropped (0.3s)``."""

    stream: object = field(default_factory=lambda: sys.stderr)

    def __call__(self, event, task_id, telemetry, detail=None):
        suffix = f" ({detail})" if detail else ""
        print(
            f"[{telemetry.done}/{telemetry.total}] {event} {task_id}{suffix}",
            file=self.stream,
            flush=True,
        )
