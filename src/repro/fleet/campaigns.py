"""Prebuilt campaigns over the paper's experiment suite.

The builders turn the fidelity studies (Figures 6/8/10/13), the
jittered-trial protocol, and whole-figure regeneration into
:class:`~repro.fleet.spec.CampaignSpec` instances, and the aggregation
helpers fold a :class:`~repro.fleet.runner.CampaignResult` back into
the ``{config: {object: value}}`` tables the rest of the codebase
speaks.  Aggregates are assembled in campaign task order, so a table
built from a parallel run is bit-identical to the serial one.

Task ids are ``app/config/object[/t<trial>]`` — ``/`` never appears in
config or workload names, so the aggregators can parse ids back.
"""

from __future__ import annotations

from repro.analysis.stats import summarize
from repro.experiments.fidelity_study import (
    MAP_CONFIGS,
    SPEECH_CONFIGS,
    VIDEO_CONFIGS,
    WEB_CONFIGS,
)
from repro.fleet.runner import FleetRunner
from repro.fleet.spec import CampaignSpec, Task
from repro.workloads import MAPS, UTTERANCES
from repro.workloads.images import IMAGES
from repro.workloads.videos import VIDEO_CLIPS

__all__ = [
    "APPS",
    "energy_table_campaign",
    "sweep_campaign",
    "figures_campaign",
    "tables_from_result",
    "energy_table",
    "run_sweep",
]

#: Per-application wiring: library callable, its object parameter name,
#: the figure's config set, the workload objects, and whether the
#: measurement takes a think time.
APPS = {
    "video": {
        "fn": "repro.fleet.library:video_energy",
        "param": "clip",
        "configs": tuple(VIDEO_CONFIGS),
        "objects": tuple(clip.name for clip in VIDEO_CLIPS),
        "think": False,
    },
    "speech": {
        "fn": "repro.fleet.library:speech_energy",
        "param": "utterance",
        "configs": tuple(SPEECH_CONFIGS),
        "objects": tuple(utt.name for utt in UTTERANCES),
        "think": False,
    },
    "map": {
        "fn": "repro.fleet.library:map_energy",
        "param": "city",
        "configs": tuple(MAP_CONFIGS),
        "objects": tuple(city.name for city in MAPS),
        "think": True,
    },
    "web": {
        "fn": "repro.fleet.library:web_energy",
        "param": "image",
        "configs": tuple(WEB_CONFIGS),
        "objects": tuple(image.name for image in IMAGES),
        "think": True,
    },
}


def _app_tasks(app, configs=None, objects=None, think_time_s=None,
               trials=1, spread=0.03):
    if app not in APPS:
        raise KeyError(f"unknown app {app!r}; available: {sorted(APPS)}")
    info = APPS[app]
    configs = tuple(configs) if configs is not None else info["configs"]
    objects = tuple(objects) if objects is not None else info["objects"]
    tasks = []
    for config in configs:
        for obj in objects:
            params = {info["param"]: obj, "config": config}
            if info["think"]:
                params["think_time_s"] = (
                    5.0 if think_time_s is None else float(think_time_s)
                )
            for trial in range(trials):
                task_params = dict(params)
                if trials > 1:
                    task_params["trial"] = trial
                    task_params["spread"] = spread
                    task_id = f"{app}/{config}/{obj}/t{trial}"
                else:
                    task_id = f"{app}/{config}/{obj}"
                tasks.append(Task(id=task_id, fn=info["fn"],
                                  params=task_params))
    return tasks


def energy_table_campaign(app, configs=None, objects=None,
                          think_time_s=None, trials=1, spread=0.03,
                          name=None):
    """One figure's energy table as a campaign (one task per cell/trial)."""
    tasks = _app_tasks(app, configs, objects, think_time_s, trials, spread)
    return CampaignSpec(name=name or f"{app}-energy-table", tasks=tasks)


def sweep_campaign(apps=None, think_time_s=None, trials=1, spread=0.03,
                   name="sweep"):
    """All four fidelity studies (or a subset) as one flat campaign."""
    apps = tuple(apps) if apps is not None else tuple(APPS)
    tasks = []
    for app in apps:
        tasks.extend(
            _app_tasks(app, think_time_s=think_time_s, trials=trials,
                       spread=spread)
        )
    return CampaignSpec(name=name, tasks=tasks)


def figures_campaign(figures=None, name="figures"):
    """Whole-figure regeneration: one task per paper figure."""
    from repro.experiments.figures import FIGURES

    selected = tuple(figures) if figures is not None else tuple(sorted(FIGURES))
    for fig in selected:
        if fig not in FIGURES:
            raise KeyError(
                f"unknown figure {fig!r}; available: {sorted(FIGURES)}"
            )
    tasks = [
        Task(id=fig, fn="repro.fleet.library:run_figure",
             params={"name": fig})
        for fig in selected
    ]
    return CampaignSpec(name=name, tasks=tasks)


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def tables_from_result(result, trials=1):
    """Fold a sweep/table campaign back into ``{app: {config: {obj: v}}}``.

    With ``trials > 1`` each cell is a
    :class:`~repro.analysis.stats.TrialStats` over its trial values.
    Cells with any failed task are omitted — the failures stay recorded
    on ``result.failures``, so partial campaigns degrade loudly, not
    silently.
    """
    values = result.values
    tables = {}
    cells = {}
    for task in result.spec.tasks:
        parts = task.id.split("/")
        if len(parts) < 3:
            continue  # not an app/config/object cell (foreign task)
        app, config, obj = parts[0], parts[1], parts[2]
        cells.setdefault((app, config, obj), []).append(task.id)
    for (app, config, obj), task_ids in cells.items():
        if any(task_id not in values for task_id in task_ids):
            continue
        cell_values = [values[task_id] for task_id in task_ids]
        cell = summarize(cell_values) if trials > 1 else cell_values[0]
        tables.setdefault(app, {}).setdefault(config, {})[obj] = cell
    return tables


def run_sweep(apps=None, jobs=None, trials=1, think_time_s=None,
              spread=0.03, runner=None, cache=None, timeout_s=None,
              retries=2, progress=None, worker_trace=False):
    """Build, run, and aggregate a sweep; returns ``(tables, result)``."""
    spec = sweep_campaign(apps, think_time_s=think_time_s, trials=trials,
                          spread=spread)
    if runner is None:
        runner = FleetRunner(jobs=jobs, timeout_s=timeout_s,
                             retries=retries, cache=cache,
                             progress=progress, worker_trace=worker_trace)
    result = runner.run(spec)
    return tables_from_result(result, trials=trials), result


def energy_table(app, jobs=None, configs=None, objects=None,
                 think_time_s=None, runner=None, cache=None,
                 timeout_s=None, retries=2, progress=None):
    """One figure's ``{config: {object: J}}`` via the fleet.

    Equivalent to the serial ``*_energy_table`` functions in
    :mod:`repro.experiments.fidelity_study` (same measurements, same
    calibration costs) but parallel and cacheable.  Raises
    :class:`~repro.fleet.errors.CampaignError` if any cell failed —
    a figure table with silent holes would be worse than an error.
    """
    spec = energy_table_campaign(app, configs=configs, objects=objects,
                                 think_time_s=think_time_s)
    if runner is None:
        runner = FleetRunner(jobs=jobs, timeout_s=timeout_s,
                             retries=retries, cache=cache,
                             progress=progress)
    result = runner.run(spec).raise_on_failure()
    return tables_from_result(result)[app]
