"""Policy diff matrix: N policy variants vs one baseline, as a fleet.

The paper's Section 5 claim is comparative — adaptation policies differ
in energy and fidelity outcomes *relative to a common baseline*.  One
``repro diff`` compares exactly two traces; a hysteresis/horizon sweep
produces dozens of candidates.  This module turns that comparison into
a campaign:

1. :func:`policy_matrix_campaign` lays one fleet task per policy
   variant (plus a baseline self-row), each task carrying the candidate
   *and* baseline builder params as plain JSON — so tasks stay
   independent, cacheable, and service-submittable.
2. :func:`policy_matrix_row` runs inside a fleet worker: it simulates
   the candidate and the baseline under private tracers, reduces both
   to decision spine + power-span journal, and diffs them with
   :func:`repro.obs.diff.diff_row` and
   :func:`repro.obs.signature.signature_distance`.  Diffing is
   embarrassingly parallel (both helpers are pure), so the whole matrix
   scales with the pool.  A per-process memo keeps each worker from
   re-simulating the baseline for every candidate it is handed.
3. :func:`matrix_from_values` folds the per-task rows into a
   :class:`PolicyMatrix` — deterministic row order (spec order),
   canonical JSON document, rendered table, and threshold checks for
   CI gating.

Because each row is a pure function of ``(candidate, baseline,
scenario)`` params and the fold is keyed on task ids, the matrix
document is byte-identical across serial, parallel, cache-warm, and
service-submitted runs — the same invariant the fleet holds for every
other campaign.
"""

from __future__ import annotations

from repro.fleet.spec import CampaignSpec, Task, canonical_json

__all__ = [
    "MATRIX_KIND",
    "MATRIX_VERSION",
    "MATRIX_TASK_FN",
    "POLICY_KEYS",
    "SCENARIO_KEYS",
    "DEFAULT_GRID",
    "PolicyMatrix",
    "parse_policy_spec",
    "policy_label",
    "policy_matrix_row",
    "policy_matrix_campaign",
    "matrix_from_values",
    "matrix_from_result",
]

MATRIX_KIND = "policy-matrix"
MATRIX_VERSION = 1
MATRIX_TASK_FN = "repro.fleet.diffmatrix:policy_matrix_row"

#: Builder params a policy variant may set (everything here is a
#: keyword of ``repro.snapshot.scenario.build_pulse_scenario``).
POLICY_KEYS = frozenset({
    "lookahead", "horizon", "beam_width", "beam_depth",
    "variable_fraction", "constant_fraction",
    "decision_period", "halflife_fraction", "upgrade_min_interval",
})

#: Builder params that size the shared scenario all variants run on.
SCENARIO_KEYS = frozenset({
    "goal_seconds", "initial_energy", "sample_period",
}) | POLICY_KEYS

_INT_KEYS = frozenset({"beam_width", "beam_depth"})
_BOOL_KEYS = frozenset({"lookahead"})

#: The CLI's default candidate set: hysteresis on/off x lookahead
#: off/on — the smallest grid that exercises a zero row, a pure
#: hysteresis delta, and the measurement-vs-extrapolation axis.
DEFAULT_GRID = (
    "hysteresis=on,lookahead=off",
    "hysteresis=off,lookahead=off",
    "hysteresis=on,lookahead=on",
    "hysteresis=off,lookahead=on",
)

#: Reserved row label for the baseline-vs-itself row.
BASELINE_LABEL = "baseline"


# ----------------------------------------------------------------------
# policy specs and labels
# ----------------------------------------------------------------------
def parse_policy_spec(text, allowed=None):
    """Parse ``"key=value,key=value"`` into builder params.

    ``"default"`` (or an empty string) means the unmodified policy.
    The sugar key ``hysteresis`` expands to the trigger's two margin
    fractions: ``hysteresis=off`` zeroes both, ``hysteresis=on`` keeps
    the defaults.  Booleans accept on/off/true/false; everything else
    parses as int or float.  Unknown keys raise ``ValueError``.
    """
    allowed = POLICY_KEYS if allowed is None else allowed
    params = {}
    text = (text or "").strip()
    if text in ("", "default", BASELINE_LABEL):
        return params
    for item in text.split(","):
        key, sep, value = item.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or not key or not value:
            raise ValueError(f"malformed policy spec item {item!r} "
                             f"(expected key=value)")
        if key == "hysteresis":
            if _parse_bool(value):
                params.pop("variable_fraction", None)
                params.pop("constant_fraction", None)
            else:
                params["variable_fraction"] = 0.0
                params["constant_fraction"] = 0.0
            continue
        if key not in allowed:
            raise ValueError(
                f"unknown policy key {key!r} (have: "
                f"{', '.join(sorted(allowed))}, plus 'hysteresis')"
            )
        if key in _BOOL_KEYS:
            params[key] = _parse_bool(value)
        elif key in _INT_KEYS:
            params[key] = int(value)
        else:
            params[key] = float(value)
    return params


def _parse_bool(value):
    lowered = value.lower()
    if lowered in ("on", "true", "yes", "1"):
        return True
    if lowered in ("off", "false", "no", "0"):
        return False
    raise ValueError(f"not a boolean: {value!r} (use on/off)")


def policy_label(params):
    """Canonical display label for a policy param dict."""
    if not params:
        return "default"
    parts = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, bool):
            value = "on" if value else "off"
        elif isinstance(value, float):
            value = f"{value:g}"
        parts.append(f"{key}={value}")
    return ",".join(parts)


# ----------------------------------------------------------------------
# the worker side: one row per candidate
# ----------------------------------------------------------------------
#: Per-process memo of traced runs, keyed on canonical builder params.
#: Each worker simulates the shared baseline (and any repeated policy)
#: once; results are pure functions of the params, so memoization can
#: never change a row — only skip a re-simulation.
_RECORD_MEMO = {}
_RECORD_MEMO_MAX = 16


def _traced_record(params):
    """Run one traced pulse scenario; return its reduced artifacts."""
    key = canonical_json(params)
    record = _RECORD_MEMO.get(key)
    if record is not None:
        return record

    from repro.obs.diff import decision_spine
    from repro.obs.export import power_spans
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.signature import compute_signature
    from repro.obs.tracer import Tracer
    from repro.snapshot.scenario import build_pulse_scenario

    # A private tracer (not process-installed) so matrix tasks compose
    # with worker-trace rings and nested tooling; the machine registers
    # its flush hook on it at construction.
    tracer = Tracer(categories={"core", "power"})
    scenario = build_pulse_scenario(
        tracer=tracer, metrics=MetricsRegistry(), **params
    )
    scenario.start()
    scenario.run()
    tracer.flush()
    events = [event.to_dict() for event in tracer.events]
    record = {
        "spine": decision_spine(events),
        "spans": power_spans(events),
        "signature": compute_signature(events,
                                       metrics=MetricsRegistry()),
        "summary": scenario.summary(),
    }
    if len(_RECORD_MEMO) >= _RECORD_MEMO_MAX:
        _RECORD_MEMO.pop(next(iter(_RECORD_MEMO)))
    _RECORD_MEMO[key] = record
    return record


def policy_matrix_row(label, candidate=None, baseline=None, scenario=None,
                      gap=0):
    """Fleet task: diff one candidate policy against the baseline.

    Runs both policies on the shared scenario (baseline runs are
    memoized per process) and reduces the pair to one scorecard row.
    All inputs are plain JSON, so the task is cacheable and
    service-submittable; the row is a pure function of its params.
    """
    from repro.obs.diff import diff_row
    from repro.obs.signature import signature_distance

    scenario = dict(scenario or {})
    candidate_params = dict(scenario, **dict(candidate or {}))
    baseline_params = dict(scenario, **dict(baseline or {}))
    cand = _traced_record(candidate_params)
    base = _traced_record(baseline_params)

    row = diff_row(base["spine"], base["spans"],
                   cand["spine"], cand["spans"], gap=gap)
    shape = signature_distance(base["signature"], cand["signature"])
    summary = cand["summary"]
    row.update({
        "policy": label,
        "params": dict(candidate or {}),
        "goal_met": summary["goal_met"],
        "baseline_goal_met": base["summary"]["goal_met"],
        "survived_seconds": summary["survived_seconds"],
        "battery_residual_j": summary["battery_residual_j"],
        "shape_distance": shape["shape_distance"],
        "behaviour_match": shape["behaviour_match"],
    })
    return row


# ----------------------------------------------------------------------
# campaign construction and the matrix fold
# ----------------------------------------------------------------------
def _normalize_candidates(candidates):
    """Accept dicts, spec strings, or ``(label, params)`` pairs."""
    normalized = []
    for candidate in candidates:
        if isinstance(candidate, str):
            params = parse_policy_spec(candidate)
            label = candidate.strip() or "default"
            normalized.append((label, params))
        elif isinstance(candidate, dict):
            normalized.append((policy_label(candidate), dict(candidate)))
        else:
            label, params = candidate
            normalized.append((str(label), dict(params)))
    return normalized


def policy_matrix_campaign(candidates, baseline=None, scenario=None,
                           name="policy-matrix", gap=0):
    """Build the matrix campaign: a baseline self-row plus one row per
    candidate, in the given order.

    ``candidates`` accepts policy spec strings, param dicts, or
    ``(label, params)`` pairs (explicit labels let two candidates share
    params).  ``baseline`` is the common comparison policy (params dict
    or spec string); ``scenario`` sizes the shared run (e.g.
    ``goal_seconds``/``initial_energy``).  Duplicate labels raise, as
    any duplicate task id does.
    """
    if isinstance(baseline, str):
        baseline = parse_policy_spec(baseline)
    baseline = dict(baseline or {})
    scenario = dict(scenario or {})
    unknown = set(scenario) - SCENARIO_KEYS
    if unknown:
        raise ValueError(f"unknown scenario key(s): "
                         f"{', '.join(sorted(unknown))}")

    def make_task(label, params):
        task_params = {
            "label": label,
            "candidate": params,
            "baseline": baseline,
            "scenario": scenario,
        }
        # Recorded only when set: default payloads (and their cache
        # keys) stay stable if a gap axis is never used.
        if gap:
            task_params["gap"] = gap
        return Task(id=f"row/{label}", fn=MATRIX_TASK_FN,
                    params=task_params)

    tasks = [make_task(BASELINE_LABEL, dict(baseline))]
    for label, params in _normalize_candidates(candidates):
        tasks.append(make_task(label, params))
    return CampaignSpec(name=name, tasks=tuple(tasks))


class PolicyMatrix:
    """The folded scorecard: one row per policy, baseline first.

    ``document()`` is the byte-comparable artifact (canonical JSON +
    trailing newline, the :func:`repro.service.jobs.results_document`
    convention); ``render()`` is the human table; ``violations()`` is
    the CI gate.
    """

    def __init__(self, campaign, baseline, scenario, rows):
        self.campaign = campaign
        self.baseline = dict(baseline)
        self.scenario = dict(scenario)
        self.rows = list(rows)

    def to_dict(self):
        return {
            "kind": MATRIX_KIND,
            "version": MATRIX_VERSION,
            "campaign": self.campaign,
            "baseline": dict(self.baseline),
            "scenario": dict(self.scenario),
            "rows": [dict(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, record):
        if record.get("kind") != MATRIX_KIND:
            raise ValueError("not a policy-matrix document")
        if record.get("version") != MATRIX_VERSION:
            raise ValueError(
                f"policy-matrix version {record.get('version')} "
                f"!= supported {MATRIX_VERSION}"
            )
        return cls(record["campaign"], record["baseline"],
                   record.get("scenario", {}), record["rows"])

    def document(self):
        """Canonical JSON text + trailing newline — the blessed bytes."""
        return canonical_json(self.to_dict()) + "\n"

    @property
    def candidate_rows(self):
        """Rows excluding the baseline self-row."""
        return [row for row in self.rows
                if row["policy"] != BASELINE_LABEL]

    def violations(self, max_windows=None, max_abs_delta_j=None,
                   max_shape_distance=None):
        """CI-gate check over the candidate rows.

        With no thresholds, any divergence at all is a violation (the
        ``repro diff --fail-on-divergence`` semantics).  Each threshold
        relaxes its own axis: a row only violates when it exceeds a
        given bound.  Returns a list of human-readable strings.
        """
        thresholds = (max_windows is not None
                      or max_abs_delta_j is not None
                      or max_shape_distance is not None)
        problems = []
        for row in self.candidate_rows:
            label = row["policy"]
            if not thresholds:
                if not row["identical"]:
                    problems.append(
                        f"{label}: diverges from baseline "
                        f"({row['windows']} window(s), "
                        f"{row['energy_delta_j']:+.1f} J)"
                    )
                continue
            if max_windows is not None and row["windows"] > max_windows:
                problems.append(
                    f"{label}: {row['windows']} divergence window(s) "
                    f"> {max_windows}"
                )
            if (max_abs_delta_j is not None
                    and abs(row["energy_delta_j"]) > max_abs_delta_j):
                problems.append(
                    f"{label}: |energy delta| "
                    f"{abs(row['energy_delta_j']):.1f} J "
                    f"> {max_abs_delta_j:g} J"
                )
            if (max_shape_distance is not None
                    and row["shape_distance"] > max_shape_distance):
                problems.append(
                    f"{label}: shape distance "
                    f"{row['shape_distance']:.4f} "
                    f"> {max_shape_distance:g}"
                )
        return problems

    def render(self):
        """Human table: one line per policy row."""
        from repro.analysis import render_table

        rows = []
        for row in self.rows:
            first = row["first_divergence_did"]
            rows.append([
                row["policy"],
                f"{row['energy_total_j']:.1f}",
                f"{row['energy_delta_j']:+.1f}",
                f"{row['energy_delta_share'] * 100:+.2f}%",
                str(row["windows"]),
                str(first) if first is not None else "-",
                "met" if row["goal_met"] else "MISSED",
                f"{row['shape_distance']:.4f}",
            ])
        title = (f"policy diff matrix — {self.campaign} "
                 f"(baseline: {policy_label(self.baseline)})")
        return render_table(
            ["policy", "energy (J)", "ΔJ", "Δ%", "windows",
             "first div", "goal", "shape dist"],
            rows, title=title,
        )


def matrix_from_values(spec, values):
    """Fold per-task rows into a :class:`PolicyMatrix`.

    ``values`` is the ``{task_id: row}`` mapping both the one-shot
    runner (``CampaignResult.values``) and the service result payload
    expose, so both drivers fold — and serialize — identically.  Rows
    keep spec order; tasks without a value (permanent failures) are
    skipped, mirroring how partial sweeps render partial tables.
    """
    baseline = {}
    scenario = {}
    if spec.tasks:
        baseline = dict(spec.tasks[0].params.get("baseline", {}))
        scenario = dict(spec.tasks[0].params.get("scenario", {}))
    rows = []
    for task in spec.tasks:
        value = values.get(task.id)
        if isinstance(value, dict) and "policy" in value:
            rows.append(value)
    return PolicyMatrix(spec.name, baseline, scenario, rows)


def matrix_from_result(result):
    """Fold a completed :class:`~repro.fleet.runner.CampaignResult`."""
    return matrix_from_values(result.spec, result.values)
