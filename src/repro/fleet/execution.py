"""CampaignExecution: the placement-independent half of a campaign run.

Everything about a campaign's progress that does not depend on *where*
tasks execute lives here: cache admission, retry budgets with backoff
deadlines, outcome recording (cache writes, telemetry counters, metrics,
tracing, progress callbacks), and assembly of the ordered
:class:`~repro.fleet.runner.CampaignResult`.  Drivers feed it outcomes
and ask it what to run next:

* :class:`~repro.fleet.runner.FleetRunner` drives one execution per
  ``run()`` call — serially in-process or across a one-shot process
  pool — and tears it down when the campaign completes;
* :class:`~repro.service.core.CampaignService` keeps one execution per
  submitted *job* and multiplexes many of them onto a persistent warm
  worker pool, reusing exactly the same retry/cache/telemetry semantics.

Because the execution never sees worker identities, a campaign's results
depend only on its spec: the same spec driven by either driver — or
re-driven after a worker died mid-task — produces bit-identical results.
"""

from __future__ import annotations

import heapq
import itertools
import time

from dataclasses import dataclass

from repro.fleet.cache import ResultCache
from repro.fleet.telemetry import FleetTelemetry
from repro.obs.metrics import current_metrics
from repro.obs.tracer import current_tracer

__all__ = [
    "CampaignExecution",
    "TaskResult",
    "CampaignResult",
    "describe_error",
    "OK",
    "CACHED",
    "FAILED",
]

#: Terminal task states.
OK, CACHED, FAILED = "ok", "cached", "failed"


def describe_error(exc):
    """One-line ``TypeName: message`` rendering of an exception."""
    return f"{type(exc).__name__}: {exc}"


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one task: a value, a cache hit, or a recorded failure."""

    task_id: str
    status: str
    value: object = None
    error: str = None
    attempts: int = 0
    wall_s: float = 0.0

    @property
    def ok(self):
        return self.status in (OK, CACHED)


@dataclass(frozen=True)
class CampaignResult:
    """Every task's outcome, in campaign order, plus run telemetry."""

    spec: object
    results: tuple
    telemetry: FleetTelemetry

    @property
    def values(self):
        """``{task_id: value}`` for every task that produced a value."""
        return {r.task_id: r.value for r in self.results if r.ok}

    @property
    def failures(self):
        return tuple(r for r in self.results if r.status == FAILED)

    @property
    def ok(self):
        return not self.failures

    def value(self, task_id):
        """The value of one task; raises if it failed or is unknown."""
        for result in self.results:
            if result.task_id == task_id:
                if not result.ok:
                    raise KeyError(
                        f"task {task_id!r} failed: {result.error}"
                    )
                return result.value
        raise KeyError(f"no task {task_id!r} in campaign {self.spec.name!r}")

    def raise_on_failure(self):
        """Raise :class:`~repro.fleet.errors.CampaignError` if any task failed."""
        if self.failures:
            from repro.fleet.errors import CampaignError

            summary = "; ".join(
                f"{r.task_id}: {r.error}" for r in self.failures
            )
            raise CampaignError(
                f"{len(self.failures)} of {len(self.results)} tasks failed "
                f"in campaign {self.spec.name!r}: {summary}",
                failures=self.failures,
            )
        return self


class CampaignExecution:
    """Scheduling/retry/cache state machine for one campaign.

    Parameters mirror :class:`~repro.fleet.runner.FleetRunner`'s; the
    runner simply forwards its own.  ``clock`` is injectable for tests.

    The driver contract:

    * call :meth:`admit` once (or :meth:`try_cache` per task, lazily)
      to resolve cache hits;
    * call :meth:`note_attempt` when an attempt is actually submitted
      somewhere, then :meth:`record_success` or :meth:`record_error`
      with its outcome;
    * poll :meth:`pop_due` / :meth:`next_due` to learn when backoff
      timers expire and which ``(task, attempt)`` pairs to resubmit;
    * when :attr:`done` turns true, call :meth:`finish` exactly once.
    """

    def __init__(self, spec, cache=None, retries=2, backoff_s=0.05,
                 timeout_s=None, progress=None, tracer=None, metrics=None,
                 worker_trace=False, clock=time.monotonic):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.spec = spec
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.retries = retries
        self.backoff_s = backoff_s
        self.timeout_s = timeout_s
        self.progress = progress
        self.tracer = tracer if tracer is not None else current_tracer()
        self._trace = self.tracer.gate("fleet")
        self.worker_trace = bool(worker_trace) and self._trace is not None
        self.metrics = metrics if metrics is not None else current_metrics()
        self._m_events = {
            OK: self.metrics.counter("fleet.tasks_ok"),
            CACHED: self.metrics.counter("fleet.tasks_cached"),
            FAILED: self.metrics.counter("fleet.tasks_failed"),
            "retry": self.metrics.counter("fleet.retries"),
        }
        self._m_cache_hit = self.metrics.counter("fleet.cache_hit")
        self._m_task_wall = self.metrics.histogram("fleet.task_wall_s")
        self._m_queue_depth = self.metrics.gauge("fleet.queue_depth")

        self.telemetry = FleetTelemetry(total=len(spec.tasks))
        self.results = {}
        self._clock = clock
        self._started = clock()
        self._campaign_t0 = (
            self.tracer.wall() if self._trace is not None else 0.0
        )
        self._retry_heap = []  # (due_time, tiebreak, task, next_attempt)
        self._tiebreak = itertools.count()
        self._finished = False

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self):
        """Resolve cache hits for every task; returns the pending rest."""
        pending = []
        for task in self.spec.tasks:
            if not self.try_cache(task):
                pending.append(task)
        return pending

    def try_cache(self, task):
        """Serve ``task`` from the cache if possible; True on a hit."""
        record = self.cache.get(task.key()) if self.cache else None
        if record is None:
            return False
        self.record_cached(task, record)
        return True

    def record_cached(self, task, record):
        """Record a cache-served result (a hit here or a shared one)."""
        self.results[task.id] = TaskResult(
            task.id, CACHED, value=record["value"],
            wall_s=record.get("wall_s", 0.0),
        )
        self.telemetry.cached += 1
        self._m_cache_hit.inc()
        self._emit(CACHED, task.id)

    # ------------------------------------------------------------------
    # outcome recording
    # ------------------------------------------------------------------
    def note_attempt(self):
        """Count one attempt actually dispatched to a worker."""
        self.telemetry.attempts += 1

    def task_budget(self, task):
        """Effective per-task timeout: task override, else the default."""
        return task.timeout_s if task.timeout_s is not None else self.timeout_s

    def record_success(self, task, outcome, attempt):
        self.results[task.id] = TaskResult(
            task.id, OK, value=outcome["value"],
            attempts=attempt, wall_s=outcome["wall_s"],
        )
        self.telemetry.succeeded += 1
        self.telemetry.busy_s += outcome["wall_s"]
        value = outcome["value"]
        if isinstance(value, dict) and value.get("snapshot_restored"):
            self.telemetry.restored += 1
        self._merge_worker_trace(task, outcome)
        self._m_task_wall.observe(outcome["wall_s"])
        if self._trace is not None:
            end = self.tracer.wall()
            self._trace.complete(
                max(0.0, end - outcome["wall_s"]), "fleet", "task",
                dur=outcome["wall_s"], track="tasks",
                args={"task": task.id, "attempts": attempt},
            )
        if self.cache is not None and task.cacheable:
            self.cache.put(task.key(), {
                "fn": task.fn,
                "params": task.params,
                "value": outcome["value"],
                "wall_s": outcome["wall_s"],
            })
        self._emit(OK, task.id, f"{outcome['wall_s']:.3f}s")

    def record_error(self, task, error, attempt):
        """Record a failed attempt; returns the retry due time, or
        ``None`` when the task's budget is exhausted (permanent failure).
        """
        if attempt <= self.retries:
            self.telemetry.retried += 1
            self._emit("retry", task.id, error)
            due = self._clock() + self.backoff_s * 2 ** (attempt - 1)
            heapq.heappush(
                self._retry_heap, (due, next(self._tiebreak), task,
                                   attempt + 1)
            )
            return due
        self.results[task.id] = TaskResult(
            task.id, FAILED, error=error, attempts=attempt,
        )
        self.telemetry.failed += 1
        self._emit(FAILED, task.id, error)
        return None

    # ------------------------------------------------------------------
    # retry timers
    # ------------------------------------------------------------------
    def pop_due(self, now=None):
        """Every ``(task, attempt)`` whose backoff expired by ``now``."""
        if now is None:
            now = self._clock()
        due = []
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, _, task, attempt = heapq.heappop(self._retry_heap)
            due.append((task, attempt))
        return due

    def next_due(self):
        """Earliest pending retry deadline, or ``None``."""
        return self._retry_heap[0][0] if self._retry_heap else None

    @property
    def awaiting_retry(self):
        return len(self._retry_heap)

    @property
    def done(self):
        """True once every task reached a terminal state."""
        return self.telemetry.done >= self.telemetry.total

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def finish(self):
        """Stamp wall time, emit the campaign span, assemble the result."""
        if self._finished:
            raise RuntimeError(
                f"campaign {self.spec.name!r} already finished"
            )
        self._finished = True
        self.telemetry.wall_s = self._clock() - self._started
        if self._trace is not None:
            self._trace.complete(
                self._campaign_t0, "fleet", "campaign",
                dur=self.telemetry.wall_s, track="campaign",
                args={"name": self.spec.name, **self.telemetry.snapshot()},
            )
        ordered = tuple(self.results[task.id] for task in self.spec.tasks)
        return CampaignResult(spec=self.spec, results=ordered,
                              telemetry=self.telemetry)

    # ------------------------------------------------------------------
    # emission plumbing
    # ------------------------------------------------------------------
    def _emit(self, event, task_id, detail=None):
        counter = self._m_events.get(event)
        if counter is not None:
            counter.inc()
        self._m_queue_depth.set(self.telemetry.queued)
        if self._trace is not None and event != OK:
            # OK tasks get a complete-span from record_success instead.
            args = {"task": task_id, "done": self.telemetry.done}
            if detail:
                args["detail"] = detail
            self._trace.instant(
                self.tracer.wall(), "fleet", f"task.{event}",
                track="tasks", args=args,
            )
        if self.progress is not None:
            self.progress(event, task_id, self.telemetry, detail)

    def _merge_worker_trace(self, task, outcome):
        """Replay one worker's ring buffer onto a per-task fleet track."""
        records = outcome.get("trace")
        if self._trace is None or not records:
            return
        worker = outcome.get("worker_pid")
        track = f"w{worker}/{task.id}" if worker is not None else f"w/{task.id}"
        for record in records:
            self._trace.replay(
                record, cat="fleet",
                name=f"{record.get('cat', '?')}/{record.get('name', '?')}",
                track=track,
            )
        dropped = outcome.get("trace_dropped", 0)
        if dropped:
            self._trace.instant(
                self.tracer.wall(), "fleet", "task.trace_dropped",
                track=track, args={"task": task.id, "dropped": dropped},
            )
