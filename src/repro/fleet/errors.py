"""Exceptions raised by the fleet campaign engine."""

from __future__ import annotations

__all__ = ["FleetError", "TaskTimeout", "CampaignError"]


class FleetError(Exception):
    """Base class for campaign-engine errors."""


class TaskTimeout(FleetError):
    """A task exceeded its wall-clock budget inside a worker."""


class CampaignError(FleetError):
    """A campaign whose caller required every task to succeed had failures.

    Carries the failed :class:`~repro.fleet.runner.TaskResult` records so
    callers can report exactly which tasks broke and why.
    """

    def __init__(self, message, failures=()):
        super().__init__(message)
        self.failures = tuple(failures)
