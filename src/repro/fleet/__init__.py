"""repro.fleet — a parallel, fault-tolerant simulation campaign engine.

Treats one independent simulation as a schedulable :class:`Task`, a set
of them as a :class:`CampaignSpec`, and runs campaigns across a process
pool with per-task timeouts, bounded retries, an on-disk result cache,
and live telemetry.  Serial (``jobs=1``) and parallel runs produce
bit-identical aggregates; failures become recorded partial results,
never silent drops.  See docs/architecture.md ("Fleet").
"""

from repro.fleet.cache import ResultCache
from repro.fleet.campaigns import (
    APPS,
    energy_table,
    energy_table_campaign,
    figures_campaign,
    run_sweep,
    sweep_campaign,
    tables_from_result,
)
from repro.fleet.diffmatrix import (
    DEFAULT_GRID,
    PolicyMatrix,
    matrix_from_result,
    matrix_from_values,
    parse_policy_spec,
    policy_label,
    policy_matrix_campaign,
    policy_matrix_row,
)
from repro.fleet.errors import CampaignError, FleetError, TaskTimeout
from repro.fleet.execution import CampaignExecution
from repro.fleet.runner import CampaignResult, FleetRunner, TaskResult
from repro.fleet.spec import (
    CampaignSpec,
    Task,
    derive_seed,
    resolve_callable,
    task_key,
)
from repro.fleet.telemetry import FleetTelemetry, ProgressPrinter
from repro.fleet.worker import execute_task, run_task

__all__ = [
    "Task",
    "CampaignSpec",
    "derive_seed",
    "task_key",
    "resolve_callable",
    "FleetRunner",
    "CampaignExecution",
    "TaskResult",
    "CampaignResult",
    "ResultCache",
    "FleetTelemetry",
    "ProgressPrinter",
    "FleetError",
    "TaskTimeout",
    "CampaignError",
    "execute_task",
    "run_task",
    "APPS",
    "energy_table",
    "energy_table_campaign",
    "figures_campaign",
    "sweep_campaign",
    "run_sweep",
    "tables_from_result",
    "DEFAULT_GRID",
    "PolicyMatrix",
    "parse_policy_spec",
    "policy_label",
    "policy_matrix_campaign",
    "policy_matrix_row",
    "matrix_from_values",
    "matrix_from_result",
]
