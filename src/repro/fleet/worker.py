"""Worker-side task execution: the function a pool process actually runs.

The timeout is enforced *inside* the worker with ``SIGALRM`` rather
than by the coordinator abandoning a future: ``ProcessPoolExecutor``
cannot cancel a running task, so a coordinator-side timeout would leave
a zombie worker grinding away at a doomed simulation.  An in-worker
alarm interrupts the task at the deadline, frees the worker for the
next task, and surfaces as an ordinary :class:`TaskTimeout` failure the
runner can retry or record.  On platforms without ``SIGALRM`` the
timeout degrades to unenforced (documented, not silent: the record
notes enforcement was unavailable only via this docstring — results
are still correct, just unbounded).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager

from repro.fleet.errors import TaskTimeout
from repro.fleet.spec import resolve_callable

__all__ = ["execute_task", "run_task"]

#: Ring-buffer size for in-worker tracing: bounds the per-task result
#: payload shipped back through the pool's result channel.
WORKER_TRACE_CAPACITY = 4096


def _alarm_supported():
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def _deadline(timeout_s):
    """Raise :class:`TaskTimeout` if the block runs past ``timeout_s``."""
    if not timeout_s or not _alarm_supported():
        yield
        return

    def _expired(signum, frame):
        raise TaskTimeout(f"task exceeded its {timeout_s:g}s budget")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_task(fn, params, payload=(), timeout_s=None,
                 collect_trace=False):
    """Run one task to completion; returns ``{"value", "wall_s"}``.

    With ``collect_trace`` a ring-buffered tracer is installed for the
    duration of the task and its events ride back in the outcome as
    ``trace`` (``to_dict``-shaped records, plus ``trace_dropped`` and
    ``worker_pid``) — the coordinator merges them into its own stream
    on a per-task track (see ``FleetRunner``).

    Exceptions (including :class:`TaskTimeout`) propagate to the caller
    — in a pool that means through the future, back to the runner.
    """
    start = time.perf_counter()
    if not collect_trace:
        with _deadline(timeout_s):
            value = resolve_callable(fn)(*payload, **params)
        return {"value": value, "wall_s": time.perf_counter() - start}

    from repro.obs.tracer import Tracer, installed

    tracer = Tracer(capacity=WORKER_TRACE_CAPACITY)
    with installed(tracer):
        with _deadline(timeout_s):
            value = resolve_callable(fn)(*payload, **params)
    tracer.flush()
    return {
        "value": value,
        "wall_s": time.perf_counter() - start,
        "trace": [event.to_dict() for event in tracer.events],
        "trace_dropped": tracer.dropped,
        "worker_pid": os.getpid(),
    }


def run_task(task, timeout_s=None, collect_trace=False):
    """:func:`execute_task` for a :class:`~repro.fleet.spec.Task`.

    A per-task ``timeout_s`` overrides the campaign-level default.
    """
    budget = task.timeout_s if task.timeout_s is not None else timeout_s
    return execute_task(task.fn, task.params, task.payload, budget,
                        collect_trace=collect_trace)
