"""Network substrate: WaveLAN link, RPC, and remote-server models."""

from repro.net.bandwidth import BandwidthEstimator
from repro.net.link import (
    DisconnectedError,
    INTERRUPT_PROCESS,
    Link,
    NetworkError,
)
from repro.net.rpc import RpcChannel, RpcTimeout
from repro.net.server import Server

__all__ = [
    "Link",
    "NetworkError",
    "DisconnectedError",
    "INTERRUPT_PROCESS",
    "RpcChannel",
    "RpcTimeout",
    "Server",
    "BandwidthEstimator",
]
