"""Remote procedure calls over the wireless link.

The paper modified Odyssey's network package to keep the WaveLAN in
standby *except during remote procedure calls or bulk transfers*.  An
RPC therefore wakes the NIC, transmits the request, keeps the NIC
receive-ready while the server computes (the reply may arrive at any
moment), receives the reply, and lets the NIC fall back to its resting
state (standby when power management is on, idle otherwise).
"""

from __future__ import annotations

from repro.hardware.wavelan import WaveLan
from repro.net.link import NetworkError

__all__ = ["RpcChannel", "RpcTimeout"]


class RpcTimeout(NetworkError):
    """An RPC exceeded its deadline (including all retries)."""


class RpcChannel:
    """Client-side RPC endpoint bound to a link and a server.

    Parameters
    ----------
    link / server:
        Transport and endpoint.
    timeout:
        Optional per-attempt deadline in seconds.  A slow server (or an
        injected fault) that blows the deadline triggers a retry; the
        client pays the full energy cost of the failed attempt — it was
        receive-ready the whole time.
    retries:
        Additional attempts after the first before :class:`RpcTimeout`.
    """

    def __init__(self, link, server, timeout=None, retries=0):
        if timeout is not None and timeout <= 0:
            raise NetworkError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise NetworkError(f"retries must be >= 0, got {retries}")
        self.link = link
        self.server = server
        self.timeout = timeout
        self.retries = retries
        self.calls = 0
        self.timeouts = 0

    def call(self, request_bytes, reply_bytes, work_units=0.0):
        """Generator: perform one RPC (with retries when configured).

        Returns the total elapsed seconds for the call.
        """
        sim = self.link.sim
        start = sim.now
        self.calls += 1
        attempts = 1 + self.retries
        for attempt in range(attempts):
            timed_out = yield from self._attempt(
                request_bytes, reply_bytes, work_units
            )
            if not timed_out:
                return sim.now - start
            self.timeouts += 1
        raise RpcTimeout(
            f"{self.server.name}: no reply after {attempts} attempt(s)"
        )

    def _attempt(self, request_bytes, reply_bytes, work_units):
        """One request/reply exchange; returns True when it timed out."""
        sim = self.link.sim
        nic = self.link.nic
        yield from self.link.xmit(request_bytes)
        if work_units > 0.0:
            wait = self.server.service_time(work_units)
            if self.timeout is not None and wait > self.timeout:
                # The client gives up at the deadline, receive-ready
                # the whole time; the server's work is wasted.
                if nic is not None:
                    nic.begin_transfer(WaveLan.RECV)
                try:
                    yield sim.timeout(self.timeout)
                finally:
                    if nic is not None:
                        nic.end_transfer()
                return True
            # Receive-ready while awaiting the server's reply.
            if nic is not None:
                nic.begin_transfer(WaveLan.RECV)
            try:
                yield from self.server.serve(sim, work_units)
            finally:
                if nic is not None:
                    nic.end_transfer()
        yield from self.link.recv(reply_bytes)
        return False
