"""The wireless link model.

The testbed used a 2 Mb/s WaveLAN operating at 900 MHz.  A transfer of
``nbytes`` occupies the link for ``nbytes * 8 / bandwidth`` seconds plus
a fixed latency; transfers serialize FIFO (the medium is shared).

While a transfer is in flight the client NIC sits in its recv/xmit
state and a fraction of wall time executes the network interrupt
handler — the paper's profiles attribute those samples to
``Interrupts-WaveLAN``, and here an attribution overlay does the same.
"""

from __future__ import annotations

from repro.sim.resources import Resource

__all__ = ["Link", "NetworkError", "DisconnectedError", "INTERRUPT_PROCESS"]

INTERRUPT_PROCESS = "Interrupts-WaveLAN"


class NetworkError(Exception):
    """Invalid network operation."""


class DisconnectedError(NetworkError):
    """The wireless link is down (the client is disconnected)."""


class Link:
    """A shared half-duplex wireless link attached to a client machine.

    Parameters
    ----------
    machine:
        Client machine whose ``wavelan`` component this link drives.
    bandwidth_bps:
        Link bandwidth in bits/second (paper: 2 Mb/s).
    latency:
        Per-transfer fixed latency in seconds.
    interrupt_fraction:
        Fraction of wall time spent in the NIC interrupt handler while
        a transfer is in flight (attributed to ``Interrupts-WaveLAN``).
    """

    def __init__(self, machine, bandwidth_bps=2e6, latency=0.005,
                 interrupt_fraction=0.15):
        if bandwidth_bps <= 0:
            raise NetworkError(f"bandwidth must be positive, got {bandwidth_bps}")
        if latency < 0:
            raise NetworkError(f"latency must be >= 0, got {latency}")
        if not 0.0 <= interrupt_fraction <= 1.0:
            raise NetworkError(
                f"interrupt fraction {interrupt_fraction} outside [0, 1]"
            )
        self.machine = machine
        self.sim = machine.sim
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.interrupt_fraction = interrupt_fraction
        self._resource = Resource(self.sim, capacity=1, name="link")
        self.bytes_transferred = 0
        self.transfer_count = 0
        self._observers = []
        self.up = True

    # ------------------------------------------------------------------
    # observability and variability
    # ------------------------------------------------------------------
    def observe(self, callback):
        """Register ``callback(nbytes, seconds)`` per completed transfer.

        Bandwidth estimators (see :mod:`repro.net.bandwidth`) subscribe
        here, the way Odyssey's viceroy passively observed traffic.
        """
        self._observers.append(callback)

    def set_bandwidth(self, bandwidth_bps):
        """Change the link's bandwidth (a variable-quality network).

        In-flight transfers finish at the old rate; new transfers see
        the new one.
        """
        if bandwidth_bps <= 0:
            raise NetworkError(f"bandwidth must be positive, got {bandwidth_bps}")
        self.bandwidth_bps = bandwidth_bps

    def set_up(self, up):
        """Connect or disconnect the link (mobile clients disconnect)."""
        self.up = bool(up)

    def transfer_time(self, nbytes):
        """Seconds the link is busy moving ``nbytes``."""
        return self.latency + nbytes * 8.0 / self.bandwidth_bps

    @property
    def nic(self):
        return self.machine.components.get("wavelan")

    def transfer(self, nbytes, direction):
        """Generator: move ``nbytes`` over the link.

        ``direction`` is ``"recv"`` or ``"xmit"`` from the client's
        perspective.  The client NIC wakes for the transfer (leaving
        standby if power management rests it there) and returns to its
        resting state afterwards.
        """
        if nbytes < 0:
            raise NetworkError(f"cannot transfer negative bytes {nbytes}")
        if direction not in ("recv", "xmit"):
            raise NetworkError(f"invalid direction {direction!r}")
        if not self.up:
            raise DisconnectedError("link is down")
        duration = self.transfer_time(nbytes)
        start = self.sim.now
        nic = self.nic
        overlay = None

        def on_grant():
            nonlocal overlay
            if nic is not None:
                nic.begin_transfer(direction)
            if self.interrupt_fraction > 0.0:
                overlay = self.machine.add_overlay(
                    self.interrupt_fraction, INTERRUPT_PROCESS, "_nic_interrupt"
                )

        def on_release():
            if overlay is not None:
                self.machine.remove_overlay(overlay)
            if nic is not None:
                nic.end_transfer()
            self.bytes_transferred += nbytes
            self.transfer_count += 1
            elapsed = self.sim.now - start
            for observer in self._observers:
                observer(nbytes, elapsed)

        yield from self._resource.use(
            duration, owner=direction, on_grant=on_grant, on_release=on_release
        )

    def recv(self, nbytes):
        """Generator: receive ``nbytes`` from the network."""
        yield from self.transfer(nbytes, "recv")

    def xmit(self, nbytes):
        """Generator: transmit ``nbytes`` to the network."""
        yield from self.transfer(nbytes, "xmit")
