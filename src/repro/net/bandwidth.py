"""Passive bandwidth estimation.

Odyssey's viceroy monitored network bandwidth by passively observing
application traffic (Noble et al., SOSP 1997 — the paper's reference
[17]).  The estimator subscribes to completed link transfers and keeps
an exponentially weighted moving average of observed throughput; the
expectation machinery in :mod:`repro.core.expectations` compares it to
each application's registered tolerance window.
"""

from __future__ import annotations

__all__ = ["BandwidthEstimator"]


class BandwidthEstimator:
    """EWMA throughput estimator fed by link transfer observations."""

    def __init__(self, link, gain=0.25, min_sample_bytes=512):
        if not 0.0 < gain <= 1.0:
            raise ValueError(f"gain {gain} outside (0, 1]")
        self.link = link
        self.gain = gain
        self.min_sample_bytes = min_sample_bytes
        self.estimate_bps = None
        self.samples = 0
        link.observe(self._on_transfer)

    def _on_transfer(self, nbytes, seconds):
        # Tiny transfers are dominated by latency, not bandwidth.
        if nbytes < self.min_sample_bytes or seconds <= 0:
            return
        observed = nbytes * 8.0 / seconds
        self.samples += 1
        if self.estimate_bps is None:
            self.estimate_bps = observed
        else:
            self.estimate_bps += self.gain * (observed - self.estimate_bps)

    @property
    def has_estimate(self):
        """True once at least one usable transfer has been observed."""
        return self.estimate_bps is not None

    def reset(self):
        """Forget history (e.g. after a known connectivity change)."""
        self.estimate_bps = None
        self.samples = 0
