"""Remote server models.

Servers in the testbed were 200 MHz Pentium Pro desktops operating from
wall power; their energy is *not* charged to the client, only their
processing latency matters.  A server turns abstract work units into
seconds according to its speed, and can degrade or transform content
(the map server filters/crops, the distillation server transcodes).
"""

from __future__ import annotations

__all__ = ["Server"]


class Server:
    """A wall-powered remote compute server.

    Parameters
    ----------
    name:
        Server name, used in traces.
    speed:
        Work units processed per second.  Client-relative speed is
        encoded by expressing application work in the same units.
    """

    def __init__(self, name, speed=1.0):
        if speed <= 0:
            raise ValueError(f"{name}: server speed must be positive")
        self.name = name
        self.speed = speed
        self.requests_served = 0
        self.busy_seconds = 0.0

    def set_speed(self, speed):
        """Change the server's speed (load variation / fault injection)."""
        if speed <= 0:
            raise ValueError(f"{self.name}: server speed must be positive")
        self.speed = speed

    def service_time(self, work_units):
        """Seconds to process ``work_units`` of application work."""
        if work_units < 0:
            raise ValueError(f"negative work {work_units}")
        return work_units / self.speed

    def serve(self, sim, work_units):
        """Generator: process a request for ``work_units``.

        Servers are not a contended resource in the testbed (one client),
        so requests do not queue; each waits its own service time.
        """
        duration = self.service_time(work_units)
        self.requests_served += 1
        self.busy_seconds += duration
        yield sim.timeout(duration)
