"""repro.devices: per-device power-model variation and self-calibration.

Three layers (see ``docs/architecture.md``, "Device fleets &
self-calibration"):

- :mod:`repro.devices.profile` — :class:`DeviceProfile` descriptors
  and byte-stable generated fleets (``sha256(fleet_seed, device_id)``).
- :mod:`repro.devices.calibrate` — Sesame-style
  :class:`OnlineCalibrator` recovering per-component power models from
  coarse SmartBattery readings, with injectable mid-run drift.
- :mod:`repro.devices.fleetmatrix` — per-device × per-policy
  robustness campaigns over the fleet/service substrate
  (``repro sweep --fleet-size N --diff-against ...``).
"""

from repro.devices.calibrate import (
    CalibratedPowerFeed,
    LearnedPowerModel,
    OnlineCalibrator,
    parse_drift,
    schedule_drift,
)
from repro.devices.fleetmatrix import (
    FLEET_TASK_FN,
    FleetMatrix,
    fleet_from_result,
    fleet_from_values,
    fleet_matrix_campaign,
    fleet_matrix_row,
)
from repro.devices.profile import (
    DEFAULT_COMPONENTS,
    DeviceProfile,
    generate_device,
    generate_fleet,
    load_fleet,
    write_fleet,
)

__all__ = [
    "CalibratedPowerFeed",
    "DEFAULT_COMPONENTS",
    "DeviceProfile",
    "FLEET_TASK_FN",
    "FleetMatrix",
    "LearnedPowerModel",
    "OnlineCalibrator",
    "fleet_from_result",
    "fleet_from_values",
    "fleet_matrix_campaign",
    "fleet_matrix_row",
    "generate_device",
    "generate_fleet",
    "load_fleet",
    "parse_drift",
    "schedule_drift",
    "write_fleet",
]
