"""Per-device × per-policy robustness matrix over a heterogeneous fleet.

EMaaS-style (PAPERS.md): instead of asking "how do policies differ on
*the* ThinkPad?" (the policy diff matrix, PR 9), ask "which policies
stay well-behaved across a fleet of *non-identical* devices?" — each
device's components run hotter or cooler than the nominal table and
its battery holds more or less than the controller believes.

The construction reuses the policy-matrix machinery wholesale: one
fleet task per (device, policy) pair plus a per-device baseline
self-row; each task injects its ``device`` profile into the shared
scenario params and delegates to
:func:`repro.fleet.diffmatrix.policy_matrix_row`, so the diff
semantics are *candidate-on-device-D vs baseline-on-device-D* and the
per-worker baseline memo applies per device.  The fold adds a
per-policy robustness summary (divergence count and energy-delta
spread across devices).  Rows are pure functions of their params, so
the document stays byte-identical across serial, ``--jobs N``,
cache-warm, and service-submitted runs.
"""

from __future__ import annotations

from repro.fleet.diffmatrix import (
    BASELINE_LABEL,
    SCENARIO_KEYS,
    _normalize_candidates,
    parse_policy_spec,
    policy_label,
    policy_matrix_row,
)
from repro.fleet.spec import CampaignSpec, Task, canonical_json

__all__ = [
    "FLEET_MATRIX_KIND",
    "FLEET_MATRIX_VERSION",
    "FLEET_TASK_FN",
    "FleetMatrix",
    "fleet_matrix_row",
    "fleet_matrix_campaign",
    "fleet_from_values",
    "fleet_from_result",
]

FLEET_MATRIX_KIND = "fleet-matrix"
FLEET_MATRIX_VERSION = 1
FLEET_TASK_FN = "repro.devices.fleetmatrix:fleet_matrix_row"


# ----------------------------------------------------------------------
# the worker side: one row per (device, policy)
# ----------------------------------------------------------------------
def fleet_matrix_row(label, device, candidate=None, baseline=None,
                     scenario=None, gap=0):
    """Fleet task: diff one policy against the baseline *on one device*.

    ``device`` is a :class:`~repro.devices.profile.DeviceProfile` dict;
    it joins the shared scenario params, so both the candidate and the
    baseline simulate on the same miscalibrated hardware (and the
    per-process record memo keys on it automatically).
    """
    scenario = dict(scenario or {})
    scenario["device"] = dict(device)
    row = policy_matrix_row(label, candidate=candidate, baseline=baseline,
                            scenario=scenario, gap=gap)
    row["device"] = device["device_id"]
    return row


# ----------------------------------------------------------------------
# campaign construction and the matrix fold
# ----------------------------------------------------------------------
def _device_dict(device):
    record = device.to_dict() if hasattr(device, "to_dict") else dict(device)
    if not record.get("device_id"):
        raise ValueError("device profile missing device_id")
    return record


def fleet_matrix_campaign(devices, candidates, baseline=None, scenario=None,
                          name="fleet-matrix", gap=0):
    """One baseline self-row plus one row per candidate, per device.

    Task ids are ``row/{device_id}/{label}``; row order is device-major
    in the given fleet order, baseline first within each device — the
    fold preserves spec order, so this is also the document order.
    """
    if isinstance(baseline, str):
        baseline = parse_policy_spec(baseline)
    baseline = dict(baseline or {})
    scenario = dict(scenario or {})
    unknown = set(scenario) - SCENARIO_KEYS
    if unknown:
        raise ValueError(f"unknown scenario key(s): "
                         f"{', '.join(sorted(unknown))}")
    device_dicts = [_device_dict(device) for device in devices]
    if not device_dicts:
        raise ValueError("fleet must contain at least one device")
    seen = set()
    for record in device_dicts:
        if record["device_id"] in seen:
            raise ValueError(f"duplicate device_id {record['device_id']!r}")
        seen.add(record["device_id"])
    normalized = _normalize_candidates(candidates)

    def make_task(device, label, params):
        task_params = {
            "label": label,
            "device": device,
            "candidate": params,
            "baseline": baseline,
            "scenario": scenario,
        }
        if gap:
            task_params["gap"] = gap
        return Task(id=f"row/{device['device_id']}/{label}",
                    fn=FLEET_TASK_FN, params=task_params)

    tasks = []
    for device in device_dicts:
        tasks.append(make_task(device, BASELINE_LABEL, dict(baseline)))
        for label, params in normalized:
            tasks.append(make_task(device, label, params))
    return CampaignSpec(name=name, tasks=tuple(tasks))


def _robustness(rows):
    """Per-policy summary across devices (pure fold, document-stable)."""
    by_policy = {}
    order = []
    for row in rows:
        policy = row["policy"]
        if policy == BASELINE_LABEL:
            continue
        if policy not in by_policy:
            by_policy[policy] = []
            order.append(policy)
        by_policy[policy].append(row)
    summary = {}
    for policy in order:
        group = by_policy[policy]
        deltas = [row["energy_delta_j"] for row in group]
        summary[policy] = {
            "devices": len(group),
            "diverged": sum(1 for row in group if not row["identical"]),
            "goal_missed": sum(1 for row in group if not row["goal_met"]),
            "energy_delta_min_j": min(deltas),
            "energy_delta_max_j": max(deltas),
            "energy_delta_spread_j": max(deltas) - min(deltas),
            "shape_distance_max": max(row["shape_distance"]
                                      for row in group),
        }
    return summary


class FleetMatrix:
    """The folded fleet scorecard: device-major rows plus robustness.

    Mirrors :class:`repro.fleet.diffmatrix.PolicyMatrix` (``document``/
    ``violations``/``render``), so the CLI's fold/gate/output path
    works on either, and adds the cross-device robustness block.
    """

    def __init__(self, campaign, baseline, scenario, devices, rows):
        self.campaign = campaign
        self.baseline = dict(baseline)
        self.scenario = dict(scenario)
        self.devices = [dict(device) for device in devices]
        self.rows = list(rows)

    def to_dict(self):
        return {
            "kind": FLEET_MATRIX_KIND,
            "version": FLEET_MATRIX_VERSION,
            "campaign": self.campaign,
            "baseline": dict(self.baseline),
            "scenario": dict(self.scenario),
            "devices": [dict(device) for device in self.devices],
            "rows": [dict(row) for row in self.rows],
            "robustness": _robustness(self.rows),
        }

    @classmethod
    def from_dict(cls, record):
        if record.get("kind") != FLEET_MATRIX_KIND:
            raise ValueError("not a fleet-matrix document")
        if record.get("version") != FLEET_MATRIX_VERSION:
            raise ValueError(
                f"fleet-matrix version {record.get('version')} "
                f"!= supported {FLEET_MATRIX_VERSION}"
            )
        return cls(record["campaign"], record["baseline"],
                   record.get("scenario", {}), record.get("devices", []),
                   record["rows"])

    def document(self):
        """Canonical JSON text + trailing newline — the blessed bytes."""
        return canonical_json(self.to_dict()) + "\n"

    @property
    def candidate_rows(self):
        return [row for row in self.rows
                if row["policy"] != BASELINE_LABEL]

    def violations(self, max_windows=None, max_abs_delta_j=None,
                   max_shape_distance=None):
        """CI-gate check; same semantics as the policy matrix, with the
        device id folded into the offending row's name."""
        thresholds = (max_windows is not None
                      or max_abs_delta_j is not None
                      or max_shape_distance is not None)
        problems = []
        for row in self.candidate_rows:
            label = f"{row['device']}/{row['policy']}"
            if not thresholds:
                if not row["identical"]:
                    problems.append(
                        f"{label}: diverges from baseline "
                        f"({row['windows']} window(s), "
                        f"{row['energy_delta_j']:+.1f} J)"
                    )
                continue
            if max_windows is not None and row["windows"] > max_windows:
                problems.append(
                    f"{label}: {row['windows']} divergence window(s) "
                    f"> {max_windows}"
                )
            if (max_abs_delta_j is not None
                    and abs(row["energy_delta_j"]) > max_abs_delta_j):
                problems.append(
                    f"{label}: |energy delta| "
                    f"{abs(row['energy_delta_j']):.1f} J "
                    f"> {max_abs_delta_j:g} J"
                )
            if (max_shape_distance is not None
                    and row["shape_distance"] > max_shape_distance):
                problems.append(
                    f"{label}: shape distance "
                    f"{row['shape_distance']:.4f} "
                    f"> {max_shape_distance:g}"
                )
        return problems

    def render(self):
        """Human table: one line per (device, policy) row."""
        from repro.analysis import render_table

        rows = []
        for row in self.rows:
            first = row["first_divergence_did"]
            rows.append([
                row["device"],
                row["policy"],
                f"{row['energy_total_j']:.1f}",
                f"{row['energy_delta_j']:+.1f}",
                str(row["windows"]),
                str(first) if first is not None else "-",
                "met" if row["goal_met"] else "MISSED",
                f"{row['shape_distance']:.4f}",
            ])
        title = (f"fleet robustness matrix — {self.campaign} "
                 f"({len(self.devices)} device(s), baseline: "
                 f"{policy_label(self.baseline)})")
        return render_table(
            ["device", "policy", "energy (J)", "ΔJ", "windows",
             "first div", "goal", "shape dist"],
            rows, title=title,
        )


def fleet_from_values(spec, values):
    """Fold per-task rows into a :class:`FleetMatrix` (spec order)."""
    baseline = {}
    scenario = {}
    if spec.tasks:
        baseline = dict(spec.tasks[0].params.get("baseline", {}))
        scenario = dict(spec.tasks[0].params.get("scenario", {}))
    devices = []
    seen = set()
    for task in spec.tasks:
        device = task.params.get("device")
        if device and device["device_id"] not in seen:
            seen.add(device["device_id"])
            devices.append(dict(device))
    rows = []
    for task in spec.tasks:
        value = values.get(task.id)
        if isinstance(value, dict) and "policy" in value:
            rows.append(value)
    return FleetMatrix(spec.name, baseline, scenario, devices, rows)


def fleet_from_result(result):
    """Fold a completed :class:`~repro.fleet.runner.CampaignResult`."""
    return fleet_from_values(result.spec, result.values)
