"""Sesame-style online self-calibration of per-component power models.

The controller believes a *nominal* power table; the device's reality
may differ (a :class:`~repro.devices.profile.DeviceProfile` multiplier,
or mid-run drift).  Following Sesame (PAPERS.md), the
:class:`OnlineCalibrator` recovers the real table from the only signal
a deployed machine has — coarse :class:`SmartBatteryGauge` readings —
by regressing each reading against the per-component *nominal* energy
folded over the reading interval:

    gauge reading  ≈  Σ_c  m_c · (nominal joules of c in interval) / dt

Between readings the calibrator tracks every component state change
(via ``component.observe``) and folds nominal watts *at the gauge's
own internal sample instants* (``SmartBatteryGauge.sample_hooks``), so
each regressor sees exactly the waveform the reading averaged — the
alternative, a continuous-time integral, aliases against the gauge's
point sampling of pulsed loads and biases the fit.  The fit is plain
least squares over the stdlib (normal equations + Gaussian elimination
with partial pivoting; no numpy), re-run over a sliding window of
recent readings so the model re-converges after injected drift.

Convergence and residuals are observable as ``calibration.*`` trace
events (joinable to power spans via ``power_span``) and metrics.
"""

from __future__ import annotations

from collections import deque

__all__ = [
    "LearnedPowerModel",
    "OnlineCalibrator",
    "CalibratedPowerFeed",
    "parse_drift",
    "schedule_drift",
]

#: Readings retained for the sliding-window refit.  Large enough to
#: average quantization error down, small enough that a drifted table
#: dominates the window within ~a minute of 1 Hz readings.
DEFAULT_WINDOW = 64


def _solve(matrix, vector):
    """Solve ``matrix @ x = vector`` by Gaussian elimination.

    Partial pivoting; returns ``None`` when the system is (near)
    singular — e.g. a component that never changed state is perfectly
    collinear with another constant draw.
    """
    n = len(vector)
    a = [row[:] + [vector[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-12:
            return None
        if pivot != col:
            a[col], a[pivot] = a[pivot], a[col]
        for row in range(col + 1, n):
            factor = a[row][col] / a[col][col]
            if factor != 0.0:
                for k in range(col, n + 1):
                    a[row][k] -= factor * a[col][k]
    x = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = a[row][n]
        for k in range(row + 1, n):
            acc -= a[row][k] * x[k]
        x[row] = acc / a[row][row]
    return x


class LearnedPowerModel:
    """A fitted power model: per-component multipliers over a nominal table."""

    def __init__(self, multipliers, nominal, fitted_at=0.0, readings=0):
        self.multipliers = dict(multipliers)
        self.nominal = nominal
        self.fitted_at = fitted_at
        self.readings = readings

    def multiplier(self, component_name):
        return self.multipliers.get(component_name, 1.0)

    def predict(self, mean_nominal_watts):
        """Predicted total draw for per-component mean nominal watts."""
        return sum(
            self.multiplier(name) * watts
            for name, watts in mean_nominal_watts.items()
        )

    def table(self):
        """The learned table: nominal wattages scaled by the fit."""
        return {
            name: {state: watts * self.multiplier(name)
                   for state, watts in states.items()}
            for name, states in self.nominal.items()
        }

    def error_vs(self, true_multipliers):
        """Per-component relative error against known-true multipliers."""
        errors = {}
        for name in self.multipliers:
            true = true_multipliers.get(name, 1.0)
            errors[name] = abs(self.multiplier(name) - true) / true
        return errors

    def to_dict(self):
        return {
            "multipliers": {name: self.multipliers[name]
                            for name in sorted(self.multipliers)},
            "fitted_at": self.fitted_at,
            "readings": self.readings,
        }


class OnlineCalibrator:
    """Regress gauge readings against journal-folded nominal utilization.

    Parameters
    ----------
    machine:
        The machine whose (possibly miscalibrated) draw is gauged.
    gauge:
        A started-or-startable :class:`SmartBatteryGauge` on that
        machine.  The calibrator subscribes immediately, so create it
        *before* any consumer that wants post-fit model state per
        reading (e.g. :class:`CalibratedPowerFeed`).
    nominal:
        The believed table, ``{component: {state: watts}}``.  Only the
        listed components are fitted; their state sets must cover the
        states the run visits.
    window:
        Sliding window of readings per refit (:data:`DEFAULT_WINDOW`).
    tracer / metrics:
        Observability; ``calibration.*`` events and metrics.
    """

    def __init__(self, machine, gauge, nominal, window=DEFAULT_WINDOW,
                 tracer=None, metrics=None):
        if not nominal:
            raise ValueError("nominal table must name at least one component")
        self.machine = machine
        self.sim = machine.sim
        self.gauge = gauge
        self.nominal = {name: dict(states)
                        for name, states in nominal.items()}
        self.component_names = sorted(self.nominal)
        self.window = window
        self.model = LearnedPowerModel(
            {name: 1.0 for name in self.component_names}, self.nominal
        )
        self.readings = 0
        self.fits = 0
        self.last_residual_w = 0.0
        self.last_x = {name: 0.0 for name in self.component_names}
        self.last_predicted_w = 0.0
        self.residual_log = deque(maxlen=4096)
        self._rows = deque(maxlen=window)

        # Current nominal watts per component (kept fresh by state-change
        # observers) plus per-window sums folded at the gauge's own
        # sample instants.
        self._acc = {name: 0.0 for name in self.component_names}
        self._acc_samples = 0
        self._current = {}
        for name in self.component_names:
            component = machine.components[name]
            self._current[name] = self._nominal_watts(name, component.state)
            component.observe(self._on_state_change)
        gauge.sample_hooks.append(self._on_gauge_sample)

        tracer = tracer if tracer is not None else getattr(
            self.sim, "tracer", None)
        self._trace = tracer.gate("calibration") if tracer is not None else None
        if metrics is None:
            from repro.obs.metrics import current_metrics
            metrics = current_metrics()
        self.metrics = metrics
        self._m_readings = metrics.counter("calibration.readings")
        self._m_fits = metrics.counter("calibration.fits")
        self._m_residual = metrics.histogram("calibration.residual_w")
        self._m_residual_last = metrics.gauge("calibration.last_residual_w")

        gauge.subscribe(self._on_reading)

    # ------------------------------------------------------------------
    # nominal-utilization fold
    # ------------------------------------------------------------------
    def _nominal_watts(self, name, state):
        states = self.nominal[name]
        if state not in states:
            raise ValueError(
                f"nominal table for {name!r} missing state {state!r}")
        return states[state]

    def _on_state_change(self, component, _old, new):
        if component.name not in self._current:
            return
        self._current[component.name] = self._nominal_watts(
            component.name, new)

    def _on_gauge_sample(self, _now, _watts):
        for name, watts in self._current.items():
            self._acc[name] += watts
        self._acc_samples += 1

    # ------------------------------------------------------------------
    # per-reading update
    # ------------------------------------------------------------------
    def _on_reading(self, now, reading_w, dt):
        if dt <= 0.0 or self._acc_samples == 0:
            return
        samples = self._acc_samples
        x = {name: self._acc[name] / samples
             for name in self.component_names}
        self._acc = {name: 0.0 for name in self.component_names}
        self._acc_samples = 0
        self.readings += 1
        self._m_readings.inc()
        self._rows.append((x, reading_w))
        if len(self._rows) > len(self.component_names):
            self._fit(now)
        self.last_x = x
        self.last_predicted_w = self.model.predict(x)
        residual = reading_w - self.last_predicted_w
        self.last_residual_w = residual
        self.residual_log.append((now, residual))
        self._m_residual.observe(abs(residual))
        self._m_residual_last.set(residual)
        if self._trace is not None:
            self._trace.instant(
                now, "calibration", "calibration.fit", track="calibration",
                args={
                    "reading_w": reading_w,
                    "predicted_w": self.last_predicted_w,
                    "residual_w": residual,
                    "multipliers": dict(self.model.multipliers),
                    "fits": self.fits,
                    "power_span": self.machine.power_span_id(),
                },
            )

    def _fit(self, now):
        names = self.component_names
        n = len(names)
        ata = [[0.0] * n for _ in range(n)]
        aty = [0.0] * n
        for x, y in self._rows:
            xv = [x[name] for name in names]
            for i in range(n):
                if xv[i] == 0.0:
                    continue
                aty[i] += xv[i] * y
                for j in range(n):
                    ata[i][j] += xv[i] * xv[j]
        solution = _solve(ata, aty)
        if solution is None:
            return
        multipliers = {
            name: max(0.0, solution[i]) for i, name in enumerate(names)
        }
        self.fits += 1
        self._m_fits.inc()
        self.model = LearnedPowerModel(
            multipliers, self.nominal, fitted_at=now, readings=self.readings
        )

    # ------------------------------------------------------------------
    def residuals_between(self, t0, t1):
        """Residuals logged in ``[t0, t1)`` (for convergence tests)."""
        return [r for t, r in self.residual_log if t0 <= t < t1]

    def summary(self):
        recent = [abs(r) for _t, r in list(self.residual_log)[-16:]]
        return {
            "readings": self.readings,
            "fits": self.fits,
            "multipliers": {name: self.model.multipliers[name]
                            for name in self.component_names},
            "last_residual_w": self.last_residual_w,
            "recent_abs_residual_w": (
                sum(recent) / len(recent) if recent else 0.0
            ),
        }


class CalibratedPowerFeed:
    """Monitor-compatible feed that publishes *learned-model* power.

    Where :class:`OnlinePowerMonitor` hands the controller ground-truth
    watts, this feed hands it what the learned model *believes* was
    drawn over each gauge interval — the controller's whole view of
    power passes through the calibration.  Create it *after* the
    calibrator so each gauge reading updates the model first.
    """

    def __init__(self, calibrator):
        self.calibrator = calibrator
        self.gauge = calibrator.gauge
        self.subscribers = []
        self.gauge.subscribe(self._on_reading)

    def subscribe(self, callback):
        """Register ``callback(time, watts, dt)`` per model estimate."""
        self.subscribers.append(callback)

    def start(self):
        self.gauge.start()

    def stop(self):
        self.gauge.stop()

    def _on_reading(self, now, _reading_w, dt):
        watts = self.calibrator.last_predicted_w
        for callback in self.subscribers:
            callback(now, watts, dt)


def parse_drift(spec):
    """Parse ``"AT:FACTOR"`` (e.g. ``"60:1.25"``) into ``(at, factor)``."""
    if isinstance(spec, (tuple, list)):
        at, factor = spec
        at, factor = float(at), float(factor)
    else:
        try:
            at_text, factor_text = str(spec).split(":", 1)
            at, factor = float(at_text), float(factor_text)
        except ValueError:
            raise ValueError(
                f"drift must be 'AT:FACTOR' (e.g. '60:1.25'): {spec!r}"
            ) from None
    if at < 0:
        raise ValueError(f"drift instant must be >= 0: {at}")
    if factor <= 0:
        raise ValueError(f"drift factor must be positive: {factor}")
    return at, factor


def schedule_drift(sim, machine, at, factor, components=None, tracer=None):
    """Scale real component wattages by ``factor`` at sim time ``at``.

    Models the device's physical power draw drifting away from any
    previously correct model (thermal effects, aging, a misbehaving
    peripheral).  Controllers and calibrators are not told — they see
    it only through the gauge.
    """
    at, factor = float(at), float(factor)
    if factor <= 0:
        raise ValueError(f"drift factor must be positive: {factor}")
    tracer = tracer if tracer is not None else getattr(sim, "tracer", None)
    gate = tracer.gate("calibration") if tracer is not None else None

    def _apply(_time):
        machine.power_will_change()
        names = []
        for name, component in machine.components.items():
            if components is not None and name not in components:
                continue
            component.states = {
                state: watts * factor
                for state, watts in component.states.items()
            }
            names.append(name)
        if gate is not None:
            gate.instant(
                sim.now, "calibration", "calibration.drift",
                track="calibration",
                args={"factor": factor, "components": names,
                      "power_span": machine.power_span_id()},
            )

    delay = at - sim.now
    if delay < 0:
        raise ValueError(f"drift instant {at} is in the past (now={sim.now})")
    return sim.schedule(delay, _apply)
