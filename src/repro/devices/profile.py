"""Per-device hardware variation: profiles and deterministic fleets.

The paper's evaluation ran on a single hand-measured ThinkPad 560X;
every controller in this repo trusts that Figure-4 table perfectly.  A
:class:`DeviceProfile` describes how one *physical* device deviates
from the nominal table — per-component wattage multipliers, battery
capacity variation, and the quality of its SmartBattery gauge
(quantization step, noise, sampling period) — so the same scenario can
be replayed on a device whose reality disagrees with the model the
controller believes.

Fleets are generated deterministically: every parameter of every
device is derived from ``sha256(fleet_seed, device_id, field)`` mapped
into a fixed range, so ``generate_fleet(size, seed)`` is byte-stable
across processes, platforms, and time — the property the fleet-matrix
goldens lean on.  Fleets round-trip through canonical JSON files
(:func:`write_fleet` / :func:`load_fleet`) in the spirit of per-device
calibration files.
"""

from __future__ import annotations

import hashlib
import json

__all__ = [
    "DeviceProfile",
    "DEFAULT_COMPONENTS",
    "FLEET_KIND",
    "FLEET_VERSION",
    "generate_device",
    "generate_fleet",
    "load_fleet",
    "write_fleet",
]

FLEET_KIND = "device-fleet"
FLEET_VERSION = 1

#: Component names covered by the generator: the pulse rig's three
#: (platform/codec/radio) plus the ThinkPad 560X build.
DEFAULT_COMPONENTS = (
    "platform", "codec", "radio",
    "base", "cpu", "display", "disk", "wavelan",
)

#: Parameter ranges the generator draws from.  Multipliers straddle
#: 1.0 asymmetrically (components usually run hotter than the bench
#: measurement); battery capacity skews low (aged cells).
MULTIPLIER_RANGE = (0.80, 1.25)
BATTERY_SCALE_RANGE = (0.85, 1.10)
GAUGE_PERIOD_RANGE = (0.5, 2.0)
GAUGE_RESOLUTION_RANGE = (0.10, 0.40)
GAUGE_NOISE_RANGE = (0.0, 0.10)


def _unit(fleet_seed, device_id, field):
    """Deterministic uniform draw in [0, 1) for one device parameter."""
    key = f"{fleet_seed}/{device_id}/{field}".encode("utf-8")
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def _draw(fleet_seed, device_id, field, lo, hi):
    return round(lo + _unit(fleet_seed, device_id, field) * (hi - lo), 4)


class DeviceProfile:
    """How one device deviates from the nominal power model.

    Parameters
    ----------
    device_id:
        Stable identifier; doubles as the matrix row key.
    multipliers:
        ``{component_name: factor}`` applied to every state wattage of
        that component at :meth:`Machine.attach` time.  Missing
        components default to 1.0 (nominal).
    battery_scale:
        Physical battery capacity as a fraction of the nominal rating.
        Controllers keep believing the nominal rating — the gap is the
        miscalibration under test.
    gauge_period / gauge_resolution_w / gauge_noise_w:
        SmartBattery quality on this device: sampling period, power
        quantization step, and uniform noise amplitude.
    """

    def __init__(self, device_id, multipliers=None, battery_scale=1.0,
                 gauge_period=1.0, gauge_resolution_w=0.25,
                 gauge_noise_w=0.0):
        if not device_id:
            raise ValueError("device_id must be non-empty")
        if battery_scale <= 0:
            raise ValueError(f"battery_scale must be positive: {battery_scale}")
        if gauge_period <= 0:
            raise ValueError(f"gauge_period must be positive: {gauge_period}")
        if gauge_resolution_w <= 0:
            raise ValueError(
                f"gauge_resolution_w must be positive: {gauge_resolution_w}")
        if gauge_noise_w < 0:
            raise ValueError(f"gauge_noise_w must be >= 0: {gauge_noise_w}")
        for name, factor in (multipliers or {}).items():
            if factor <= 0:
                raise ValueError(f"multiplier for {name!r} must be positive")
        self.device_id = str(device_id)
        self.multipliers = dict(multipliers or {})
        self.battery_scale = float(battery_scale)
        self.gauge_period = float(gauge_period)
        self.gauge_resolution_w = float(gauge_resolution_w)
        self.gauge_noise_w = float(gauge_noise_w)

    def multiplier(self, component_name):
        """Wattage factor for one component (1.0 when uncalibrated)."""
        return self.multipliers.get(component_name, 1.0)

    def scale(self, component_name, watts):
        return watts * self.multiplier(component_name)

    def to_dict(self):
        return {
            "device_id": self.device_id,
            "multipliers": {k: self.multipliers[k]
                            for k in sorted(self.multipliers)},
            "battery_scale": self.battery_scale,
            "gauge_period": self.gauge_period,
            "gauge_resolution_w": self.gauge_resolution_w,
            "gauge_noise_w": self.gauge_noise_w,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["device_id"],
            multipliers=data.get("multipliers"),
            battery_scale=data.get("battery_scale", 1.0),
            gauge_period=data.get("gauge_period", 1.0),
            gauge_resolution_w=data.get("gauge_resolution_w", 0.25),
            gauge_noise_w=data.get("gauge_noise_w", 0.0),
        )

    def __repr__(self):
        return (f"DeviceProfile({self.device_id!r}, "
                f"battery_scale={self.battery_scale}, "
                f"multipliers={self.multipliers})")


def generate_device(fleet_seed, device_id, components=DEFAULT_COMPONENTS):
    """One deterministic device: every field from sha256(seed, id, field)."""
    return DeviceProfile(
        device_id,
        multipliers={
            name: _draw(fleet_seed, device_id, f"mult/{name}",
                        *MULTIPLIER_RANGE)
            for name in components
        },
        battery_scale=_draw(fleet_seed, device_id, "battery_scale",
                            *BATTERY_SCALE_RANGE),
        gauge_period=_draw(fleet_seed, device_id, "gauge_period",
                           *GAUGE_PERIOD_RANGE),
        gauge_resolution_w=_draw(fleet_seed, device_id, "gauge_resolution_w",
                                 *GAUGE_RESOLUTION_RANGE),
        gauge_noise_w=_draw(fleet_seed, device_id, "gauge_noise_w",
                            *GAUGE_NOISE_RANGE),
    )


def generate_fleet(size, fleet_seed, components=DEFAULT_COMPONENTS):
    """``size`` byte-stable devices ``dev00..devNN`` for ``fleet_seed``."""
    if size <= 0:
        raise ValueError(f"fleet size must be positive: {size}")
    return [
        generate_device(fleet_seed, f"dev{index:02d}", components=components)
        for index in range(size)
    ]


def write_fleet(profiles, path, fleet_seed=None):
    """Serialize a fleet to a canonical-JSON calibration file."""
    payload = {
        "kind": FLEET_KIND,
        "version": FLEET_VERSION,
        "devices": [profile.to_dict() for profile in profiles],
    }
    if fleet_seed is not None:
        payload["fleet_seed"] = fleet_seed
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")


def load_fleet(path):
    """Load a fleet calibration file written by :func:`write_fleet`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("kind") != FLEET_KIND:
        raise ValueError(f"not a device-fleet file: {path}")
    if payload.get("version") != FLEET_VERSION:
        raise ValueError(
            f"unsupported device-fleet version {payload.get('version')}")
    devices = [DeviceProfile.from_dict(entry)
               for entry in payload.get("devices", ())]
    if not devices:
        raise ValueError(f"fleet file has no devices: {path}")
    seen = set()
    for device in devices:
        if device.device_id in seen:
            raise ValueError(f"duplicate device_id {device.device_id!r}")
        seen.add(device.device_id)
    return devices
