"""Render energy profiles as Figure 2-style text tables."""

from __future__ import annotations

__all__ = ["render_profile", "render_process_detail"]

_HEADER = "{:<28} {:>10} {:>14} {:>14}"
_ROW = "{:<28} {:>10.2f} {:>14.2f} {:>14.2f}"


def render_profile(profile, detail_process=None):
    """Format a profile like the paper's Figure 2.

    The summary table lists every process (CPU seconds, total joules,
    average watts).  When ``detail_process`` is given, a second table
    shows that process's per-procedure breakdown.
    """
    lines = []
    lines.append(_HEADER.format("Process", "CPU(s)", "Energy(J)", "Avg Power(W)"))
    lines.append("-" * 70)
    for entry in profile.sorted_processes():
        lines.append(
            _ROW.format(
                entry.name, entry.cpu_seconds, entry.energy_joules,
                entry.average_power,
            )
        )
    lines.append("-" * 70)
    lines.append(
        _ROW.format(
            "Total", profile.total_cpu_seconds, profile.total_energy,
            profile.total_energy / profile.elapsed if profile.elapsed else 0.0,
        )
    )
    if detail_process is not None:
        lines.append("")
        lines.extend(render_process_detail(profile, detail_process))
    return "\n".join(lines)


def render_process_detail(profile, process):
    """Format the per-procedure table for one process."""
    lines = []
    lines.append(f"Energy Usage Detail for process {process}")
    lines.append("")
    lines.append(_HEADER.format("Procedure", "CPU(s)", "Energy(J)", "Avg Power(W)"))
    lines.append("-" * 70)
    for entry in profile.sorted_procedures(process):
        lines.append(
            _ROW.format(
                entry.name, entry.cpu_seconds, entry.energy_joules,
                entry.average_power,
            )
        )
    return lines
