"""Energy-profile comparison.

PowerScope's purpose is to "help expose system components most
responsible for energy consumption" (paper Section 2.1); the natural
workflow is differential — profile a baseline run and an optimized run
and see which components account for the change.  This module computes
and renders that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProfileDelta", "diff_profiles", "render_diff"]


@dataclass(frozen=True)
class ProfileDelta:
    """Change in one process's energy between two profiles."""

    process: str
    before_joules: float
    after_joules: float

    @property
    def delta_joules(self):
        """Energy change (after minus before)."""
        return self.after_joules - self.before_joules

    @property
    def relative(self):
        """Fractional change (None when the process is new)."""
        if self.before_joules == 0:
            return None
        return self.delta_joules / self.before_joules


def diff_profiles(before, after):
    """Per-process energy deltas, largest absolute change first."""
    processes = set(before.processes) | set(after.processes)
    deltas = [
        ProfileDelta(
            process,
            before.energy_of(process),
            after.energy_of(process),
        )
        for process in processes
    ]
    deltas.sort(key=lambda d: abs(d.delta_joules), reverse=True)
    return deltas


def render_diff(before, after, title="Energy profile comparison"):
    """Format the comparison as a text table."""
    deltas = diff_profiles(before, after)
    lines = [title, ""]
    header = f"{'Process':<28} {'Before(J)':>10} {'After(J)':>10} {'Delta(J)':>10} {'Change':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for delta in deltas:
        relative = delta.relative
        change = f"{relative:+.0%}" if relative is not None else "new"
        lines.append(
            f"{delta.process:<28} {delta.before_joules:>10.1f} "
            f"{delta.after_joules:>10.1f} {delta.delta_joules:>+10.1f} "
            f"{change:>8}"
        )
    total_before = before.total_energy
    total_after = after.total_energy
    lines.append("-" * len(header))
    overall = (
        (total_after - total_before) / total_before if total_before else 0.0
    )
    lines.append(
        f"{'Total':<28} {total_before:>10.1f} {total_after:>10.1f} "
        f"{total_after - total_before:>+10.1f} {overall:>+8.0%}"
    )
    return "\n".join(lines)
