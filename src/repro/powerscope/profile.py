"""Energy-profile data structures (the output of PowerScope).

A profile is two nested tables, as in the paper's Figure 2: a summary
of CPU time, energy and average power per process, and a per-procedure
detail table within each process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ProfileEntry", "EnergyProfile"]


@dataclass
class ProfileEntry:
    """Accumulated time and energy for one process or procedure."""

    name: str
    cpu_seconds: float = 0.0
    energy_joules: float = 0.0

    @property
    def average_power(self):
        """Mean watts while this entry's code was executing."""
        if self.cpu_seconds <= 0:
            return 0.0
        return self.energy_joules / self.cpu_seconds

    def add(self, seconds, joules):
        """Accumulate one sample interval."""
        self.cpu_seconds += seconds
        self.energy_joules += joules


@dataclass
class EnergyProfile:
    """A complete PowerScope profile.

    Attributes
    ----------
    processes:
        Mapping of process name to its summary :class:`ProfileEntry`.
    procedures:
        Mapping of process name to {procedure name: :class:`ProfileEntry`}.
    elapsed:
        Wall-clock span covered by the profile.
    sample_count:
        Number of correlated samples the profile was built from.
    """

    processes: dict = field(default_factory=dict)
    procedures: dict = field(default_factory=dict)
    elapsed: float = 0.0
    sample_count: int = 0

    def record(self, process, procedure, seconds, joules):
        """Credit one sample interval to a process/procedure pair."""
        entry = self.processes.get(process)
        if entry is None:
            entry = self.processes[process] = ProfileEntry(process)
        entry.add(seconds, joules)
        detail = self.procedures.setdefault(process, {})
        proc_entry = detail.get(procedure)
        if proc_entry is None:
            proc_entry = detail[procedure] = ProfileEntry(procedure)
        proc_entry.add(seconds, joules)

    @property
    def total_energy(self):
        """Total joules across all processes."""
        return sum(e.energy_joules for e in self.processes.values())

    @property
    def total_cpu_seconds(self):
        """Total sampled seconds across all processes."""
        return sum(e.cpu_seconds for e in self.processes.values())

    def energy_of(self, process):
        """Joules attributed to one process (0 when absent)."""
        entry = self.processes.get(process)
        return entry.energy_joules if entry else 0.0

    def fraction_of(self, process):
        """Share of total energy attributed to one process."""
        total = self.total_energy
        return self.energy_of(process) / total if total else 0.0

    def sorted_processes(self):
        """Process entries, highest energy first (Figure 2 ordering)."""
        return sorted(
            self.processes.values(), key=lambda e: e.energy_joules, reverse=True
        )

    def sorted_procedures(self, process):
        """Procedure entries for a process, highest energy first."""
        detail = self.procedures.get(process, {})
        return sorted(detail.values(), key=lambda e: e.energy_joules, reverse=True)

    def as_table(self):
        """Nested plain-dict view of every accumulated number.

        Exact (no rounding), so two profiles built from bit-identical
        sample streams compare equal — the golden determinism tests and
        ``python -m repro bench`` use this to assert the lazy sampler
        reproduces the eager sampler's tables exactly.
        """
        return {
            "elapsed": self.elapsed,
            "sample_count": self.sample_count,
            "processes": {
                name: (entry.cpu_seconds, entry.energy_joules)
                for name, entry in self.processes.items()
            },
            "procedures": {
                process: {
                    name: (entry.cpu_seconds, entry.energy_joules)
                    for name, entry in detail.items()
                }
                for process, detail in self.procedures.items()
            },
        }
