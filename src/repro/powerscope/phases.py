"""Fold a power journal into per-phase joule totals.

The machine's segment journal (and its traced ``power/span`` image) is
a piecewise-constant power function of simulated time.  Given a sorted
list of phase boundaries — decision instants from the spine, workload
``phase.begin`` markers — this module integrates that function per
phase, pro-rating segments that straddle a boundary, and attributes
each phase's joules to hardware components.  It is the journal→phase
fold under :mod:`repro.obs.signature`.
"""

from __future__ import annotations

__all__ = [
    "fold_phase_energy",
    "machine_phase_energy",
    "segments_from_journal",
    "spans_to_segments",
]


def spans_to_segments(spans):
    """Convert a :func:`repro.obs.export.power_spans` index to segments.

    Returns ``(t0, t1, watts, components)`` tuples sorted by start
    time; ``components`` is a ``{name: watts}`` dict or ``None`` for
    spans traced before per-component attribution existed.
    """
    segments = []
    for span in spans.values():
        t0 = span["t0"]
        t1 = t0 + (span["dur"] or 0.0)
        segments.append((t0, t1, span["watts"] or 0.0, span.get("components")))
    segments.sort(key=lambda seg: (seg[0], seg[1]))
    return segments


def segments_from_journal(journal):
    """Convert live machine journal segments to fold input.

    The superlinear correction is credited to a synthetic
    ``(superlinear)`` component row, matching the traced spans.
    """
    segments = []
    for seg in journal:
        components = dict(seg.comp_powers)
        if seg.correction:
            components["(superlinear)"] = seg.correction
        segments.append((seg.t0, seg.t1, seg.power, components))
    return segments


def fold_phase_energy(segments, boundaries):
    """Integrate piecewise-constant power between phase boundaries.

    ``segments`` is an iterable of ``(t0, t1, watts, components)``;
    ``boundaries`` a sorted list of at least two instants — phase *i*
    spans ``[boundaries[i], boundaries[i+1])``.  Returns one dict per
    phase: ``{"t0", "t1", "joules", "components": {name: joules}}``.
    Segments overlapping a boundary contribute pro rata to both sides.
    """
    if len(boundaries) < 2:
        raise ValueError("need at least two phase boundaries")
    if any(b < a for a, b in zip(boundaries, boundaries[1:])):
        raise ValueError("phase boundaries must be sorted")
    phases = [
        {"t0": t0, "t1": t1, "joules": 0.0, "components": {}}
        for t0, t1 in zip(boundaries, boundaries[1:])
    ]
    for t0, t1, watts, components in segments:
        if t1 <= t0:
            continue
        for phase in phases:
            overlap = min(t1, phase["t1"]) - max(t0, phase["t0"])
            if overlap <= 0.0:
                continue
            phase["joules"] += watts * overlap
            if components:
                rows = phase["components"]
                for name, comp_watts in components.items():
                    rows[name] = rows.get(name, 0.0) + comp_watts * overlap
    return phases


def machine_phase_energy(machine, boundaries):
    """Per-phase joules straight from a live machine's retained journal.

    Requires the journal to be pinned (e.g. by an open snapshot scope)
    or otherwise un-compacted back to ``boundaries[0]``; traced runs
    should prefer folding the exported ``power/span`` events instead.
    """
    machine.advance()
    return fold_phase_energy(
        segments_from_journal(machine._journal), boundaries
    )
