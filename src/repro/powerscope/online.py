"""On-line PowerScope: the power feed for goal-directed adaptation.

Section 5.1.1 of the paper: "Odyssey measures power with an on-line
version of PowerScope, using samples collected every 100 milliseconds.
At each sample, Odyssey calculates residual energy, assuming a known
initial value and constant power consumption between samples."

The :class:`OnlinePowerMonitor` samples the machine's power on that
cadence and pushes each reading to subscribers (the viceroy's energy
supply accounting and demand predictor).
"""

from __future__ import annotations

__all__ = ["OnlinePowerMonitor"]


class OnlinePowerMonitor:
    """Periodic power sampler with subscriber callbacks.

    Subscribers receive ``(time, watts, dt)`` where ``dt`` is the time
    since the previous sample — the integration interval for residual
    energy accounting.
    """

    def __init__(self, machine, period=0.1):
        if period <= 0:
            raise ValueError(f"sampling period must be positive, got {period}")
        self.machine = machine
        self.sim = machine.sim
        self.period = period
        self.subscribers = []
        self.last_power = 0.0
        self._running = False
        self._last_sample_time = None
        self._entry = None
        tracer = getattr(self.sim, "tracer", None)
        self._trace = tracer.gate("powerscope") if tracer is not None else None

    def subscribe(self, callback):
        """Register ``callback(time, watts, dt)`` for every sample."""
        self.subscribers.append(callback)

    def start(self):
        """Begin sampling."""
        if self._running:
            return
        self._running = True
        self._last_sample_time = self.sim.now
        if self._trace is not None:
            self._trace.instant(
                self.sim.now, "powerscope", "online.start", track="online",
                args={"period": self.period},
            )
        self._entry = self.sim.schedule(self.period, self._tick)

    def stop(self):
        """Stop sampling; the pending tick is cancelled, not orphaned."""
        if not self._running:
            return
        self._running = False
        if self._entry is not None:
            self.sim.cancel(self._entry)
            self._entry = None
        if self._trace is not None:
            self._trace.instant(
                self.sim.now, "powerscope", "online.stop", track="online",
                args={"last_power": self.last_power},
            )

    def _tick(self, _time):
        if not self._running:
            return
        self.machine.advance()
        now = self.sim.now
        dt = now - self._last_sample_time
        self._last_sample_time = now
        self.last_power = self.machine.power
        for callback in self.subscribers:
            callback(now, self.last_power, dt)
        self._entry = self.sim.schedule(self.period, self._tick)

    # ------------------------------------------------------------------
    # snapshot protocol (repro.snapshot)
    # ------------------------------------------------------------------
    def __snapshot__(self, ctx):
        ctx.claim(self._entry, "tick")
        return {
            "running": self._running,
            "last_power": self.last_power,
            "last_sample_time": self._last_sample_time,
        }

    def __restore__(self, state, ctx):
        # Subscribers are re-wired by whoever subscribed (the goal
        # controller's __restore__), not serialized as callables.
        self._running = bool(state["running"])
        self.last_power = state["last_power"]
        self._last_sample_time = state["last_sample_time"]
        for when, seq, kind in ctx.events():
            if kind != "tick":
                raise ValueError(f"unexpected monitor event kind {kind!r}")
            self._entry = ctx.push(when, seq, self._tick)
