"""On-line PowerScope: the power feed for goal-directed adaptation.

Section 5.1.1 of the paper: "Odyssey measures power with an on-line
version of PowerScope, using samples collected every 100 milliseconds.
At each sample, Odyssey calculates residual energy, assuming a known
initial value and constant power consumption between samples."

The :class:`OnlinePowerMonitor` samples the machine's power on that
cadence and pushes each reading to subscribers (the viceroy's energy
supply accounting and demand predictor).

Fused sampling
--------------
Sampling every 100 ms makes the monitor tick the hottest event in a
goal run — lookahead branch advances are almost nothing but ticks.
When a bounded run is in charge (``sim.run(until=...)`` or the pulse
scenario's step loop), power is piecewise constant, and the single
subscriber is the goal controller's sample hook, consecutive ticks up
to the next foreign heap event are arithmetically independent of any
other code — so :meth:`OnlinePowerMonitor._tick` computes them in one
tight loop over local variables and writes the results back at batch
end.  The loop performs the *same float operations in the same order*
as the per-event path (one sequence number per tick included), so
fused and unfused runs are byte-identical — the golden-trace and
snapshot determinism suites pin this down.
"""

from __future__ import annotations

import heapq
import math

from repro.hardware.battery import Battery, ExternalSupply
from repro.hardware.machine import Machine

__all__ = ["OnlinePowerMonitor"]

# Resolved lazily: repro.core.odyssey imports this module, so a
# module-level import of repro.core here would cycle.
_GOAL_SAMPLE_HOOK = None
_SUPPLY_TYPE = None
_PREDICTOR_TYPE = None


def _resolve_fuse_types():
    global _GOAL_SAMPLE_HOOK, _SUPPLY_TYPE, _PREDICTOR_TYPE
    from repro.core.demand import DemandPredictor
    from repro.core.goal import GoalDirectedController
    from repro.core.supply import EnergySupply

    _GOAL_SAMPLE_HOOK = GoalDirectedController._on_power_sample
    _SUPPLY_TYPE = EnergySupply
    _PREDICTOR_TYPE = DemandPredictor


class OnlinePowerMonitor:
    """Periodic power sampler with subscriber callbacks.

    Subscribers receive ``(time, watts, dt)`` where ``dt`` is the time
    since the previous sample — the integration interval for residual
    energy accounting.
    """

    def __init__(self, machine, period=0.1):
        if period <= 0:
            raise ValueError(f"sampling period must be positive, got {period}")
        self.machine = machine
        self.sim = machine.sim
        self.period = period
        self.subscribers = []
        self.last_power = 0.0
        self._running = False
        self._last_sample_time = None
        self._entry = None
        # Fused-path static-check cache: the identity-keyed conditions
        # (subscriber hook, supply/predictor types, machine type) are
        # re-verified only when one of the keyed objects changes.
        self._fuse_key = None
        self._fuse_static = False
        tracer = getattr(self.sim, "tracer", None)
        self._trace = tracer.gate("powerscope") if tracer is not None else None

    def subscribe(self, callback):
        """Register ``callback(time, watts, dt)`` for every sample."""
        self.subscribers.append(callback)

    def start(self):
        """Begin sampling."""
        if self._running:
            return
        self._running = True
        self._last_sample_time = self.sim.now
        if self._trace is not None:
            self._trace.instant(
                self.sim.now, "powerscope", "online.start", track="online",
                args={"period": self.period},
            )
        self._entry = self.sim.schedule(self.period, self._tick)

    def stop(self):
        """Stop sampling; the pending tick is cancelled, not orphaned."""
        if not self._running:
            return
        self._running = False
        if self._entry is not None:
            self.sim.cancel(self._entry)
            self._entry = None
        if self._trace is not None:
            self._trace.instant(
                self.sim.now, "powerscope", "online.stop", track="online",
                args={"last_power": self.last_power},
            )

    def _tick(self, _time):
        if not self._running:
            return
        machine = self.machine
        machine.advance()
        sim = self.sim
        now = sim.now
        dt = now - self._last_sample_time
        self._last_sample_time = now
        self.last_power = machine.power
        for callback in self.subscribers:
            callback(now, self.last_power, dt)
        if self._fusable(sim, machine):
            self._entry = self._run_fused(sim, machine)
        else:
            self._entry = sim.schedule(self.period, self._tick)

    def _fusable(self, sim, machine):
        """Can upcoming ticks run in the fused fast path?

        Every condition pins an assumption the fused loop bakes in:
        bounded run, no sim-category tracing (fused ticks skip the
        dispatch instants), exactly one subscriber and it is the
        *unmodified* goal-controller hook over the unmodified supply/
        predictor types, a plain machine whose cached power is clean
        and whose open journal segment will keep merging, and an ideal
        supply with no note_power/recover hooks.
        """
        if sim._fuse_until is None or sim._trace is not None:
            return False
        subs = self.subscribers
        if len(subs) != 1:
            return False
        callback = subs[0]
        supply = machine.supply
        ctrl = getattr(callback, "__self__", None)
        if ctrl is None:
            return False
        key = (callback, supply, ctrl.supply, ctrl.predictor)
        if key != self._fuse_key:
            self._fuse_key = key
            self._fuse_static = self._fuse_static_ok(callback, ctrl, machine,
                                                     supply)
        if not self._fuse_static:
            return False
        predictor = ctrl.predictor
        if ctrl.running and (predictor.smoothed_watts is None
                             or ctrl.goal_time is None):
            return False
        if machine._power_dirty:
            return False
        if type(supply) is Battery and supply.drawn >= supply.capacity:
            return False
        journal = machine._journal
        if len(journal) <= machine._fold_index:
            return False
        last = journal[-1]
        return (last.power == machine._power
                and last.context is machine._context
                and last.overlays is machine._overlays_snapshot
                and last.comp_powers is machine._comp_powers)

    def _fuse_static_ok(self, callback, ctrl, machine, supply):
        """Identity-stable half of :meth:`_fusable`: the subscriber is
        the unmodified goal-controller hook over unmodified supply and
        predictor types, the machine is a plain :class:`Machine` with an
        ideal supply and no note_power/recover hooks."""
        if _GOAL_SAMPLE_HOOK is None:
            _resolve_fuse_types()
        if getattr(callback, "__func__", None) is not _GOAL_SAMPLE_HOOK:
            return False
        if type(ctrl.supply) is not _SUPPLY_TYPE:
            return False
        if type(ctrl.predictor) is not _PREDICTOR_TYPE:
            return False
        if type(machine) is not Machine:
            return False
        if (machine._supply_note_power is not None
                or machine._supply_recover is not None):
            return False
        return type(supply) in (Battery, ExternalSupply)

    def _run_fused(self, sim, machine):
        """Run consecutive ticks ahead of the event loop; returns the
        pending entry for the first tick that could not be fused.

        Fuses while the next tick precedes every foreign heap event
        (strictly — at an equal instant the earlier-scheduled foreign
        event holds the FIFO tie) and does not pass the bounded-run
        horizon.  Each fused tick replays the exact per-event float
        sequence on locals: machine integration + battery drain, then
        the controller's supply/predictor update, then one sequence
        number for the tick it would have scheduled.  A battery
        reaching exhaustion ends the batch so the driving loop observes
        it at the same instant the per-event path would.
        """
        heap = sim._heap
        cancelled = sim._cancelled
        while heap and cancelled and heap[0][1] in cancelled:
            cancelled.discard(heapq.heappop(heap)[1])
        fuse_until = sim._fuse_until
        top = heap[0][0] if heap else None
        # One comparison per tick: a foreign event inside the horizon
        # bounds strictly (the FIFO tie goes to it); otherwise the
        # horizon bounds inclusively, expressed as a strict bound one
        # ulp past it.
        if top is not None and top <= fuse_until:
            limit = top
        else:
            limit = math.nextafter(fuse_until, math.inf)
        period = self.period
        t = sim.now
        next_t = t + period
        controller = self.subscribers[0].__self__

        seq = sim._next_seq
        last_update = machine._last_update
        energy_total = machine.energy_total
        watts = machine._power
        supply = machine.supply
        drawn = supply.drawn
        is_battery = type(supply) is Battery
        capacity = supply.capacity if is_battery else 0.0
        sample_t = self._last_sample_time
        running = controller.running
        if running:
            goal_time = controller.goal_time
            halflife_fraction = controller.predictor.halflife_fraction
            consumed = controller.supply.consumed
            smoothed = controller.predictor.smoothed_watts
            samples = controller.predictor.samples_seen

        fused = 0
        if running and is_battery:
            # The dominant shape (goal run on a battery), with the
            # per-tick mode branches hoisted out of the loop.
            while next_t < limit:
                # Machine.advance() at next_t: merge-extend + drain.
                energy = watts * (next_t - last_update)
                last_update = next_t
                energy_total += energy
                drained = drawn + energy
                drawn = capacity if capacity <= drained else drained
                dt = next_t - sample_t
                sample_t = next_t
                # EnergySupply.on_sample + DemandPredictor.update.
                consumed += watts * dt
                samples += 1
                remaining = goal_time - next_t
                if remaining < 0.0:
                    remaining = 0.0
                halflife = halflife_fraction * remaining
                if halflife <= 0.0:
                    alpha = 0.0
                else:
                    alpha = 0.5 ** (dt / halflife)
                smoothed = (1.0 - alpha) * watts + alpha * smoothed
                seq += 1  # the schedule() this tick would have issued
                fused += 1
                t = next_t
                next_t = t + period
                if drawn >= capacity:
                    break
        else:
            while next_t < limit:
                energy = watts * (next_t - last_update)
                last_update = next_t
                energy_total += energy
                if is_battery:
                    drained = drawn + energy
                    drawn = capacity if capacity <= drained else drained
                else:
                    drawn += energy
                dt = next_t - sample_t
                sample_t = next_t
                if running:
                    consumed += watts * dt
                    samples += 1
                    remaining = goal_time - next_t
                    if remaining < 0.0:
                        remaining = 0.0
                    halflife = halflife_fraction * remaining
                    if halflife <= 0.0:
                        alpha = 0.0
                    else:
                        alpha = 0.5 ** (dt / halflife)
                    smoothed = (1.0 - alpha) * watts + alpha * smoothed
                seq += 1
                fused += 1
                t = next_t
                next_t = t + period
                if is_battery and drawn >= capacity:
                    break

        if fused:
            sim.now = t
            sim._next_seq = seq
            machine._last_update = t
            machine.energy_total = energy_total
            supply.drawn = drawn
            machine._journal[-1].t1 = t
            self._last_sample_time = t
            if running:
                controller.supply.consumed = consumed
                predictor = controller.predictor
                predictor.smoothed_watts = smoothed
                predictor.samples_seen = samples
        return sim.schedule(period, self._tick)

    # ------------------------------------------------------------------
    # snapshot protocol (repro.snapshot)
    # ------------------------------------------------------------------
    def __snapshot__(self, ctx):
        ctx.claim(self._entry, "tick")
        return {
            "running": self._running,
            "last_power": self.last_power,
            "last_sample_time": self._last_sample_time,
        }

    def __restore__(self, state, ctx):
        # Subscribers are re-wired by whoever subscribed (the goal
        # controller's __restore__), not serialized as callables.
        self._running = bool(state["running"])
        self.last_power = state["last_power"]
        self._last_sample_time = state["last_sample_time"]
        for when, seq, kind in ctx.events():
            if kind != "tick":
                raise ValueError(f"unexpected monitor event kind {kind!r}")
            self._entry = ctx.push(when, seq, self._tick)
