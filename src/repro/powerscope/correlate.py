"""PowerScope's offline correlation stage (paper Section 2.1).

Data collection yields a sequence of current levels and a correlated
sequence of PC/PID samples.  This stage merges the two, pairing each
current reading with the simultaneous PC/PID sample, converting current
to energy (the input voltage is well-controlled, so energy per sample =
V * I * dt) and accumulating per-process / per-procedure totals.
"""

from __future__ import annotations

from repro.powerscope.profile import EnergyProfile

__all__ = ["correlate", "CorrelationError"]


class CorrelationError(Exception):
    """The two sample sequences cannot be merged."""


def correlate(current_samples, pcpid_samples, voltage, period=None):
    """Build an :class:`~repro.powerscope.profile.EnergyProfile`.

    Parameters
    ----------
    current_samples:
        Sequence of :class:`~repro.powerscope.samples.CurrentSample`.
    pcpid_samples:
        Sequence of :class:`~repro.powerscope.samples.PcPidSample`,
        index-correlated with ``current_samples`` (the multimeter's
        trigger line guarantees pairing).
    voltage:
        Input voltage of the profiling computer.
    period:
        Sampling period; inferred from timestamps when omitted.
    """
    if len(current_samples) != len(pcpid_samples):
        raise CorrelationError(
            f"sample sequences differ in length: {len(current_samples)} current "
            f"vs {len(pcpid_samples)} pc/pid"
        )
    profile = EnergyProfile()
    if not current_samples:
        return profile
    if period is None:
        if len(current_samples) > 1:
            span = current_samples[-1].time - current_samples[0].time
            period = span / (len(current_samples) - 1)
        else:
            raise CorrelationError("cannot infer period from a single sample")
    if period <= 0:
        raise CorrelationError(f"non-positive sampling period {period}")
    for current, pcpid in zip(current_samples, pcpid_samples):
        if abs(current.time - pcpid.time) > period / 2:
            raise CorrelationError(
                f"samples desynchronized at t={current.time:.6f} "
                f"vs t={pcpid.time:.6f}"
            )
        joules = voltage * current.amps * period
        profile.record(pcpid.process, pcpid.procedure, period, joules)
    profile.sample_count = len(current_samples)
    profile.elapsed = len(current_samples) * period
    return profile
