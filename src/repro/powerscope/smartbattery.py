"""SmartBattery-style power measurement (paper Section 5.1.1).

The prototype measured power with external multimeter hardware, which
the paper acknowledges is not portable.  It proposes the SmartBattery
API (being standardized in ACPI at the time) as the deployed
measurement source: on-board gauges such as the DS2437 provide power
readings at the required frequency for under 10 mW — but with coarser
resolution and quantization than a bench multimeter.

:class:`SmartBatteryGauge` models that source: readings are quantized
to a configurable resolution, low-pass filtered by the gauge's own
averaging window, and published at a slower rate.  It exposes the same
subscriber interface as :class:`~repro.powerscope.online.OnlinePowerMonitor`,
so the goal-directed controller runs unmodified on either — letting the
reproduction quantify how much the coarse readings the paper expected
in deployment would have cost (see ``benchmarks/test_ablation_gauge.py``).
"""

from __future__ import annotations

import hashlib
import math

__all__ = ["SmartBatteryGauge", "GAUGE_OVERHEAD_W"]

# Paper: "Several SmartBattery solutions can provide power measurements
# at the frequency we require using less than 10 mW".
GAUGE_OVERHEAD_W = 0.010


class SmartBatteryGauge:
    """A coarse on-board power gauge with the online-monitor interface.

    Parameters
    ----------
    machine:
        Machine whose draw is gauged.
    period:
        Publication period; gauges report slower than bench meters
        (default 1 s vs the multimeter's 100 ms).
    resolution_w:
        Reading quantization in watts (DS2437-class parts resolve
        current to ~0.25 % of full scale; 0.25 W is conservative).
    averaging_window:
        Number of internal samples the gauge averages per reading.
    model_overhead:
        Charge the gauge's own draw to the machine.
    noise_w:
        Uniform measurement-noise amplitude: each reading is perturbed
        by a deterministic draw from ``[-noise_w, +noise_w]`` before
        quantization (0.0 = the ideal gauge).  Noise is a pure function
        of ``(noise_seed, reading index)``, so replays and forks see
        identical readings without any hidden RNG state.
    noise_seed:
        Seed for the noise stream; vary it per device.
    """

    def __init__(self, machine, period=1.0, resolution_w=0.25,
                 averaging_window=4, model_overhead=False,
                 noise_w=0.0, noise_seed=0):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if resolution_w <= 0:
            raise ValueError(f"resolution must be positive, got {resolution_w}")
        if averaging_window < 1:
            raise ValueError(
                f"averaging window must be >= 1, got {averaging_window}"
            )
        if noise_w < 0:
            raise ValueError(f"noise_w must be >= 0, got {noise_w}")
        self.machine = machine
        self.sim = machine.sim
        self.period = period
        self.resolution_w = resolution_w
        self.averaging_window = averaging_window
        self.noise_w = noise_w
        self.noise_seed = noise_seed
        self.subscribers = []
        # Per-internal-sample hooks ``hook(now, watts)``: the calibrator
        # folds nominal utilization at the gauge's own instants so its
        # regressors see exactly the waveform the readings averaged.
        self.sample_hooks = []
        self.readings = 0
        self.last_power = 0.0
        self._running = False
        self._window = []
        self._last_publish = None
        self._entry = None
        if model_overhead:
            from repro.hardware.component import PowerComponent

            machine.attach(
                PowerComponent("smartbattery-gauge", {"on": GAUGE_OVERHEAD_W}, "on")
            )

    # -- OnlinePowerMonitor-compatible surface ---------------------------
    def subscribe(self, callback):
        """Register ``callback(time, watts, dt)`` per published reading."""
        self.subscribers.append(callback)

    def start(self):
        """Begin sampling and publishing readings."""
        if self._running:
            return
        self._running = True
        self._last_publish = self.sim.now
        self._entry = self.sim.schedule(
            self.period / self.averaging_window, self._sample
        )

    def stop(self):
        """Stop publishing readings; the pending tick is cancelled."""
        if not self._running:
            return
        self._running = False
        if self._entry is not None:
            self.sim.cancel(self._entry)
            self._entry = None

    # -- internals --------------------------------------------------------
    def _quantize(self, watts):
        # Half-up, not banker's rounding: a mean landing exactly on a
        # step boundary must quantize the same way every time, not
        # flip-flop with the parity of the step index.
        steps = math.floor(watts / self.resolution_w + 0.5)
        return steps * self.resolution_w

    def _noise(self, index):
        """Deterministic uniform draw in [-noise_w, +noise_w] per reading."""
        if self.noise_w == 0.0:
            return 0.0
        key = f"{self.noise_seed}/{index}".encode("utf-8")
        digest = hashlib.sha256(key).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return (2.0 * unit - 1.0) * self.noise_w

    def _sample(self, _time):
        if not self._running:
            return
        self.machine.advance()
        power = self.machine.power
        self._window.append(power)
        for hook in self.sample_hooks:
            hook(self.sim.now, power)
        if len(self._window) >= self.averaging_window:
            mean = sum(self._window) / len(self._window)
            self._window = []
            reading = self._quantize(mean + self._noise(self.readings))
            # A charging (or noise-underflowed) interval reads as zero
            # draw: the gauge reports consumption, never charge.
            reading = max(0.0, reading)
            now = self.sim.now
            dt = now - self._last_publish
            self._last_publish = now
            self.last_power = reading
            self.readings += 1
            for callback in self.subscribers:
                callback(now, reading, dt)
        self._entry = self.sim.schedule(
            self.period / self.averaging_window, self._sample
        )
