"""SmartBattery-style power measurement (paper Section 5.1.1).

The prototype measured power with external multimeter hardware, which
the paper acknowledges is not portable.  It proposes the SmartBattery
API (being standardized in ACPI at the time) as the deployed
measurement source: on-board gauges such as the DS2437 provide power
readings at the required frequency for under 10 mW — but with coarser
resolution and quantization than a bench multimeter.

:class:`SmartBatteryGauge` models that source: readings are quantized
to a configurable resolution, low-pass filtered by the gauge's own
averaging window, and published at a slower rate.  It exposes the same
subscriber interface as :class:`~repro.powerscope.online.OnlinePowerMonitor`,
so the goal-directed controller runs unmodified on either — letting the
reproduction quantify how much the coarse readings the paper expected
in deployment would have cost (see ``benchmarks/test_ablation_gauge.py``).
"""

from __future__ import annotations

__all__ = ["SmartBatteryGauge", "GAUGE_OVERHEAD_W"]

# Paper: "Several SmartBattery solutions can provide power measurements
# at the frequency we require using less than 10 mW".
GAUGE_OVERHEAD_W = 0.010


class SmartBatteryGauge:
    """A coarse on-board power gauge with the online-monitor interface.

    Parameters
    ----------
    machine:
        Machine whose draw is gauged.
    period:
        Publication period; gauges report slower than bench meters
        (default 1 s vs the multimeter's 100 ms).
    resolution_w:
        Reading quantization in watts (DS2437-class parts resolve
        current to ~0.25 % of full scale; 0.25 W is conservative).
    averaging_window:
        Number of internal samples the gauge averages per reading.
    model_overhead:
        Charge the gauge's own draw to the machine.
    """

    def __init__(self, machine, period=1.0, resolution_w=0.25,
                 averaging_window=4, model_overhead=False):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if resolution_w <= 0:
            raise ValueError(f"resolution must be positive, got {resolution_w}")
        if averaging_window < 1:
            raise ValueError(
                f"averaging window must be >= 1, got {averaging_window}"
            )
        self.machine = machine
        self.sim = machine.sim
        self.period = period
        self.resolution_w = resolution_w
        self.averaging_window = averaging_window
        self.subscribers = []
        self.readings = 0
        self.last_power = 0.0
        self._running = False
        self._window = []
        self._last_publish = None
        self._entry = None
        if model_overhead:
            from repro.hardware.component import PowerComponent

            machine.attach(
                PowerComponent("smartbattery-gauge", {"on": GAUGE_OVERHEAD_W}, "on")
            )

    # -- OnlinePowerMonitor-compatible surface ---------------------------
    def subscribe(self, callback):
        """Register ``callback(time, watts, dt)`` per published reading."""
        self.subscribers.append(callback)

    def start(self):
        """Begin sampling and publishing readings."""
        if self._running:
            return
        self._running = True
        self._last_publish = self.sim.now
        self._entry = self.sim.schedule(
            self.period / self.averaging_window, self._sample
        )

    def stop(self):
        """Stop publishing readings; the pending tick is cancelled."""
        if not self._running:
            return
        self._running = False
        if self._entry is not None:
            self.sim.cancel(self._entry)
            self._entry = None

    # -- internals --------------------------------------------------------
    def _quantize(self, watts):
        steps = round(watts / self.resolution_w)
        return steps * self.resolution_w

    def _sample(self, _time):
        if not self._running:
            return
        self.machine.advance()
        self._window.append(self.machine.power)
        if len(self._window) >= self.averaging_window:
            mean = sum(self._window) / len(self._window)
            self._window = []
            reading = self._quantize(mean)
            now = self.sim.now
            dt = now - self._last_publish
            self._last_publish = now
            self.last_power = reading
            self.readings += 1
            for callback in self.subscribers:
                callback(now, reading, dt)
        self._entry = self.sim.schedule(
            self.period / self.averaging_window, self._sample
        )
