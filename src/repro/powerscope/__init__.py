"""PowerScope: statistical-sampling energy profiler (paper Section 2.1).

Collection (:class:`Multimeter` + :class:`SystemMonitor`) produces
correlated current and PC/PID sample sequences; the offline stage
(:func:`correlate`) merges them into an :class:`EnergyProfile`; and
:func:`render_profile` formats the Figure 2-style tables.  The
:class:`OnlinePowerMonitor` is the 100 ms on-line variant feeding
goal-directed adaptation (Section 5).
"""

from repro.powerscope.correlate import CorrelationError, correlate
from repro.powerscope.diff import ProfileDelta, diff_profiles, render_diff
from repro.powerscope.multimeter import Multimeter, SystemMonitor
from repro.powerscope.online import OnlinePowerMonitor
from repro.powerscope.phases import (
    fold_phase_energy,
    machine_phase_energy,
    segments_from_journal,
    spans_to_segments,
)
from repro.powerscope.profile import EnergyProfile, ProfileEntry
from repro.powerscope.smartbattery import GAUGE_OVERHEAD_W, SmartBatteryGauge
from repro.powerscope.report import render_process_detail, render_profile
from repro.powerscope.samples import CurrentSample, PcPidSample

__all__ = [
    "Multimeter",
    "SystemMonitor",
    "OnlinePowerMonitor",
    "SmartBatteryGauge",
    "GAUGE_OVERHEAD_W",
    "CurrentSample",
    "PcPidSample",
    "EnergyProfile",
    "ProfileEntry",
    "correlate",
    "CorrelationError",
    "render_profile",
    "render_process_detail",
    "ProfileDelta",
    "diff_profiles",
    "render_diff",
    "profile_run",
    "fold_phase_energy",
    "machine_phase_energy",
    "segments_from_journal",
    "spans_to_segments",
]


def profile_run(machine, until, rate_hz=600.0, seed=0, detail_process=None,
                eager=False):
    """Convenience: profile a machine while running its simulator.

    Starts a multimeter + system monitor pair, runs the simulation to
    ``until``, and returns the correlated :class:`EnergyProfile`.
    ``eager=True`` schedules one event per sample (the historical
    path); the default synthesizes the identical sample streams lazily
    from the machine's segment journal.
    """
    monitor = SystemMonitor(machine, seed=seed)
    meter = Multimeter(machine, rate_hz=rate_hz, monitor=monitor, eager=eager)
    meter.start()
    machine.sim.run(until=until)
    meter.stop()
    machine.advance()
    return meter.profile()
