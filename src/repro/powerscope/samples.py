"""Sample records produced during PowerScope data collection.

The collection stage produces two correlated sequences (paper Figure 1):
current levels from the digital multimeter, and program-counter /
process-id samples from the system monitor on the profiling computer.
They are merged offline by :mod:`repro.powerscope.correlate`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CurrentSample", "PcPidSample"]


@dataclass(frozen=True)
class CurrentSample:
    """One multimeter reading: instantaneous current at ``time``."""

    time: float
    amps: float


@dataclass(frozen=True)
class PcPidSample:
    """One system-monitor reading: what code was executing at ``time``.

    ``process`` plays the role of the PID (resolved to a name, as the
    offline stage would resolve PIDs via /proc), and ``procedure`` the
    role of the program counter resolved through symbol tables.
    """

    time: float
    process: str
    procedure: str
