"""The digital multimeter and system monitor of PowerScope's collection
stage (paper Figure 1).

A Hewlett-Packard 3458a sampled the profiling computer's external
current at roughly 600 Hz; each reading also triggered the system
monitor on the profiling computer to record the program counter and
process id of the executing code.  Here the multimeter reads the
simulated machine's instantaneous current and the system monitor reads
the machine's attribution context — including the interrupt overlay,
which it resolves probabilistically with a seeded RNG exactly the way a
hardware sampler would catch the interrupt handler some fraction of the
time.
"""

from __future__ import annotations

import random

from repro.powerscope.samples import CurrentSample, PcPidSample

__all__ = ["Multimeter", "SystemMonitor"]


class SystemMonitor:
    """Samples the (process, procedure) executing on the machine."""

    def __init__(self, machine, seed=0):
        self.machine = machine
        self.samples = []
        self._rng = random.Random(seed)

    def sample(self):
        """Record one PC/PID sample at the current instant."""
        machine = self.machine
        # Resolve overlays (asynchronous interrupt handlers) the way a
        # real sampler would: with probability equal to the overlay's
        # share of wall time, the sample lands in the handler.
        draw = self._rng.random()
        cumulative = 0.0
        process, procedure = machine.context
        for fraction, ov_process, ov_procedure in machine._overlays.values():
            cumulative += fraction
            if draw < cumulative:
                process, procedure = ov_process, ov_procedure
                break
        record = PcPidSample(machine.sim.now, process, procedure)
        self.samples.append(record)
        return record


class Multimeter:
    """Periodic current sampler driving the system-monitor trigger line.

    Parameters
    ----------
    machine:
        Machine whose external current input is measured.
    rate_hz:
        Sampling frequency (paper: approximately 600 Hz).
    monitor:
        Optional :class:`SystemMonitor` triggered on every reading.
    """

    def __init__(self, machine, rate_hz=600.0, monitor=None):
        if rate_hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {rate_hz}")
        self.machine = machine
        self.sim = machine.sim
        self.period = 1.0 / rate_hz
        self.monitor = monitor
        self.samples = []
        self._running = False

    def start(self):
        """Begin sampling at the configured rate."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(self.period, self._tick)

    def stop(self):
        """Stop sampling (in-flight samples are kept)."""
        self._running = False

    def _tick(self, _time):
        if not self._running:
            return
        # Integrate energy up to this instant so `power` reflects any
        # piecewise-constant segment boundary exactly at the sample.
        self.machine.advance()
        self.samples.append(CurrentSample(self.sim.now, self.machine.current))
        if self.monitor is not None:
            self.monitor.sample()
        self.sim.schedule(self.period, self._tick)

    @property
    def sample_count(self):
        """Number of current samples collected so far."""
        return len(self.samples)
