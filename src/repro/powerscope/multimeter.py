"""The digital multimeter and system monitor of PowerScope's collection
stage (paper Figure 1).

A Hewlett-Packard 3458a sampled the profiling computer's external
current at roughly 600 Hz; each reading also triggered the system
monitor on the profiling computer to record the program counter and
process id of the executing code.  Here the multimeter reads the
simulated machine's instantaneous current and the system monitor reads
the machine's attribution context — including the interrupt overlay,
which it resolves probabilistically with a seeded RNG exactly the way a
hardware sampler would catch the interrupt handler some fraction of the
time.

Lazy sampling
-------------
The power signal is piecewise constant, so scheduling one simulator
event per sample (~600/s) buys nothing: every tick between change
points reads the same value.  By default the multimeter therefore
schedules *no* events at all.  It pins the machine's segment journal at
:meth:`Multimeter.start`; :meth:`Multimeter.stop` merely freezes the
sampling horizon, and the pending window is consumed by whichever
reader comes first.  Reading :attr:`Multimeter.samples` replays the
journal to synthesize the exact sample stream the eager sampler would
have produced: the same sample instants (the same floating-point
accumulation of the period), the same current values (the journal
stores the cached power), and the same seeded RNG draw order for
overlay resolution — bit-identical, as the golden tests assert.
Calling :meth:`Multimeter.profile` instead folds the journal straight
into an :class:`EnergyProfile` without materializing per-sample records
— still drawing the RNG per sample instant, still bit-identical, but an
order of magnitude cheaper on long runs.  Pass ``eager=True`` to keep
the historical one-event-per-sample path for A/B comparison;
``python -m repro bench`` times the two against each other.

One convention is worth stating: a lazy sample falling exactly on a
change instant reads the *new* power (segments are half-open
``[t0, t1)``), whereas the eager path's outcome depends on event
insertion order.  Sample grids accumulate a binary-float period, so
exact collisions with workload event times do not occur in practice.
"""

from __future__ import annotations

import random

from repro.powerscope.correlate import CorrelationError, correlate
from repro.powerscope.profile import EnergyProfile, ProfileEntry
from repro.powerscope.samples import CurrentSample, PcPidSample

__all__ = ["Multimeter", "SystemMonitor"]


class SystemMonitor:
    """Samples the (process, procedure) executing on the machine."""

    def __init__(self, machine, seed=0):
        self.machine = machine
        self._samples = []
        self._rng = random.Random(seed)
        self._meter = None  # set when attached to a Multimeter

    @property
    def samples(self):
        """All PC/PID samples; synthesizes pending lazy samples first."""
        if self._meter is not None:
            self._meter.sync()
        return self._samples

    def sample(self):
        """Record one PC/PID sample at the current instant."""
        machine = self.machine
        return self.sample_at(
            machine.sim.now, machine.context, machine.overlay_snapshot()
        )

    def sample_at(self, time, context, overlays):
        """Record one sample against an explicit state snapshot.

        Used both live (from :meth:`sample`) and by the lazy replay;
        both paths draw the RNG once per sample and resolve overlays
        identically, which is what keeps the two modes bit-identical.
        """
        # Resolve overlays (asynchronous interrupt handlers) the way a
        # real sampler would: with probability equal to the overlay's
        # share of wall time, the sample lands in the handler.
        draw = self._rng.random()
        cumulative = 0.0
        process, procedure = context
        for fraction, ov_process, ov_procedure in overlays:
            cumulative += fraction
            if draw < cumulative:
                process, procedure = ov_process, ov_procedure
                break
        record = PcPidSample(time, process, procedure)
        self._samples.append(record)
        return record


class Multimeter:
    """Current sampler driving the system-monitor trigger line.

    Parameters
    ----------
    machine:
        Machine whose external current input is measured.
    rate_hz:
        Sampling frequency (paper: approximately 600 Hz).
    monitor:
        Optional :class:`SystemMonitor` triggered on every reading.
    eager:
        ``True`` schedules one simulator event per sample (the
        historical path); the default replays the machine's segment
        journal lazily and schedules nothing.
    """

    def __init__(self, machine, rate_hz=600.0, monitor=None, eager=False):
        if rate_hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {rate_hz}")
        self.machine = machine
        self.sim = machine.sim
        self.period = 1.0 / rate_hz
        self.monitor = monitor
        self.eager = eager
        self._samples = []
        self._running = False
        self._entry = None       # eager: the pending tick's heap entry
        self._next_t = None      # lazy: next sample instant
        self._cursor = 0         # lazy: index into the pinned journal
        self._pinned = False
        self._stop_horizon = None  # lazy: frozen horizon of a stopped window
        tracer = getattr(self.sim, "tracer", None)
        self._trace = tracer.gate("powerscope") if tracer is not None else None
        if monitor is not None:
            monitor._meter = self

    def start(self):
        """Begin sampling at the configured rate."""
        if self._running:
            return
        self._running = True
        if self._trace is not None:
            self._trace.instant(
                self.sim.now, "powerscope", "meter.start", track="multimeter",
                args={"rate_hz": 1.0 / self.period, "eager": self.eager},
            )
        if self.eager:
            self._entry = self.sim.schedule(self.period, self._tick)
            return
        self.machine.advance()
        if self._stop_horizon is not None:
            # A previous start/stop window is still pending; materialize
            # it so the new window starts from a clean cursor.
            self._synthesize(self._stop_horizon)
            self._stop_horizon = None
        if not self._pinned:
            self.machine.pin_journal()
            self._pinned = True
        self._cursor = max(0, len(self.machine.journal) - 1)
        self._next_t = self.sim.now + self.period

    def stop(self):
        """Stop sampling; samples up to this instant are kept.

        In eager mode the pending tick is cancelled, so a stopped meter
        leaves no live callback in the event heap (and a subsequent
        :meth:`start` cannot double-schedule).  In lazy mode the sampling
        horizon is frozen at the current instant but nothing is
        synthesized yet: the pending window is consumed — and the journal
        pin released — by whichever reader comes first, the materializing
        :attr:`samples` or the folding :meth:`profile`.
        """
        if not self._running:
            return
        if self.eager:
            if self._entry is not None:
                self.sim.cancel(self._entry)
                self._entry = None
        else:
            self.machine.advance()
            self._stop_horizon = self.sim.now
        self._running = False
        if self._trace is not None:
            self._trace.instant(
                self.sim.now, "powerscope", "meter.stop", track="multimeter",
                args={"materialized": len(self._samples)},
            )

    def _release_pin(self):
        if self._pinned:
            self.machine.unpin_journal()
            self._pinned = False

    def sync(self):
        """Materialize lazy samples up to the current instant.

        No-op in eager mode; reading :attr:`samples` /
        :attr:`sample_count` calls this implicitly.  On a stopped meter
        this consumes the pending window and releases the journal pin.
        """
        if self.eager:
            return
        if self._running:
            self.machine.advance()
            self._synthesize(self.sim.now)
        elif self._stop_horizon is not None:
            self._synthesize(self._stop_horizon)
            self._stop_horizon = None
            self._release_pin()

    def _tick(self, _time):
        if not self._running:
            return
        # Integrate energy up to this instant so `power` reflects any
        # piecewise-constant segment boundary exactly at the sample.
        self.machine.advance()
        self._samples.append(CurrentSample(self.sim.now, self.machine.current))
        if self.monitor is not None:
            self.monitor.sample()
        self._entry = self.sim.schedule(self.period, self._tick)

    def _synthesize(self, horizon):
        """Replay journal segments into sample records up to ``horizon``.

        Sample instants accumulate ``t += period`` exactly as the eager
        path's chained ``schedule(period, ...)`` calls do, so the two
        modes produce identical floating-point timestamps.
        """
        journal = self.machine.journal
        count = len(journal)
        if count == 0 or self._next_t is None:
            return
        voltage = self.machine.voltage
        monitor = self.monitor
        samples = self._samples
        period = self.period
        t = self._next_t
        i = min(self._cursor, count - 1)
        while t <= horizon:
            while i + 1 < count and journal[i].t1 <= t:
                i += 1
            segment = journal[i]
            if t > segment.t1:
                break  # journal does not cover t yet
            samples.append(CurrentSample(t, segment.power / voltage))
            if monitor is not None:
                monitor.sample_at(t, segment.context, segment.overlays)
            t = t + period
        self._next_t = t
        self._cursor = i

    def profile(self):
        """Build the correlated :class:`EnergyProfile` for this meter.

        In eager mode this is exactly ``correlate(samples, ...)``.  In
        lazy mode the pending window folds straight from the journal
        without materializing per-sample records: each sample instant
        still draws the monitor RNG once (attribution is statistical),
        but the per-entry accumulation batches all samples of a segment
        together.  Within a segment every sample adds the same
        ``(period, joules)`` pair, and floating-point accumulation of a
        constant is a function only of the addend count, so the result
        is bit-identical to correlating the materialized streams — the
        golden tests assert this.

        Folding consumes the pending window: afterwards
        :attr:`samples` only holds records that were materialized
        before this call.
        """
        monitor = self.monitor
        if monitor is None:
            raise CorrelationError(
                "profile() requires a SystemMonitor attached to the meter"
            )
        voltage = self.machine.voltage
        period = self.period
        if self.eager:
            return correlate(
                self._samples, monitor._samples, voltage, period=period
            )
        current_samples = self._samples
        pcpid_samples = monitor._samples
        if len(current_samples) != len(pcpid_samples):
            raise CorrelationError(
                f"sample sequences differ in length: {len(current_samples)} "
                f"current vs {len(pcpid_samples)} pc/pid"
            )
        prof = EnergyProfile()
        record = prof.record
        for current, pcpid in zip(current_samples, pcpid_samples):
            record(
                pcpid.process, pcpid.procedure, period,
                voltage * current.amps * period,
            )
        total = len(current_samples)
        if self._running:
            self.machine.advance()
            total += self._fold_pending(prof, self.sim.now)
        elif self._stop_horizon is not None:
            total += self._fold_pending(prof, self._stop_horizon)
            self._stop_horizon = None
            self._release_pin()
        prof.sample_count = total
        prof.elapsed = total * period
        if self._trace is not None:
            self._trace.instant(
                self.sim.now, "powerscope", "profile.fold", track="multimeter",
                args={"samples": total, "energy_j": prof.total_energy},
            )
        return prof

    def _fold_pending(self, prof, horizon):
        """Fold un-materialized samples up to ``horizon`` into ``prof``.

        Walks the journal exactly like :meth:`_synthesize` — same sample
        instants, same RNG draw per sample — but accumulates counts per
        (process, procedure) bucket and flushes them segment by segment,
        preserving the eager path's entry insertion order and per-entry
        addition order.  Returns the number of samples folded.
        """
        journal = self.machine.journal
        count = len(journal)
        if count == 0 or self._next_t is None:
            return 0
        rng_random = self.monitor._rng.random
        voltage = self.machine.voltage
        period = self.period
        t = self._next_t
        i = min(self._cursor, count - 1)
        total = 0
        seg = None
        joules = 0.0
        context = None
        overlays = ()
        counts = {}
        while t <= horizon:
            while i + 1 < count and journal[i].t1 <= t:
                i += 1
            segment = journal[i]
            if t > segment.t1:
                break  # journal does not cover t yet
            if segment is not seg:
                if counts:
                    _flush_counts(prof, counts, period, joules)
                    counts = {}
                seg = segment
                # Same float op order as CurrentSample + correlate:
                # amps = power / voltage, joules = voltage * amps * period.
                joules = voltage * (segment.power / voltage) * period
                context = segment.context
                overlays = segment.overlays
            draw = rng_random()
            bucket = context
            if overlays:
                cumulative = 0.0
                for fraction, ov_process, ov_procedure in overlays:
                    cumulative += fraction
                    if draw < cumulative:
                        bucket = (ov_process, ov_procedure)
                        break
            counts[bucket] = counts.get(bucket, 0) + 1
            total += 1
            t = t + period
        if counts:
            _flush_counts(prof, counts, period, joules)
        self._next_t = t
        self._cursor = i
        return total

    @property
    def samples(self):
        """Current samples collected so far (synthesized on demand)."""
        self.sync()
        return self._samples

    @property
    def sample_count(self):
        """Number of current samples collected so far."""
        return len(self.samples)


def _flush_counts(prof, counts, period, joules):
    """Credit one segment's bucket counts to the profile.

    Buckets flush in first-hit order (``counts`` is insertion-ordered),
    so new entries appear in the same order the eager path would create
    them; the repeated same-value adds reproduce its accumulator values
    bit for bit.
    """
    processes = prof.processes
    procedures = prof.procedures
    for (process, procedure), n in counts.items():
        entry = processes.get(process)
        if entry is None:
            entry = processes[process] = ProfileEntry(process)
        detail = procedures.get(process)
        if detail is None:
            detail = procedures[process] = {}
        proc_entry = detail.get(procedure)
        if proc_entry is None:
            proc_entry = detail[procedure] = ProfileEntry(procedure)
        cs = entry.cpu_seconds
        ej = entry.energy_joules
        pcs = proc_entry.cpu_seconds
        pej = proc_entry.energy_joules
        for _ in range(n):
            cs += period
            ej += joules
            pcs += period
            pej += joules
        entry.cpu_seconds = cs
        entry.energy_joules = ej
        proc_entry.cpu_seconds = pcs
        proc_entry.energy_joules = pej
