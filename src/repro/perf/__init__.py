"""Micro-benchmark harness for the reproduction's hot paths.

``python -m repro bench`` times the discrete-event engine, the
machine's segment-journal energy accounting, a figure cell, and the
Figure 22 long-duration run under the eager and lazy PowerScope
samplers, writing the results to ``BENCH_core.json``.  A committed
baseline plus ``--compare`` turns the same harness into a CI smoke
check that fails on large regressions (normalized by a pure-Python
calibration spin so differently-sized machines compare fairly).
"""

from repro.perf.bench import (
    BENCH_NAMES,
    compare,
    render_bench_table,
    render_comparison,
    run_benchmarks,
)

__all__ = [
    "BENCH_NAMES",
    "compare",
    "render_bench_table",
    "render_comparison",
    "run_benchmarks",
]
