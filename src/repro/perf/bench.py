"""Benchmark definitions, runner, and baseline comparison.

Each benchmark is a function returning a metrics dict that includes
``seconds`` (the min over its repeats — the noise-robust statistic).
The ``calibration`` benchmark is a fixed pure-Python spin used to
normalize timings between machines: a box that runs Python 1.4x slower
runs every benchmark about 1.4x slower, so CI compares the *ratio* to
calibration rather than raw seconds.

The headline benchmark is ``fig22_longduration``: the Figure 22 bursty
goal-directed run with a 600 Hz PowerScope collection attached, timed
under both the eager (one simulator event per sample) and lazy
(segment-journal fold) samplers.  It also asserts the two modes produce
bit-identical profiles, so the speedup is never bought with accuracy.
"""

from __future__ import annotations

import gc
import json
import time

__all__ = [
    "BENCH_NAMES",
    "run_benchmarks",
    "compare",
    "render_bench_table",
    "render_comparison",
    "load_results",
]

#: Calibration spin iterations — constant across quick/full so the
#: normalization is comparable between any two result files.
_CALIBRATION_ITERS = 500_000


class _BenchSupply:
    """Unlimited supply: drains are counted but never refused."""

    def __init__(self):
        self.drained = 0.0

    def drain(self, joules):
        self.drained += joules


def _best_of(fn, repeats):
    """Run ``fn`` ``repeats`` times; return (min seconds, last result)."""
    best = None
    result = None
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, result


# ----------------------------------------------------------------------
# benchmark bodies
# ----------------------------------------------------------------------
#: Sub-second benchmarks repeat at least this often: their runtime is
#: cheap but a single noisy trial would dominate a min-of-few.
_MIN_CHEAP_REPEATS = 5


def bench_calibration(quick, repeats):
    def spin():
        x = 0.0
        for k in range(_CALIBRATION_ITERS):
            x += k * 1e-9
        return x

    seconds, _ = _best_of(spin, max(repeats, _MIN_CHEAP_REPEATS))
    return {"seconds": seconds, "iterations": _CALIBRATION_ITERS}


def bench_engine_events(quick, repeats):
    """Event scheduling/dispatch throughput, with cancellation churn."""
    from repro.sim.engine import Simulator

    events = 10_000 if quick else 50_000

    def run():
        sim = Simulator()
        fired = [0]

        def cb(_t):
            fired[0] += 1

        entries = []
        for k in range(events):
            entries.append(sim.schedule((k % 97) * 1e-3, cb))
        # Cancel a tenth of them: exercises the tombstone path the
        # samplers rely on when they stop.
        for k in range(0, events, 10):
            sim.cancel(entries[k])
        sim.run()
        return fired[0]

    seconds, fired = _best_of(run, max(repeats, _MIN_CHEAP_REPEATS))
    return {
        "seconds": seconds,
        "events": events,
        "events_per_s": events / seconds if seconds else 0.0,
        "fired": fired,
    }


def bench_machine_advance(quick, repeats):
    """Energy integration: journal merge on the hot path, folds at the end.

    Advances far outnumber state changes (as in real runs, where the
    online monitor polls between context switches), so most iterations
    extend the open segment in place; every eighth toggles the CPU and
    opens a new one.  The clock is moved directly — the engine's own
    cost is measured by ``engine_events``.
    """
    from repro.hardware.component import PowerComponent
    from repro.hardware.machine import Machine
    from repro.sim.engine import Simulator

    steps = 5_000 if quick else 40_000

    def run():
        sim = Simulator()
        machine = Machine(sim, supply=_BenchSupply(), voltage=16.0)
        cpu = machine.attach(
            PowerComponent("cpu", {"idle": 1.0, "busy": 4.0}, "idle")
        )
        busy = False
        for k in range(steps):
            sim.now += 0.01
            if k % 8 == 0:
                busy = not busy
                cpu.set_state("busy" if busy else "idle")
            else:
                machine.advance()
        machine.advance()
        # Force the fold so its cost is inside the measurement.
        return machine.energy_by_process, machine.energy_total

    seconds, (_, energy_total) = _best_of(run, max(repeats, _MIN_CHEAP_REPEATS))
    return {
        "seconds": seconds,
        "advances": steps,
        "advances_per_s": steps / seconds if seconds else 0.0,
        "energy_total": energy_total,
    }


def bench_figure_cell(quick, repeats):
    """One fidelity-study cell: Figure 6 video at the combined config."""
    from repro.experiments.fidelity_study import measure_video
    from repro.workloads.videos import VIDEO_CLIPS

    clip = VIDEO_CLIPS[0]

    def run():
        return measure_video(clip, "combined")

    seconds, joules = _best_of(run, max(repeats, _MIN_CHEAP_REPEATS))
    return {"seconds": seconds, "clip": clip.name, "joules": joules}


def bench_fig22_longduration(quick, repeats):
    """Figure 22 bursty run with 600 Hz profiling: eager vs lazy sampler.

    Full mode uses the tier-2 benchmark's real trial parameters
    (1980 s goal extended by 360 s at t=720 s), where the eager sampler
    schedules and materializes ~1.4 million sample pairs; quick mode
    shrinks the goal so CI stays fast, which also shrinks the reported
    speedup (the fixed 60 s calibration probe dilutes a short run).
    """
    from repro.experiments.goal_study import run_bursty_experiment

    goal = 90.0 if quick else 1980.0
    extension = (30.0, 30.0) if quick else (720.0, 360.0)
    # The full-mode trial pair costs ~30 s; cap repeats to keep the
    # suite around a minute.
    repeats = repeats if quick else min(repeats, 2)

    def run(eager):
        return run_bursty_experiment(
            seed=1, goal_seconds=goal, extension=extension,
            profile_rate_hz=600.0, profile_eager=eager,
        )

    eager_s, eager_result = _best_of(lambda: run(True), repeats)
    lazy_s, lazy_result = _best_of(lambda: run(False), repeats)
    identical = (
        eager_result.profile.as_table() == lazy_result.profile.as_table()
    )
    return {
        # `seconds` is the lazy (default-path) time: that is what a
        # regression against the baseline should watch.
        "seconds": lazy_s,
        "eager_s": eager_s,
        "lazy_s": lazy_s,
        "speedup": eager_s / lazy_s if lazy_s else 0.0,
        "tables_identical": identical,
        "samples": lazy_result.profile.sample_count,
        "goal_seconds": goal,
    }


def bench_tracer_overhead(quick, repeats):
    """Cost of the disabled tracer on the engine + accounting hot paths.

    Runs the same scheduling/dispatch/advance workload twice: with the
    default null tracer (what every untraced run pays — the gated
    ``is not None`` checks) and with a recording :class:`Tracer`
    installed.  ``seconds`` is the *disabled* time: the overhead
    contract says instrumentation must cost (almost) nothing when off,
    and CI gates this benchmark at 3 % instead of the global threshold
    (see :data:`PER_BENCH_MAX_REGRESSION`).
    """
    from repro.hardware.component import PowerComponent
    from repro.hardware.machine import Machine
    from repro.obs.tracer import Tracer, installed
    from repro.sim.engine import Simulator

    steps = 5_000 if quick else 40_000

    def run():
        sim = Simulator()
        machine = Machine(sim, supply=_BenchSupply(), voltage=16.0)
        cpu = machine.attach(
            PowerComponent("cpu", {"idle": 1.0, "busy": 4.0}, "idle")
        )

        def toggle(k):
            def cb(_t):
                cpu.set_state("busy" if k % 2 else "idle")
            return cb

        for k in range(steps):
            sim.schedule(k * 1e-3, toggle(k) if k % 8 == 0
                         else (lambda _t: machine.advance()))
        sim.run()
        return machine.finish()

    disabled_s, _ = _best_of(run, max(repeats, _MIN_CHEAP_REPEATS))

    def traced():
        with installed(Tracer()):
            return run()

    enabled_s, _ = _best_of(traced, max(repeats, _MIN_CHEAP_REPEATS))
    return {
        # `seconds` is the disabled-path time: the 3 % CI gate watches
        # the cost instrumentation adds to *untraced* runs.
        "seconds": disabled_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "enabled_ratio": enabled_s / disabled_s if disabled_s else 0.0,
        "steps": steps,
    }


def bench_snapshot_capture(quick, repeats):
    """Cost of checkpointing the whole pulse stack mid-run.

    Capture is the hot half of lookahead (every non-hold proposal pays
    one capture), so it must stay cheap relative to a decision period.
    """
    from repro.snapshot.scenario import build_pulse_scenario
    from repro.snapshot.state import Snapshot

    count = 200 if quick else 1_000
    scenario = build_pulse_scenario().start().run(until=120.0)

    def run():
        snap = None
        for _ in range(count):
            snap = Snapshot.capture(scenario.sim)
        return snap

    seconds, snap = _best_of(run, max(repeats, _MIN_CHEAP_REPEATS))
    return {
        "seconds": seconds,
        "captures": count,
        "captures_per_s": count / seconds if seconds else 0.0,
        "payload_events": len(snap.payload["events"]),
        "payload_objects": len(snap.payload["states"]),
    }


def bench_snapshot_restore(quick, repeats):
    """Cost of rebuilding a full branch stack from one snapshot.

    Restore rebuilds the machine, journal, controller, and event heap
    from the payload — the other half of every lookahead fork and the
    warm-start path of fleet sweeps.
    """
    from repro.snapshot.scenario import build_pulse_scenario
    from repro.snapshot.state import Snapshot

    count = 20 if quick else 100
    scenario = build_pulse_scenario().start().run(until=120.0)
    snap = Snapshot.capture(scenario.sim)

    def run():
        branch = None
        for _ in range(count):
            branch = snap.restore()
        return branch

    seconds, _ = _best_of(run, max(repeats, _MIN_CHEAP_REPEATS))
    return {
        "seconds": seconds,
        "restores": count,
        "restores_per_s": count / seconds if seconds else 0.0,
    }


def bench_fork_branch(quick, repeats):
    """Pooled branch forking: the lookahead evaluator's steady state.

    Captures once, then restores into a recycled scenario over and over
    — no builder, no allocation churn.  This is the per-branch floor
    the what-if evaluator and the beam planner pay.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import NULL_TRACER
    from repro.snapshot.scenario import build_pulse_scenario
    from repro.snapshot.state import Snapshot

    count = 500 if quick else 3_000
    scenario = build_pulse_scenario().start().run(until=120.0)
    snap = Snapshot.capture(scenario.sim)
    pooled = snap.fork(lookahead=False, tracer=NULL_TRACER,
                       metrics=MetricsRegistry())

    def run():
        for _ in range(count):
            snap.fork(reuse=pooled)
        return pooled

    seconds, _ = _best_of(run, max(repeats, _MIN_CHEAP_REPEATS))
    return {
        "seconds": seconds,
        "forks": count,
        "forks_per_s": count / seconds if seconds else 0.0,
    }


def bench_cow_capture_scaling(quick, repeats):
    """Capture cost vs journal length: the copy-on-write contract.

    Builds two machines whose journals differ ~8x in segment count and
    times repeated captures of each.  With the sealed-prefix journal
    the first capture pays O(journal) once to seal it; every later
    capture copies only the open tail, so the per-capture ratio between
    the two journals should sit near 1.0 (sublinear in length), where a
    full-copy capture would sit near 8.
    """
    from repro.snapshot.scenario import build_pulse_scenario
    from repro.snapshot.state import Snapshot

    captures = 200 if quick else 1_000
    short_until, long_until = (30.0, 240.0) if quick else (30.0, 250.0)

    def timed_captures(until):
        scenario = build_pulse_scenario(
            goal_seconds=300.0, initial_energy=20_000.0,
        ).start().run(until=until)
        segments = len(scenario.machine._journal)
        # First capture seals the closed prefix (the one-time O(n)).
        Snapshot.capture(scenario.sim)

        def run():
            snap = None
            for _ in range(captures):
                snap = Snapshot.capture(scenario.sim)
            return snap

        seconds, _ = _best_of(run, max(repeats, _MIN_CHEAP_REPEATS))
        return seconds / captures, segments

    short_s, short_segments = timed_captures(short_until)
    long_s, long_segments = timed_captures(long_until)
    ratio = long_s / short_s if short_s else 0.0
    return {
        # `seconds` is the long-journal per-capture time — the one the
        # COW change is supposed to keep flat.
        "seconds": long_s,
        "short_segments": short_segments,
        "long_segments": long_segments,
        "short_capture_s": short_s,
        "long_capture_s": long_s,
        "scaling_ratio": ratio,
        "length_ratio": (
            long_segments / short_segments if short_segments else 0.0
        ),
    }


def bench_fork_lookahead(quick, repeats):
    """One full lookahead-policy goal run: fork + branch-advance bound.

    The dominant cost is the per-decision what-if evaluation (capture,
    two forks, two horizon advances); ``branches_per_s`` is the
    end-to-end throughput including the parent's own simulation.
    """
    from repro.snapshot.scenario import run_pulse_goal

    goal, energy = (90.0, 780.0) if quick else (290.0, 2_400.0)

    def run():
        return run_pulse_goal(goal_seconds=goal, initial_energy=energy,
                              lookahead=True)

    seconds, summary = _best_of(run, repeats)
    look = summary["lookahead"]
    return {
        "seconds": seconds,
        "branches": look["branches_run"],
        "branches_per_s": (
            look["branches_run"] / seconds if seconds else 0.0
        ),
        "evaluations": look["evaluations"],
        "goal_met": summary["goal_met"],
    }


def bench_calibrator_fit(quick, repeats):
    """One learned-model goal run on a miscalibrated device.

    Times the whole gauge → fold → sliding-window refit stack: at a
    0.5 s gauge period the calibrator refits twice a second, so the
    run's cost is dominated by the normal-equation solves.  Also
    reports the fit quality so a perf "win" that breaks convergence is
    visible in the detail column.
    """
    from repro.devices import DeviceProfile
    from repro.snapshot.scenario import build_pulse_scenario

    goal, energy = (120.0, 1_400.0) if quick else (300.0, 3_500.0)
    true_multipliers = {"platform": 1.15, "codec": 0.85, "radio": 1.2}
    device = DeviceProfile("bench-rig", multipliers=true_multipliers,
                           gauge_period=0.5, gauge_resolution_w=0.01)

    def run():
        scenario = build_pulse_scenario(
            goal_seconds=goal, initial_energy=energy,
            learned_model=True, device=device)
        scenario.start()
        scenario.run()
        return scenario.calibrator

    seconds, calibrator = _best_of(run, repeats)
    errors = calibrator.model.error_vs(true_multipliers)
    return {
        "seconds": seconds,
        "readings": calibrator.readings,
        "fits": calibrator.fits,
        "fits_per_s": calibrator.fits / seconds if seconds else 0.0,
        "max_error": max(errors.values()),
    }


def bench_fleet_matrix_fold(quick, repeats):
    """Fold + canonical-serialize a large synthetic fleet matrix.

    The fold is the serial tail of every fleet sweep (workers return
    rows; one process folds and byte-stabilizes the document), so its
    cost bounds how large a fleet the sweep scales to.  Rows are
    synthetic and deterministic — this isolates the fold from the
    simulations that produce real rows.
    """
    from repro.devices import DeviceProfile
    from repro.devices.fleetmatrix import FleetMatrix

    n_devices = 100 if quick else 400
    policies = ("baseline", "hysteresis=off", "lookahead=on",
                "hysteresis=off,lookahead=on")
    devices = [DeviceProfile(f"dev{k:03d}").to_dict()
               for k in range(n_devices)]
    rows = []
    for k, device in enumerate(devices):
        for p, policy in enumerate(policies):
            diverged = policy != "baseline" and (k + p) % 3 == 0
            rows.append({
                "policy": policy,
                "device": device["device_id"],
                "identical": not diverged,
                "windows": (k + p) % 5 if diverged else 0,
                "energy_delta_j": ((k * 7 + p * 13) % 100 - 50) / 10.0
                if diverged else 0.0,
                "energy_total_j": 900.0 + k + p,
                "goal_met": (k + p) % 7 != 0,
                "shape_distance": ((k + p) % 10) / 100.0,
                "first_divergence_did": k + p if diverged else None,
            })

    def fold():
        matrix = FleetMatrix("bench", {}, {}, devices, rows)
        return len(matrix.document())

    seconds, document_bytes = _best_of(
        fold, max(repeats, _MIN_CHEAP_REPEATS))
    return {
        "seconds": seconds,
        "rows": len(rows),
        "rows_per_s": len(rows) / seconds if seconds else 0.0,
        "document_bytes": document_bytes,
    }


_BENCHES = {
    "calibration": bench_calibration,
    "engine_events": bench_engine_events,
    "machine_advance": bench_machine_advance,
    "figure_cell": bench_figure_cell,
    "fig22_longduration": bench_fig22_longduration,
    "tracer_overhead": bench_tracer_overhead,
    "snapshot_capture": bench_snapshot_capture,
    "snapshot_restore": bench_snapshot_restore,
    "fork_branch": bench_fork_branch,
    "cow_capture_scaling": bench_cow_capture_scaling,
    "fork_lookahead": bench_fork_lookahead,
    "calibrator_fit": bench_calibrator_fit,
    "fleet_matrix_fold": bench_fleet_matrix_fold,
}

BENCH_NAMES = tuple(_BENCHES)


def run_benchmarks(quick=False, only=None, repeats=None):
    """Run the suite; returns the result dict (the ``BENCH_core.json`` shape).

    ``quick`` shrinks every workload for CI smoke use; ``only`` limits
    the suite by substring: each token selects every benchmark whose
    name contains it (``only=["snapshot"]`` runs both snapshot benches;
    an exact name still selects just itself).  Calibration always runs,
    since comparison needs it.  ``repeats`` overrides the default
    repeat count (1 quick, 3 full); the reported time is the min over
    repeats.
    """
    if repeats is None:
        repeats = 1 if quick else 3
    if not only:
        selected = list(BENCH_NAMES)
    else:
        selected = []
        for token in only:
            matches = [name for name in BENCH_NAMES if token in name]
            if not matches:
                raise ValueError(
                    f"no benchmark matches {token!r}; "
                    f"choose from {BENCH_NAMES}"
                )
            for name in matches:
                if name not in selected:
                    selected.append(name)
    if "calibration" not in selected:
        selected.insert(0, "calibration")
    benches = {}
    for name in selected:
        benches[name] = _BENCHES[name](quick, repeats)
    return {"version": 1, "quick": bool(quick), "repeats": repeats,
            "benches": benches}


def load_results(path):
    """Read a results file previously written by the CLI."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# baseline comparison
# ----------------------------------------------------------------------
#: Benchmarks with a tighter regression limit than the global
#: ``--max-regression``.  The disabled-tracer path is an explicit
#: overhead contract (see repro.obs.tracer), so its budget is 3 %.
PER_BENCH_MAX_REGRESSION = {
    "tracer_overhead": 0.03,
}


def compare(current, baseline, max_regression=0.25, min_speedup=None):
    """Compare a current run against a baseline run.

    Returns ``(rows, failures)``.  Each row is a dict with the raw and
    calibration-normalized ratio for one benchmark present in both
    files; ``failures`` is a list of human-readable strings, empty when
    the current run is acceptable.  A benchmark fails when its
    normalized time exceeds the baseline by more than
    ``max_regression`` (a fraction, 0.25 = 25 %); benchmarks listed in
    :data:`PER_BENCH_MAX_REGRESSION` use their tighter limit instead.
    ``min_speedup`` additionally enforces a floor on the fig22
    eager/lazy speedup, and the fig22 bit-identity flag must hold
    whenever that benchmark ran.
    """
    failures = []
    cur_benches = current.get("benches", {})
    base_benches = baseline.get("benches", {})
    per_bench = PER_BENCH_MAX_REGRESSION
    if bool(current.get("quick")) != bool(baseline.get("quick")):
        failures.append(
            "quick/full mismatch: current quick="
            f"{bool(current.get('quick'))} vs baseline quick="
            f"{bool(baseline.get('quick'))} — workloads are not comparable"
        )
    cur_cal = cur_benches.get("calibration", {}).get("seconds")
    base_cal = base_benches.get("calibration", {}).get("seconds")
    if not cur_cal or not base_cal:
        failures.append("missing calibration benchmark; cannot normalize")
        scale = 1.0
    else:
        scale = cur_cal / base_cal
    rows = []
    for name, base in base_benches.items():
        if name == "calibration" or name not in cur_benches:
            continue
        base_s = base.get("seconds")
        cur_s = cur_benches[name].get("seconds")
        if not base_s or cur_s is None:
            continue
        ratio = cur_s / (base_s * scale)
        limit = min(max_regression, per_bench.get(name, max_regression))
        regressed = ratio > 1.0 + limit
        rows.append({
            "name": name,
            "baseline_s": base_s,
            "current_s": cur_s,
            "normalized_ratio": ratio,
            "regressed": regressed,
            "limit": limit,
        })
        if regressed:
            failures.append(
                f"{name}: {ratio:.2f}x the baseline after calibration "
                f"(limit {1.0 + limit:.2f}x)"
            )
    fig22 = cur_benches.get("fig22_longduration")
    if fig22 is not None:
        if not fig22.get("tables_identical", True):
            failures.append(
                "fig22_longduration: lazy profile diverged from eager"
            )
        if min_speedup is not None and fig22.get("speedup", 0.0) < min_speedup:
            failures.append(
                f"fig22_longduration: speedup {fig22.get('speedup', 0.0):.2f}x "
                f"below the {min_speedup:.2f}x floor"
            )
    return rows, failures


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _detail(name, metrics):
    if name == "engine_events":
        return f"{metrics['events_per_s']:,.0f} events/s"
    if name == "machine_advance":
        return f"{metrics['advances_per_s']:,.0f} advances/s"
    if name == "figure_cell":
        return f"{metrics['clip']}: {metrics['joules']:.1f} J"
    if name == "fig22_longduration":
        flag = "identical" if metrics["tables_identical"] else "DIVERGED"
        return (f"eager {metrics['eager_s']:.3f}s / lazy "
                f"{metrics['lazy_s']:.3f}s = {metrics['speedup']:.2f}x, "
                f"profiles {flag}")
    if name == "tracer_overhead":
        return (f"disabled {metrics['disabled_s']:.3f}s / enabled "
                f"{metrics['enabled_s']:.3f}s "
                f"({metrics['enabled_ratio']:.2f}x when recording)")
    if name == "calibration":
        return f"{metrics['iterations']:,} iterations"
    if name == "snapshot_capture":
        return (f"{metrics['captures_per_s']:,.0f} captures/s "
                f"({metrics['payload_objects']} objects, "
                f"{metrics['payload_events']} events)")
    if name == "snapshot_restore":
        return f"{metrics['restores_per_s']:,.0f} restores/s"
    if name == "fork_branch":
        return f"{metrics['forks_per_s']:,.0f} pooled forks/s"
    if name == "cow_capture_scaling":
        return (f"{metrics['length_ratio']:.1f}x segments -> "
                f"{metrics['scaling_ratio']:.2f}x capture time "
                f"({metrics['long_segments']} segments, "
                f"{metrics['long_capture_s'] * 1e6:.0f} us/capture)")
    if name == "fork_lookahead":
        return (f"{metrics['branches']} branches, "
                f"{metrics['branches_per_s']:,.0f}/s")
    if name == "calibrator_fit":
        return (f"{metrics['fits']} fits over {metrics['readings']} "
                f"readings, {metrics['fits_per_s']:,.0f} fits/s, "
                f"max err {metrics['max_error']:.2%}")
    if name == "fleet_matrix_fold":
        return (f"{metrics['rows']} rows -> "
                f"{metrics['rows_per_s']:,.0f} rows/s "
                f"({metrics['document_bytes']:,} bytes)")
    return ""


def render_bench_table(results):
    """ASCII table of one run's timings."""
    from repro.analysis import render_table

    rows = [
        [name, f"{metrics['seconds']:.4f}", _detail(name, metrics)]
        for name, metrics in results["benches"].items()
    ]
    mode = "quick" if results.get("quick") else "full"
    return render_table(
        ["benchmark", "seconds (min)", "detail"], rows,
        title=f"repro bench — {mode} mode, {results.get('repeats', 1)} repeat(s)",
    )


def render_comparison(rows, max_regression=0.25):
    """ASCII table of a baseline comparison."""
    from repro.analysis import render_table

    table = [
        [
            row["name"],
            f"{row['baseline_s']:.4f}",
            f"{row['current_s']:.4f}",
            f"{row['normalized_ratio']:.2f}x",
            f"{1.0 + row.get('limit', max_regression):.2f}x",
            "REGRESSED" if row["regressed"] else "ok",
        ]
        for row in rows
    ]
    return render_table(
        ["benchmark", "baseline s", "current s", "normalized", "limit",
         "status"],
        table,
        title=f"vs baseline (default fail above {1.0 + max_regression:.2f}x)",
    )
