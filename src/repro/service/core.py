"""CampaignService: a persistent, multi-tenant campaign orchestrator.

The service plays the role the Odyssey viceroy plays for applications,
one level up: it is a long-lived arbiter that multiplexes *many
clients'* campaigns onto one warm worker pool.  Where
:class:`~repro.fleet.runner.FleetRunner` builds a process pool, runs one
campaign, and tears everything down, the service accepts jobs forever:

* **submit/status/result.** A client submits a
  :class:`~repro.fleet.spec.CampaignSpec` into a *named queue* with a
  priority and gets a job id back; it polls status (state + per-task
  progress) and fetches the result when the job is terminal.
* **named priority queues.** Queues are served round-robin (so one
  tenant's giant campaign cannot starve another queue); within a queue,
  jobs run by descending priority, FIFO on ties.  One task at a time is
  dispatched per idle worker, so concurrent jobs genuinely interleave.
* **shared cache + coalescing.** All jobs share one sha256
  :class:`~repro.fleet.cache.ResultCache`.  Cache checks happen at
  dispatch time, so a task finished by *any* job (or a previous run of
  the service, or a one-shot ``repro sweep``) is served from cache; a
  task identical to one currently *in flight* for another job is parked
  and served from the cache when the running copy lands — two clients
  submitting the same campaign concurrently execute it once.
* **failure handling.** Retries/backoff/timeouts are exactly
  :class:`~repro.fleet.execution.CampaignExecution`'s — the same engine
  the one-shot runner drives — plus worker-death reclaim: when a worker
  dies or its heartbeat goes stale, its attempt is requeued (burning one
  attempt) and a replacement worker joins the pool.

**Determinism invariant.** Seeds derive from task identity
(:func:`~repro.fleet.spec.derive_seed`), never placement; the service
adds no placement information to any task.  A campaign submitted here is
therefore bit-identical to the same campaign run via ``repro sweep`` —
including when a worker dies mid-task and the attempt reruns elsewhere.
"""

from __future__ import annotations

import threading
import time

from repro.fleet.cache import ResultCache
from repro.fleet.execution import CampaignExecution
from repro.obs.metrics import current_metrics
from repro.obs.tracer import current_tracer
from repro.service.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
)
from repro.service.pool import WorkerPool

__all__ = ["CampaignService"]


class CampaignService:
    """The orchestrator: queues, a warm pool, and the shared cache.

    Parameters
    ----------
    workers:
        Warm pool size (persistent worker processes).
    cache:
        ``None``, a directory path, or a :class:`ResultCache` — shared
        by every job the service ever runs.
    retries / backoff_s / timeout_s:
        Default :class:`CampaignExecution` parameters for submitted
        jobs (a submission may override ``retries``/``timeout_s``).
    heartbeat_s / heartbeat_timeout_s:
        Worker heartbeat period and the staleness bound past which a
        worker is declared dead and its work reclaimed.
    poll_s:
        Scheduler loop granularity (how long one pass waits for worker
        messages when otherwise idle).
    """

    def __init__(self, workers=2, cache=None, retries=2, backoff_s=0.05,
                 timeout_s=None, heartbeat_s=0.2, heartbeat_timeout_s=5.0,
                 poll_s=0.05, tracer=None, metrics=None):
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.retries = retries
        self.backoff_s = backoff_s
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self.tracer = tracer if tracer is not None else current_tracer()
        self._trace = self.tracer.gate("service")
        self.metrics = metrics if metrics is not None else current_metrics()
        self._m_submitted = self.metrics.counter("service.jobs_submitted")
        self._m_done = self.metrics.counter("service.jobs_done")
        self._m_failed = self.metrics.counter("service.jobs_failed")
        self._m_reclaimed = self.metrics.counter("service.tasks_reclaimed")
        self._m_coalesced = self.metrics.counter("service.tasks_coalesced")
        self._m_queue_depth = self.metrics.gauge("fleet.queue_depth")
        self._m_beat_age = self.metrics.gauge("fleet.heartbeat_age_s")

        self.pool = WorkerPool(workers, heartbeat_s=heartbeat_s,
                               heartbeat_timeout_s=heartbeat_timeout_s)
        self._lock = threading.RLock()
        self._jobs = {}
        self._seq = 0
        #: queue name → insertion-ordered presence (round-robin cursor
        #: walks the sorted names).
        self._rr_cursor = 0
        #: cache key → (job_id, task_id) currently executing that key.
        self._inflight_keys = {}
        #: cache key → list of (job, task) parked on the in-flight copy.
        self._parked = {}
        self._stop = threading.Event()
        self._thread = None
        self.started_at = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Spawn the warm pool and the scheduler thread; idempotent."""
        with self._lock:
            if self._thread is not None:
                return self
            self.pool.start()
            self.started_at = time.monotonic()
            self._thread = threading.Thread(
                target=self._run, name="repro-service-scheduler", daemon=True,
            )
            self._thread.start()
        if self._trace is not None:
            self._trace.instant(
                self.tracer.wall(), "service", "service.start",
                track="service", args={"workers": self.pool.size},
            )
        return self

    def stop(self):
        """Stop the scheduler and the pool; idempotent."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(5.0)
        self.pool.shutdown()
        if self._trace is not None:
            self._trace.instant(
                self.tracer.wall(), "service", "service.stop",
                track="service", args={},
            )

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    def submit(self, spec, queue="default", priority=0, client=None,
               retries=None, timeout_s=None):
        """Accept a campaign; returns its job id immediately."""
        if self._stop.is_set():
            raise RuntimeError("service is shutting down")
        with self._lock:
            self._seq += 1
            job_id = f"j{self._seq:04d}"
            execution = CampaignExecution(
                spec,
                cache=self.cache,
                retries=self.retries if retries is None else retries,
                backoff_s=self.backoff_s,
                timeout_s=self.timeout_s if timeout_s is None else timeout_s,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            job = JobRecord(job_id, spec, execution, queue=queue,
                            priority=priority, client=client, seq=self._seq)
            job.state = QUEUED
            self._jobs[job_id] = job
            self._m_submitted.inc()
        if self._trace is not None:
            self._trace.instant(
                self.tracer.wall(), "service", "job.submit",
                track=f"q/{queue}",
                args={"job": job_id, "campaign": spec.name,
                      "tasks": len(spec.tasks), "priority": priority,
                      "client": client},
            )
        return job_id

    def status(self, job_id):
        with self._lock:
            return self._job(job_id).status_payload()

    def result(self, job_id):
        with self._lock:
            return self._job(job_id).result_payload()

    def jobs(self):
        """Summaries of every job, newest first."""
        with self._lock:
            records = sorted(self._jobs.values(), key=lambda j: -j.seq)
            return [
                {"job_id": j.job_id, "campaign": j.spec.name,
                 "queue": j.queue, "priority": j.priority,
                 "state": j.state, "done": j.execution.telemetry.done,
                 "total": j.execution.telemetry.total}
                for j in records
            ]

    def queues(self):
        """Per-queue depth: jobs and not-yet-terminal tasks."""
        with self._lock:
            summary = {}
            for job in self._jobs.values():
                entry = summary.setdefault(
                    job.queue,
                    {"jobs": 0, "active_jobs": 0, "pending_tasks": 0},
                )
                entry["jobs"] += 1
                if not job.terminal:
                    entry["active_jobs"] += 1
                    entry["pending_tasks"] += (
                        job.execution.telemetry.total
                        - job.execution.telemetry.done
                    )
            return summary

    def workers(self):
        return self.pool.snapshot()

    def wait(self, job_id, timeout=None, poll_s=0.05):
        """Block until ``job_id`` is terminal; returns its status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in (DONE, FAILED):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll_s)

    def _job(self, job_id):
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"no job {job_id!r}") from None

    # ------------------------------------------------------------------
    # scheduler
    # ------------------------------------------------------------------
    def _run(self):
        while not self._stop.is_set():
            self._pass()
        # Drain one final pass so stop() observes settled bookkeeping.
        with self._lock:
            self._update_gauges()

    def _pass(self):
        events = self.pool.poll(timeout=self.poll_s)
        with self._lock:
            for event in events:
                self._apply_event(*event)
            for job_id, task, attempt, reason in self.pool.reap_dead():
                self._reclaim(job_id, task, attempt, reason)
            self._dispatch_ready()
            self._finish_done_jobs()
            self._update_gauges()

    # -- event application ---------------------------------------------
    def _apply_event(self, kind, worker_id, job_id, task_id, attempt,
                     payload):
        job = self._jobs.get(job_id)
        if job is None or job.terminal:
            return
        task = next((t for t in job.spec.tasks if t.id == task_id), None)
        if task is None:
            return
        job.running_tasks.discard(task_id)
        job.execution.telemetry.running -= 1
        if kind == "done":
            job.execution.record_success(task, payload, attempt)
            self._unpark(task, payload)
        else:
            job.execution.record_error(task, payload, attempt)
            self._release_inflight(task, failed=True)

    def _reclaim(self, job_id, task, attempt, reason):
        """A worker died holding this attempt: burn it, retry elsewhere."""
        job = self._jobs.get(job_id)
        self._m_reclaimed.inc()
        if self._trace is not None:
            self._trace.instant(
                self.tracer.wall(), "service", "task.reclaimed",
                track="service",
                args={"job": job_id, "task": task.id, "attempt": attempt,
                      "reason": reason},
            )
        if job is None or job.terminal:
            return
        job.running_tasks.discard(task.id)
        job.execution.telemetry.running -= 1
        job.execution.record_error(task, reason, attempt)
        self._release_inflight(task, failed=True)

    # -- coalescing ----------------------------------------------------
    def _unpark(self, task, outcome):
        """An in-flight key landed: serve every parked duplicate."""
        key = task.key()
        if key is None:
            return
        self._inflight_keys.pop(key, None)
        for parked_job, parked_task in self._parked.pop(key, ()):
            if parked_job.terminal:
                continue
            parked_job.parked_tasks.pop(parked_task.id, None)
            record = self.cache.get(key) if self.cache else None
            if record is None:
                # No cache attached (or eviction raced us): fall back to
                # the outcome we just observed — same value, same bytes.
                record = {"value": outcome["value"],
                          "wall_s": outcome["wall_s"]}
            parked_job.execution.record_cached(parked_task, record)
            self._m_coalesced.inc()

    def _release_inflight(self, task, failed=False):
        """A running key failed: let parked duplicates run it themselves."""
        key = task.key()
        if key is None:
            return
        self._inflight_keys.pop(key, None)
        for parked_job, parked_task in self._parked.pop(key, ()):
            if parked_job.terminal:
                continue
            parked_job.parked_tasks.pop(parked_task.id, None)
            parked_job.pending.insert(0, parked_task)

    # -- dispatch ------------------------------------------------------
    def _ready_jobs(self):
        """Active jobs grouped by queue, in scheduling order."""
        by_queue = {}
        for job in self._jobs.values():
            if job.terminal:
                continue
            by_queue.setdefault(job.queue, []).append(job)
        for jobs in by_queue.values():
            jobs.sort(key=JobRecord.sort_key)
        return by_queue

    def _next_attempt(self, job):
        """The next runnable ``(task, attempt)`` of ``job``, or ``None``.

        Retries whose backoff expired take precedence over first
        attempts, matching the one-shot pool's drain order.
        """
        job.retry_ready.extend(job.execution.pop_due())
        if job.retry_ready:
            return job.retry_ready.pop(0)
        while job.pending:
            task = job.pending.pop(0)
            if job.execution.try_cache(task):
                continue
            key = task.key()
            if key is not None and key in self._inflight_keys:
                holder = self._inflight_keys[key]
                if holder != (job.job_id, task.id):
                    job.parked_tasks[task.id] = key
                    self._parked.setdefault(key, []).append((job, task))
                    continue
            return task, 1
        return None

    def _dispatch_ready(self):
        idle = self.pool.idle_workers()
        if not idle:
            return
        by_queue = self._ready_jobs()
        if not by_queue:
            return
        queue_names = sorted(by_queue)
        for handle in idle:
            assigned = False
            for _ in range(len(queue_names)):
                queue = queue_names[self._rr_cursor % len(queue_names)]
                self._rr_cursor += 1
                for job in by_queue[queue]:
                    picked = self._next_attempt(job)
                    if picked is None:
                        continue
                    task, attempt = picked
                    if job.state == QUEUED:
                        job.state = RUNNING
                    job.execution.note_attempt()
                    job.execution.telemetry.running += 1
                    job.running_tasks.add(task.id)
                    key = task.key()
                    if key is not None:
                        self._inflight_keys[key] = (job.job_id, task.id)
                    self.pool.assign(
                        handle, job.job_id, task, attempt,
                        job.execution.task_budget(task),
                    )
                    assigned = True
                    break
                if assigned:
                    break
            if not assigned:
                break  # nothing runnable anywhere

    def _finish_done_jobs(self):
        for job in self._jobs.values():
            if job.terminal or not job.execution.done:
                continue
            job.finish()
            (self._m_done if job.state == DONE else self._m_failed).inc()
            if self._trace is not None:
                wall = job.execution.telemetry.wall_s
                end = self.tracer.wall()
                self._trace.complete(
                    max(0.0, end - wall), "service", "job", dur=wall,
                    track=f"job/{job.job_id}",
                    args={"campaign": job.spec.name, "queue": job.queue,
                          "state": job.state,
                          **job.execution.telemetry.snapshot()},
                )

    def _update_gauges(self):
        depth = 0
        for job in self._jobs.values():
            if job.terminal:
                continue
            telemetry = job.execution.telemetry
            depth += telemetry.total - telemetry.done - telemetry.running
        self._m_queue_depth.set(depth)
        self._m_beat_age.set(round(self.pool.max_beat_age(), 3))

    # ------------------------------------------------------------------
    def snapshot(self):
        """One JSON-able view of the whole service (the /health body)."""
        with self._lock:
            return {
                "workers": len(self.pool),
                "reclaimed_workers": self.pool.reclaimed_workers,
                "jobs": len(self._jobs),
                "queues": self.queues(),
                "uptime_s": (
                    round(time.monotonic() - self.started_at, 3)
                    if self.started_at is not None else 0.0
                ),
            }
