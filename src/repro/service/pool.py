"""The warm worker pool: persistent processes, heartbeats, reclaim.

Unlike the one-shot ``ProcessPoolExecutor`` behind
:class:`~repro.fleet.runner.FleetRunner`, these workers outlive any
single campaign: they are spawned once when the service starts and serve
every job the service ever accepts.  The design keeps placement fully
observable so failure handling can be exact:

* every worker has its **own inbox** queue and is handed **one task at
  a time** — the coordinator always knows precisely which attempt a
  worker holds, so a dead worker's work can be requeued without
  guessing;
* workers **register** on startup and **heartbeat** on a side thread
  (so a worker busy simulating still beats); the coordinator treats a
  worker as dead when its process exits *or* its heartbeat goes stale —
  the latter catches wedged processes that are technically alive;
* a dead worker is killed, its in-flight attempt is **reclaimed** for
  the scheduler to retry elsewhere, and a **replacement worker** is
  spawned so the pool stays at its configured size.

Task execution inside a worker is :func:`repro.fleet.worker.run_task` —
the same in-worker ``SIGALRM`` timeout the one-shot pool uses — so a
task behaves identically under either pool.  Nothing about placement
(worker id, pid, attempt timing) ever reaches task parameters, which is
half of the service's determinism invariant.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_mod
import threading
import time

from repro.fleet.execution import describe_error
from repro.fleet.worker import run_task

__all__ = ["WorkerPool", "WorkerHandle"]

#: Worker → coordinator message kinds.
REGISTER, HEARTBEAT, START, DONE, ERROR = (
    "register", "heartbeat", "start", "done", "error",
)


def _worker_main(worker_id, inbox, outbox, heartbeat_s):
    """The loop a pool process runs: register, beat, execute, report."""
    outbox.put((REGISTER, worker_id, multiprocessing.current_process().pid))
    stop_beating = threading.Event()

    def beat():
        while not stop_beating.wait(heartbeat_s):
            outbox.put((HEARTBEAT, worker_id, time.monotonic()))

    beater = threading.Thread(target=beat, daemon=True)
    beater.start()
    try:
        while True:
            item = inbox.get()
            if item is None:
                break
            job_id, task, attempt, timeout_s, collect_trace = item
            outbox.put((START, worker_id, job_id, task.id, attempt))
            try:
                outcome = run_task(task, timeout_s,
                                   collect_trace=collect_trace)
            except BaseException as exc:  # noqa: BLE001 — report, don't die
                outbox.put((ERROR, worker_id, job_id, task.id, attempt,
                            describe_error(exc)))
            else:
                outbox.put((DONE, worker_id, job_id, task.id, attempt,
                            outcome))
    finally:
        stop_beating.set()


class WorkerHandle:
    """Coordinator-side view of one pool worker."""

    def __init__(self, worker_id, process, inbox):
        self.id = worker_id
        self.process = process
        self.inbox = inbox
        self.pid = None
        self.registered = False
        self.last_beat = time.monotonic()
        #: ``(job_id, task, attempt)`` currently dispatched, or ``None``.
        self.current = None
        self.completed = 0

    @property
    def idle(self):
        return self.registered and self.current is None

    def beat_age(self, now=None):
        return (now if now is not None else time.monotonic()) - self.last_beat

    def snapshot(self, now=None):
        return {
            "id": self.id,
            "pid": self.pid,
            "alive": self.process.is_alive(),
            "registered": self.registered,
            "heartbeat_age_s": round(self.beat_age(now), 3),
            "current": (
                {"job": self.current[0], "task": self.current[1].id,
                 "attempt": self.current[2]}
                if self.current else None
            ),
            "completed": self.completed,
        }


class WorkerPool:
    """A fixed-size pool of persistent, heartbeating worker processes.

    The pool is a passive mechanism: it moves tasks and messages, and
    detects death.  All scheduling *policy* (which job's task runs next,
    retry budgets) lives in :class:`~repro.service.core.CampaignService`.
    """

    def __init__(self, size, heartbeat_s=0.2, heartbeat_timeout_s=5.0):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if heartbeat_timeout_s <= heartbeat_s:
            raise ValueError(
                f"heartbeat_timeout_s ({heartbeat_timeout_s}) must exceed "
                f"heartbeat_s ({heartbeat_s})"
            )
        self.size = size
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._ctx = multiprocessing.get_context()
        self.outbox = self._ctx.Queue()
        self.workers = {}
        self._ids = itertools.count(1)
        self._started = False
        #: Monotonically counts workers declared dead and replaced.
        self.reclaimed_workers = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._started:
            return self
        self._started = True
        for _ in range(self.size):
            self._spawn()
        return self

    def _spawn(self):
        worker_id = f"w{next(self._ids)}"
        inbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, inbox, self.outbox, self.heartbeat_s),
            daemon=True,
            name=f"repro-service-{worker_id}",
        )
        process.start()
        handle = WorkerHandle(worker_id, process, inbox)
        self.workers[worker_id] = handle
        return handle

    def shutdown(self):
        """Stop every worker; idempotent."""
        for handle in self.workers.values():
            try:
                handle.inbox.put_nowait(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 2.0
        for handle in self.workers.values():
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
        self.workers.clear()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def idle_workers(self):
        return [h for h in self.workers.values() if h.idle]

    def assign(self, handle, job_id, task, attempt, timeout_s,
               collect_trace=False):
        """Hand one attempt to an idle worker."""
        if handle.current is not None:
            raise RuntimeError(f"worker {handle.id} is busy")
        handle.current = (job_id, task, attempt)
        handle.inbox.put((job_id, task, attempt, timeout_s, collect_trace))

    # ------------------------------------------------------------------
    # message pump
    # ------------------------------------------------------------------
    def poll(self, timeout=0.05):
        """Drain worker messages; returns completed/errored attempts.

        Registration and heartbeats are absorbed into worker handles;
        ``start`` markers update ``current`` (a belt-and-braces echo of
        :meth:`assign`).  Returns a list of
        ``(kind, worker_id, job_id, task_id, attempt, payload)`` tuples
        for ``kind`` in ``{"done", "error"}``.
        """
        events = []
        block = True
        while True:
            try:
                message = self.outbox.get(timeout=timeout if block else 0.0)
            except queue_mod.Empty:
                break
            block = False  # drain the rest without waiting
            kind = message[0]
            handle = self.workers.get(message[1])
            if handle is None:
                continue  # a message from an already-replaced worker
            handle.last_beat = time.monotonic()
            if kind == REGISTER:
                handle.registered = True
                handle.pid = message[2]
            elif kind == HEARTBEAT:
                pass  # the timestamp update above is the whole point
            elif kind == START:
                pass  # assign() already recorded handle.current
            elif kind in (DONE, ERROR):
                _, worker_id, job_id, task_id, attempt, payload = message
                handle.current = None
                handle.completed += 1
                events.append((kind, worker_id, job_id, task_id, attempt,
                               payload))
        return events

    # ------------------------------------------------------------------
    # death
    # ------------------------------------------------------------------
    def reap_dead(self, now=None):
        """Kill and replace dead workers; returns reclaimed attempts.

        A worker is dead when its process has exited, or when it has
        not heartbeaten within ``heartbeat_timeout_s`` (a wedged-but-
        alive process; ``SIGSTOP``, a native hang).  Its in-flight
        attempt — if any — is returned as ``(job_id, task, attempt,
        reason)`` for the service to retry elsewhere; a replacement
        worker is spawned immediately so capacity never decays.
        """
        if now is None:
            now = time.monotonic()
        reclaimed = []
        for worker_id in list(self.workers):
            handle = self.workers[worker_id]
            alive = handle.process.is_alive()
            stale = (handle.registered
                     and handle.beat_age(now) > self.heartbeat_timeout_s)
            if alive and not stale:
                continue
            reason = (
                f"worker {worker_id} "
                + (f"exited (code {handle.process.exitcode})" if not alive
                   else f"heartbeat stale ({handle.beat_age(now):.1f}s)")
            )
            if alive:
                handle.process.terminate()
                handle.process.join(1.0)
                if handle.process.is_alive():  # pragma: no cover
                    handle.process.kill()
                    handle.process.join(1.0)
            if handle.current is not None:
                job_id, task, attempt = handle.current
                reclaimed.append((job_id, task, attempt, reason))
            del self.workers[worker_id]
            self.reclaimed_workers += 1
            self._spawn()
        return reclaimed

    # ------------------------------------------------------------------
    def max_beat_age(self, now=None):
        """Oldest heartbeat across live workers (the exported gauge)."""
        if not self.workers:
            return 0.0
        if now is None:
            now = time.monotonic()
        return max(h.beat_age(now) for h in self.workers.values())

    def snapshot(self):
        now = time.monotonic()
        return [self.workers[k].snapshot(now) for k in sorted(self.workers)]

    def __len__(self):
        return len(self.workers)
