"""Client library for the campaign service — stdlib ``urllib`` only.

A :class:`ServiceClient` wraps the HTTP transport so callers (the CLI,
tests, other Python programs) speak objects, not routes::

    client = ServiceClient("http://127.0.0.1:7341")
    job_id = client.submit(spec, queue="nightly", priority=5)
    status = client.wait(job_id, timeout=600)
    values = client.result(job_id)["values"]

Every method raises :class:`ServiceUnavailable` when the service is not
reachable and :class:`ServiceError` for JSON error replies, so scripts
can distinguish "not running" from "bad request".
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "DEFAULT_ENDPOINT",
]

#: Where ``repro serve`` listens unless told otherwise.
DEFAULT_ENDPOINT = "http://127.0.0.1:7341"


class ServiceError(RuntimeError):
    """The service replied with an error payload."""

    def __init__(self, message, status=None):
        super().__init__(message)
        self.status = status


class ServiceUnavailable(ServiceError):
    """No service answered at the endpoint."""


class ServiceClient:
    """Talk to one ``repro serve`` endpoint."""

    def __init__(self, endpoint=DEFAULT_ENDPOINT, timeout=10.0):
        self.endpoint = endpoint.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, path, body=None):
        url = f"{self.endpoint}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))["error"]
            except Exception:  # noqa: BLE001 — no JSON body
                detail = str(exc)
            raise ServiceError(detail, status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServiceUnavailable(
                f"no campaign service at {self.endpoint} ({exc.reason}); "
                f"start one with `python -m repro serve`"
            ) from None

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def health(self):
        return self._request("/health")

    def queues(self):
        return self._request("/queues")

    def workers(self):
        return self._request("/workers")

    def jobs(self):
        return self._request("/jobs")

    def metrics(self):
        return self._request("/metrics")

    def submit(self, spec, queue="default", priority=0, client=None,
               retries=None, timeout_s=None):
        """Submit a :class:`~repro.fleet.spec.CampaignSpec`; returns job id."""
        body = {
            "spec": spec if isinstance(spec, dict) else spec.to_dict(),
            "queue": queue,
            "priority": priority,
        }
        if client is not None:
            body["client"] = client
        if retries is not None:
            body["retries"] = retries
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._request("/submit", body=body)["job_id"]

    def status(self, job_id):
        return self._request(f"/jobs/{job_id}")

    def result(self, job_id):
        return self._request(f"/jobs/{job_id}/result")

    def shutdown(self):
        return self._request("/shutdown", body={})

    # ------------------------------------------------------------------
    def wait(self, job_id, timeout=None, poll_s=0.2):
        """Poll until ``job_id`` is terminal; returns its final status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll_s)
