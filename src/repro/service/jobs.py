"""Job records: what the campaign service knows about one submission.

A *job* is one client-submitted :class:`~repro.fleet.spec.CampaignSpec`
plus its service-side lifecycle.  Jobs move strictly forward::

    submitted → queued → running → done | failed

``submitted`` is the instant the service accepted the spec (the record
exists, nothing is scheduled yet); ``queued`` means the job sits in a
named queue waiting for workers; ``running`` means at least one task
attempt has been dispatched; ``done``/``failed`` are terminal — a job is
``failed`` when any task permanently failed after retries, ``done`` only
when every task produced a value (fresh or cache-served).

Per-task progress rides on the job's
:class:`~repro.fleet.execution.CampaignExecution` — its telemetry
counters and per-task terminal states are snapshotted into the status
payload clients poll.
"""

from __future__ import annotations

from repro.fleet.spec import canonical_json

__all__ = [
    "JobRecord",
    "results_document",
    "SUBMITTED",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "JOB_STATES",
]

SUBMITTED, QUEUED, RUNNING = "submitted", "queued", "running"
DONE, FAILED = "done", "failed"
JOB_STATES = (SUBMITTED, QUEUED, RUNNING, DONE, FAILED)


class JobRecord:
    """One submitted campaign and its service-side lifecycle."""

    def __init__(self, job_id, spec, execution, queue="default",
                 priority=0, client=None, seq=0):
        self.job_id = job_id
        self.spec = spec
        self.execution = execution
        self.queue = queue
        self.priority = int(priority)
        self.client = client
        #: Admission order; ties within a priority break FIFO on it.
        self.seq = seq
        self.state = SUBMITTED
        self.result = None
        #: Tasks not yet dispatched for the first time, in spec order.
        self.pending = list(spec.tasks)
        #: Backoff-expired retries waiting for an idle worker.
        self.retry_ready = []
        #: Task ids currently dispatched to a worker.
        self.running_tasks = set()
        #: Task ids parked on another job's identical in-flight task
        #: (cross-job coalescing; see CampaignService).
        self.parked_tasks = {}

    # ------------------------------------------------------------------
    @property
    def terminal(self):
        return self.state in (DONE, FAILED)

    def sort_key(self):
        """Scheduling order within a queue: priority desc, then FIFO."""
        return (-self.priority, self.seq)

    def finish(self):
        """Seal the job: assemble the result, pick the terminal state."""
        self.result = self.execution.finish()
        self.state = DONE if self.result.ok else FAILED
        return self.result

    # ------------------------------------------------------------------
    # wire payloads
    # ------------------------------------------------------------------
    def status_payload(self):
        """What ``repro status`` / ``GET /jobs/<id>`` returns."""
        telemetry = self.execution.telemetry
        payload = {
            "job_id": self.job_id,
            "campaign": self.spec.name,
            "queue": self.queue,
            "priority": self.priority,
            "client": self.client,
            "state": self.state,
            "telemetry": telemetry.snapshot(),
            "tasks": {
                "total": telemetry.total,
                "done": telemetry.done,
                "running": sorted(self.running_tasks),
                "parked": sorted(self.parked_tasks),
            },
        }
        if self.terminal:
            payload["failures"] = [
                {"task_id": f.task_id, "error": f.error,
                 "attempts": f.attempts}
                for f in self.result.failures
            ]
        return payload

    def result_payload(self):
        """What ``repro result`` returns once the job is terminal.

        ``values`` carries every successful task's value keyed by task
        id — the byte-comparable payload: its canonical JSON is
        identical to a one-shot ``repro sweep`` of the same spec.
        """
        if not self.terminal:
            raise KeyError(
                f"job {self.job_id!r} is {self.state}, not terminal"
            )
        result = self.result
        return {
            "job_id": self.job_id,
            "campaign": self.spec.name,
            "state": self.state,
            "values": result.values,
            "failures": [
                {"task_id": f.task_id, "error": f.error,
                 "attempts": f.attempts}
                for f in result.failures
            ],
            "telemetry": result.telemetry.snapshot(),
        }

    def __repr__(self):
        return (f"<JobRecord {self.job_id} {self.spec.name!r} "
                f"{self.state} queue={self.queue}>")


def results_document(name, values):
    """Canonical, byte-comparable results JSON text.

    Shared by ``repro sweep --results-out`` and ``repro result --out``
    (and the service-smoke CI job's ``cmp``): the same campaign run
    one-shot, via the service, or via the service with a worker death
    mid-task must produce identical bytes.
    """
    return canonical_json({"campaign": name, "values": values}) + "\n"
