"""Local HTTP transport for the campaign service — stdlib only.

A thin JSON-over-HTTP skin on :class:`~repro.service.core.CampaignService`
built on :mod:`http.server` (no new dependencies).  One thread per
request (``ThreadingHTTPServer``); every handler delegates to the
service, whose lock makes the underlying operations atomic.

Routes::

    GET  /health                  service snapshot (also the liveness probe)
    GET  /queues                  per-queue depths
    GET  /workers                 worker table (pid, heartbeat age, task)
    GET  /jobs                    job summaries, newest first
    GET  /jobs/<id>               one job's status + per-task progress
    GET  /jobs/<id>/result        terminal job's values/failures/telemetry
    GET  /metrics                 MetricsRegistry snapshot
    POST /submit                  {"spec": {...}, "queue", "priority",
                                   "client", "retries", "timeout_s"}
    POST /shutdown                stop accepting work and exit serve loop

Errors are JSON too: ``{"error": "..."}`` with a 4xx/5xx status.  The
transport never touches task values beyond ``json.dumps``, so the bytes
a client reads back are exactly what the execution engine recorded.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.fleet.spec import CampaignSpec

__all__ = ["ServiceServer", "serve"]

#: Refuse request bodies past this size (a local, cooperative service —
#: the bound just keeps a typo'd upload from ballooning memory).
MAX_BODY = 32 * 1024 * 1024


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request to the service; see the module docstring."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # The handler is instantiated per request; the service and shutdown
    # event ride on the server object.
    @property
    def service(self):
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _reply(self, payload, status=200):
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message, status):
        self._reply({"error": message}, status=status)

    def _read_body(self):
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b"{}"
        return json.loads(raw.decode("utf-8"))

    # ------------------------------------------------------------------
    def do_GET(self):  # noqa: N802 — stdlib casing
        try:
            path = self.path.rstrip("/")
            if path in ("", "/health"):
                return self._reply(self.service.snapshot())
            if path == "/queues":
                return self._reply(self.service.queues())
            if path == "/workers":
                return self._reply(self.service.workers())
            if path == "/jobs":
                return self._reply(self.service.jobs())
            if path == "/metrics":
                return self._reply(self.service.metrics.snapshot())
            if path.startswith("/jobs/"):
                parts = path.split("/")
                if len(parts) == 3:
                    return self._reply(self.service.status(parts[2]))
                if len(parts) == 4 and parts[3] == "result":
                    return self._reply(self.service.result(parts[2]))
            return self._error(f"no route {self.path!r}", 404)
        except KeyError as exc:
            return self._error(str(exc), 404)
        except Exception as exc:  # noqa: BLE001 — surface, don't kill thread
            return self._error(f"{type(exc).__name__}: {exc}", 500)

    def do_POST(self):  # noqa: N802 — stdlib casing
        try:
            path = self.path.rstrip("/")
            if path == "/submit":
                body = self._read_body()
                spec = CampaignSpec.from_dict(body["spec"])
                job_id = self.service.submit(
                    spec,
                    queue=body.get("queue", "default"),
                    priority=body.get("priority", 0),
                    client=body.get("client"),
                    retries=body.get("retries"),
                    timeout_s=body.get("timeout_s"),
                )
                return self._reply({"job_id": job_id}, status=202)
            if path == "/shutdown":
                self._reply({"stopping": True})
                self.server.shutdown_event.set()
                return None
            return self._error(f"no route {self.path!r}", 404)
        except (KeyError, ValueError, TypeError) as exc:
            return self._error(f"bad request: {exc}", 400)
        except Exception as exc:  # noqa: BLE001
            return self._error(f"{type(exc).__name__}: {exc}", 500)


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`CampaignService`."""

    daemon_threads = True

    def __init__(self, service, host="127.0.0.1", port=0, verbose=False):
        super().__init__((host, port), ServiceRequestHandler)
        self.service = service
        self.verbose = verbose
        self.shutdown_event = threading.Event()

    @property
    def endpoint(self):
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_until_shutdown(self, poll_s=0.2):
        """Serve until ``POST /shutdown`` (or KeyboardInterrupt)."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-service-http", daemon=True)
        thread.start()
        try:
            while not self.shutdown_event.wait(poll_s):
                pass
        finally:
            self.shutdown()
            thread.join(2.0)


def serve(service, host="127.0.0.1", port=0, verbose=False):
    """Bind a :class:`ServiceServer`; ``port=0`` picks a free port."""
    return ServiceServer(service, host=host, port=port, verbose=verbose)
