"""repro.service — a persistent, multi-tenant campaign orchestrator.

One long-lived :class:`CampaignService` owns a warm pool of worker
processes and serves many clients: campaigns are submitted into named
priority queues, tracked as jobs (submitted → queued → running →
done/failed), executed on whichever worker frees up, and cached in one
shared :class:`~repro.fleet.cache.ResultCache` so any client benefits
from any other client's completed work.  Workers heartbeat; a dead or
wedged worker's task is reclaimed, retried elsewhere, and the pool is
replenished — without changing results, because seeds derive from task
identity, never placement.

Layers:

* :mod:`repro.service.core` — the orchestrator (queues, dispatch,
  reclaim, coalescing) over :class:`~repro.service.pool.WorkerPool`.
* :mod:`repro.service.transport` — a stdlib JSON-over-HTTP skin
  (``repro serve``).
* :mod:`repro.service.client` — a ``urllib`` client library
  (``repro submit/status/result/queues``).
"""

from repro.service.client import (
    DEFAULT_ENDPOINT,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.core import CampaignService
from repro.service.jobs import (
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    SUBMITTED,
    JobRecord,
    results_document,
)
from repro.service.pool import WorkerHandle, WorkerPool
from repro.service.transport import ServiceServer, serve

__all__ = [
    "CampaignService",
    "WorkerPool",
    "WorkerHandle",
    "JobRecord",
    "results_document",
    "ServiceServer",
    "serve",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "DEFAULT_ENDPOINT",
    "SUBMITTED",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "JOB_STATES",
]
