"""Trace diffing: align two traced goal runs and report where they part.

The paper's headline claim is that goal-directed adaptation changes
*decisions* — which fidelity moves fire, when, and how much energy each
saves (Figures 18-22).  Scalar endpoints (goal met, residual joules)
hide regressions that shift the decision sequence while landing in the
same place, so this module compares two runs decision by decision:

1. :func:`decision_spine` reduces a recorded event stream to its
   *decision spine*: one :class:`SpineEntry` per goal-controller
   decision, keyed by the controller's stable decision id (``did``) and
   carrying the action taken plus any upcalls it fired.  Decisions run
   on a fixed period from ``start()``, so the k-th decision of two runs
   under different policies lands at the same sim instant — alignment
   is *keyed* on ``did``, never positional, and survives the extra
   events a chattier policy interleaves.
2. :func:`diff_spines` walks the aligned spines and groups contiguous
   disagreements into :class:`DivergenceWindow` runs (a ``gap`` of
   matching decisions may be absorbed to merge near-adjacent windows).
3. :func:`attribute_energy` charges each window with the energy either
   side spent across it, by pro-rating the ``power/span`` journal
   segments (the :func:`repro.obs.export.join_power` span vocabulary)
   that overlap the window's sim-time interval.

:func:`diff_traces` composes the three; ``python -m repro diff`` is the
CLI face and the golden-trace suite (``tests/test_trace_golden.py``)
asserts on :func:`diff_spines` output directly, making behavioural
drift in the controller a test failure instead of a silent plot change.

All output is a pure function of the events' *sim* timestamps and
payloads — wall-clock stamps are never consulted — so two diffs of the
same pair of runs are byte-identical.
"""

from __future__ import annotations

import json

from repro.obs.export import power_spans

__all__ = [
    "SpineEntry",
    "DivergenceWindow",
    "TraceDiff",
    "decision_spine",
    "diff_spines",
    "diff_traces",
    "diff_row",
    "attribute_energy",
    "attribute_energy_spans",
    "window_energy",
    "write_spine_jsonl",
    "read_spine_jsonl",
]


def _as_dict(event):
    return event if isinstance(event, dict) else event.to_dict()


class SpineEntry:
    """One goal-controller decision: the unit of trace alignment.

    Attributes
    ----------
    did:
        The controller's stable decision id (1-based tick count).
    ts:
        Sim time of the decision.
    action:
        ``"hold"``, ``"degrade"`` or ``"upgrade"`` — the trigger's
        verdict, before delivery (an upgrade verdict with no upgradable
        application still reads ``"upgrade"`` with no upcalls).
    upcalls:
        Tuple of ``(kind, application, level)`` triples delivered under
        this decision, in delivery order.
    infeasible:
        True when this decision first reported the goal infeasible.
    """

    __slots__ = ("did", "ts", "action", "upcalls", "infeasible")

    def __init__(self, did, ts, action, upcalls=(), infeasible=False):
        self.did = did
        self.ts = ts
        self.action = action
        self.upcalls = tuple(tuple(u) for u in upcalls)
        self.infeasible = bool(infeasible)

    def signature(self):
        """What alignment compares: everything except the timestamp."""
        return (self.action, self.upcalls, self.infeasible)

    def to_dict(self):
        record = {"did": self.did, "ts": self.ts, "action": self.action}
        if self.upcalls:
            record["upcalls"] = [list(u) for u in self.upcalls]
        if self.infeasible:
            record["infeasible"] = True
        return record

    @classmethod
    def from_dict(cls, record):
        return cls(
            record["did"], record["ts"], record["action"],
            upcalls=record.get("upcalls", ()),
            infeasible=record.get("infeasible", False),
        )

    def __eq__(self, other):
        return (isinstance(other, SpineEntry)
                and self.did == other.did
                and self.signature() == other.signature())

    def __repr__(self):
        return (f"<SpineEntry did={self.did} t={self.ts:.3f} "
                f"{self.action} upcalls={len(self.upcalls)}>")


def decision_spine(events):
    """Extract the decision spine from a recorded event stream.

    Accepts :class:`~repro.obs.tracer.TraceEvent` objects or the dicts
    :func:`~repro.obs.export.read_events_jsonl` returns.  Decisions are
    keyed by their ``did`` argument; upcall and infeasible events attach
    to the decision whose ``did`` they carry.  Traces recorded before
    decision ids existed fall back to arrival order (positional ids),
    so old JSONL files still diff — just less robustly.
    """
    entries = []
    by_did = {}
    for event in events:
        record = _as_dict(event)
        if record.get("cat") != "core":
            continue
        name = record.get("name", "")
        args = record.get("args") or {}
        if name.startswith("decision."):
            did = args.get("did", len(entries) + 1)
            entry = SpineEntry(did, record["ts"], name.split(".", 1)[1])
            entries.append(entry)
            by_did[did] = entry
        elif name.startswith("upcall."):
            entry = by_did.get(args.get("did"))
            if entry is None and entries:
                entry = entries[-1]
            if entry is not None:
                entry.upcalls += (
                    (name.split(".", 1)[1], args.get("application"),
                     args.get("level")),
                )
        elif name == "infeasible":
            entry = by_did.get(args.get("did"))
            if entry is None and entries:
                entry = entries[-1]
            if entry is not None:
                entry.infeasible = True
    entries.sort(key=lambda e: e.did)
    return entries


class DivergenceWindow:
    """A maximal run of decisions where the two traces disagree.

    ``start_did``/``end_did`` bound the window (inclusive); ``t0`` is
    the sim time of the first divergent decision and ``t1`` the time of
    the first decision *after* the window where the traces agree again
    (or the last decision either trace recorded) — the interval energy
    attribution integrates over.  ``entries_a``/``entries_b`` hold each
    side's divergent :class:`SpineEntry` list; a decision only one side
    reached (one run's controller stopped earlier) appears on that side
    alone.  ``energy_a``/``energy_b`` are filled by
    :func:`attribute_energy`; ``energy_delta`` is ``b - a``.
    """

    __slots__ = ("start_did", "end_did", "t0", "t1",
                 "entries_a", "entries_b",
                 "energy_a", "energy_b", "energy_delta", "energy_share")

    def __init__(self, start_did, end_did, t0, t1, entries_a, entries_b):
        self.start_did = start_did
        self.end_did = end_did
        self.t0 = t0
        self.t1 = t1
        self.entries_a = list(entries_a)
        self.entries_b = list(entries_b)
        self.energy_a = None
        self.energy_b = None
        self.energy_delta = None
        self.energy_share = None

    @property
    def decisions(self):
        """Number of divergent decision ids in the window."""
        return self.end_did - self.start_did + 1

    def to_dict(self):
        record = {
            "start_did": self.start_did,
            "end_did": self.end_did,
            "t0": self.t0,
            "t1": self.t1,
            "decisions": self.decisions,
            "entries_a": [e.to_dict() for e in self.entries_a],
            "entries_b": [e.to_dict() for e in self.entries_b],
        }
        if self.energy_delta is not None:
            record["energy_a"] = self.energy_a
            record["energy_b"] = self.energy_b
            record["energy_delta"] = self.energy_delta
        if self.energy_share is not None:
            record["energy_share"] = self.energy_share
        return record

    def __repr__(self):
        return (f"<DivergenceWindow did {self.start_did}..{self.end_did} "
                f"t {self.t0:.1f}..{self.t1:.1f}>")


class TraceDiff:
    """The full diff of two traced runs.

    Attributes
    ----------
    label_a / label_b:
        Display names for the two sides (file paths from the CLI).
    spine_a / spine_b:
        The two decision spines that were aligned.
    windows:
        :class:`DivergenceWindow` list in decision order; empty means
        the runs made identical decisions.
    """

    def __init__(self, label_a, label_b, spine_a, spine_b, windows):
        self.label_a = label_a
        self.label_b = label_b
        self.spine_a = spine_a
        self.spine_b = spine_b
        self.windows = windows
        # Whole-run journal energy per side; filled by attribute_energy.
        self.total_energy_a = None
        self.total_energy_b = None

    @property
    def identical(self):
        return not self.windows

    @property
    def first_divergence(self):
        """The first divergent window, or None when identical."""
        return self.windows[0] if self.windows else None

    @property
    def divergent_decisions(self):
        return sum(w.decisions for w in self.windows)

    @property
    def total_energy_delta(self):
        """Whole-run energy delta (B - A), or None before attribution."""
        if self.total_energy_a is None or self.total_energy_b is None:
            return None
        return self.total_energy_b - self.total_energy_a

    @property
    def energy_share(self):
        """Fraction of either run's energy spent inside divergence
        windows — the larger of the two sides, the same severity measure
        each window carries individually.  None before attribution,
        0.0 when the spines are identical."""
        if self.total_energy_a is None or self.total_energy_b is None:
            return None
        windows_a = sum(w.energy_a for w in self.windows
                        if w.energy_a is not None)
        windows_b = sum(w.energy_b for w in self.windows
                        if w.energy_b is not None)
        return max(
            windows_a / self.total_energy_a if self.total_energy_a > 0
            else 0.0,
            windows_b / self.total_energy_b if self.total_energy_b > 0
            else 0.0,
        )

    def to_dict(self):
        """Deterministic JSON-shaped summary (no wall-clock values)."""
        record = {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "decisions_a": len(self.spine_a),
            "decisions_b": len(self.spine_b),
            "identical": self.identical,
            "divergent_decisions": self.divergent_decisions,
            "windows": [w.to_dict() for w in self.windows],
        }
        if self.total_energy_a is not None:
            record["total_energy_a"] = self.total_energy_a
            record["total_energy_b"] = self.total_energy_b
            record["total_energy_delta"] = self.total_energy_delta
            record["energy_share"] = self.energy_share
        first = self.first_divergence
        if first is not None:
            record["first_divergence"] = {
                "did": first.start_did,
                "ts": first.t0,
                "a": [e.to_dict() for e in first.entries_a[:1]],
                "b": [e.to_dict() for e in first.entries_b[:1]],
            }
        return record

    def render(self, max_windows=10):
        """Human-readable report for the CLI."""
        lines = [f"trace diff: A = {self.label_a}",
                 f"            B = {self.label_b}",
                 f"decisions: {len(self.spine_a)} (A) vs "
                 f"{len(self.spine_b)} (B)"]
        if self.identical:
            lines.append("decision spines are identical")
            return "\n".join(lines)
        lines.append(
            f"{len(self.windows)} divergence window(s), "
            f"{self.divergent_decisions} divergent decision(s)"
        )
        first = self.first_divergence
        lines.append(
            f"first divergence at decision {first.start_did} "
            f"(t={first.t0:.1f}s): "
            f"A={_describe(first.entries_a[:1])} vs "
            f"B={_describe(first.entries_b[:1])}"
        )
        for index, window in enumerate(self.windows):
            if index == max_windows:
                lines.append(
                    f"... {len(self.windows) - max_windows} more window(s)"
                )
                break
            line = (f"  window {index + 1}: decisions "
                    f"{window.start_did}..{window.end_did} "
                    f"(t {window.t0:.1f}..{window.t1:.1f}s) "
                    f"A={_describe(window.entries_a)} "
                    f"B={_describe(window.entries_b)}")
            if window.energy_delta is not None:
                line += (f" energy A {window.energy_a:.1f} J, "
                         f"B {window.energy_b:.1f} J, "
                         f"delta {window.energy_delta:+.1f} J")
            if window.energy_share is not None:
                line += f" [{window.energy_share * 100:.1f}% of run]"
            lines.append(line)
        total = sum(w.energy_delta for w in self.windows
                    if w.energy_delta is not None)
        if any(w.energy_delta is not None for w in self.windows):
            lines.append(f"total attributed energy delta (B - A): "
                         f"{total:+.1f} J")
        if self.total_energy_a is not None:
            lines.append(
                f"run energy: A {self.total_energy_a:.1f} J, "
                f"B {self.total_energy_b:.1f} J "
                f"(delta {self.total_energy_delta:+.1f} J); "
                f"{self.energy_share * 100:.1f}% of run energy inside "
                f"divergence windows"
            )
        return "\n".join(lines)


def _describe(entries):
    """Compact rendering of a window side, e.g. ``degrade>video:3,hold``."""
    if not entries:
        return "(absent)"
    parts = []
    for entry in entries:
        part = entry.action
        for kind, application, level in entry.upcalls:
            part += f">{application}:{level}"
        if entry.infeasible:
            part += "!infeasible"
        parts.append(part)
    if len(parts) > 4:
        parts = parts[:4] + [f"...x{len(entries) - 4}"]
    return ",".join(parts)


def diff_spines(spine_a, spine_b, gap=0, label_a="A", label_b="B"):
    """Align two spines on decision id and group divergences.

    ``gap`` absorbs up to that many *matching* decisions between two
    divergent runs into one window — useful when a single policy change
    flickers across a boundary and you want it reported once.
    """
    index_a = {entry.did: entry for entry in spine_a}
    index_b = {entry.did: entry for entry in spine_b}
    dids = sorted(set(index_a) | set(index_b))

    divergent = []
    for did in dids:
        a, b = index_a.get(did), index_b.get(did)
        if a is None or b is None or a.signature() != b.signature():
            divergent.append(did)

    windows = []
    if divergent:
        # Group divergent dids whose gap (in aligned decisions, not id
        # arithmetic) is <= gap.
        position = {did: k for k, did in enumerate(dids)}
        groups = [[divergent[0]]]
        for did in divergent[1:]:
            if position[did] - position[groups[-1][-1]] - 1 <= gap:
                groups[-1].append(did)
            else:
                groups.append([did])
        for group in groups:
            start, end = group[0], group[-1]
            members = [d for d in dids if start <= d <= end]
            entries_a = [index_a[d] for d in members if d in index_a]
            entries_b = [index_b[d] for d in members if d in index_b]
            t0 = min(e.ts for e in entries_a + entries_b)
            # The window closes at the next decision where both sides
            # agree again; energy attribution integrates [t0, t1).
            after = [d for d in dids if d > end]
            if after:
                nxt = after[0]
                t1 = min(e.ts for e in
                         [x for x in (index_a.get(nxt), index_b.get(nxt))
                          if x is not None])
            else:
                t1 = max(e.ts for e in entries_a + entries_b)
            windows.append(
                DivergenceWindow(start, end, t0, t1, entries_a, entries_b)
            )
    return TraceDiff(label_a, label_b, list(spine_a), list(spine_b), windows)


# ----------------------------------------------------------------------
# energy attribution
# ----------------------------------------------------------------------
def window_energy(spans, t0, t1):
    """Joules recorded by ``power/span`` segments inside ``[t0, t1)``.

    ``spans`` is the :func:`repro.obs.export.power_spans` index; spans
    partially overlapping the interval contribute pro-rata (constant
    power within a journal segment, by construction).
    """
    total = 0.0
    for span in spans.values():
        s0 = span["t0"]
        s1 = s0 + (span["dur"] or 0.0)
        overlap = min(s1, t1) - max(s0, t0)
        if overlap > 0.0 and span["watts"] is not None:
            total += span["watts"] * overlap
    return total


def _span_total(spans):
    return sum((span["watts"] or 0.0) * (span["dur"] or 0.0)
               for span in spans.values())


def attribute_energy_spans(diff, spans_a, spans_b):
    """:func:`attribute_energy` against prebuilt span indexes.

    Callers that already hold :func:`~repro.obs.export.power_spans`
    indexes (the policy-matrix workers diff one baseline against many
    candidates) skip re-indexing the event streams.  Returns ``diff``.
    """
    total_a = _span_total(spans_a)
    total_b = _span_total(spans_b)
    diff.total_energy_a = total_a
    diff.total_energy_b = total_b
    for window in diff.windows:
        window.energy_a = window_energy(spans_a, window.t0, window.t1)
        window.energy_b = window_energy(spans_b, window.t0, window.t1)
        window.energy_delta = window.energy_b - window.energy_a
        window.energy_share = max(
            window.energy_a / total_a if total_a > 0 else 0.0,
            window.energy_b / total_b if total_b > 0 else 0.0,
        )
    return diff


def attribute_energy(diff, events_a, events_b):
    """Fill each window's ``energy_a``/``energy_b``/``energy_delta``.

    Uses the same ``power/span`` journal segments the
    :func:`~repro.obs.export.join_power` event↔energy join resolves
    against, so the delta is exactly the machine-journal energy each
    side spent across the divergent interval.  Each window also gets
    ``energy_share`` — the larger of its two sides' fractions of that
    side's whole-run energy, a severity measure readable at a glance —
    and the diff itself records both sides' whole-run totals.
    Returns ``diff``.
    """
    return attribute_energy_spans(
        diff, power_spans(events_a), power_spans(events_b)
    )


def diff_row(spine_a, spans_a, spine_b, spans_b, gap=0):
    """Diff one (baseline, candidate) pair into a compact row dict.

    The policy-matrix unit: where :func:`diff_traces` returns the full
    report object (every window, every entry), this returns only the
    scalar fields a per-policy scorecard row needs.  Inputs are the
    decision spines plus prebuilt ``power/span`` indexes, so a worker
    holding one baseline record can diff many candidates against it
    without re-deriving either side.  Pure function of sim timestamps —
    rows are byte-deterministic.
    """
    diff = diff_spines(spine_a, spine_b, gap=gap)
    attribute_energy_spans(diff, spans_a, spans_b)
    first = diff.first_divergence
    return {
        "decisions": len(spine_b),
        "divergent_decisions": diff.divergent_decisions,
        "windows": len(diff.windows),
        "first_divergence_did": first.start_did if first else None,
        "energy_total_j": diff.total_energy_b,
        "baseline_energy_j": diff.total_energy_a,
        "energy_delta_j": diff.total_energy_delta,
        "energy_delta_share": (
            diff.total_energy_delta / diff.total_energy_a
            if diff.total_energy_a > 0 else 0.0
        ),
        "window_energy_delta_j": sum(
            w.energy_delta for w in diff.windows
            if w.energy_delta is not None
        ),
        "divergent_energy_share": diff.energy_share,
        "identical": diff.identical,
    }


def diff_traces(events_a, events_b, label_a="A", label_b="B", gap=0,
                attribute=True):
    """Diff two recorded event streams end to end.

    Extracts both decision spines, aligns them on decision id, groups
    divergence windows, and (unless ``attribute`` is False) charges
    each window with both sides' journal energy over its interval.
    """
    diff = diff_spines(
        decision_spine(events_a), decision_spine(events_b),
        gap=gap, label_a=label_a, label_b=label_b,
    )
    if attribute:
        attribute_energy(diff, events_a, events_b)
    return diff


# ----------------------------------------------------------------------
# spine persistence (the golden-trace format)
# ----------------------------------------------------------------------
def write_spine_jsonl(spine, path):
    """Write one JSON object per decision; the golden-trace format."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for entry in spine:
            handle.write(json.dumps(entry.to_dict(), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_spine_jsonl(path):
    """Load a spine written by :func:`write_spine_jsonl`."""
    spine = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spine.append(SpineEntry.from_dict(json.loads(line)))
    return spine
