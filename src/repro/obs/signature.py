"""Energy signatures: per-phase power profiles as a validation surface.

Behavioural diffing (:mod:`repro.obs.diff`) catches runs that *decide*
differently; it is blind to runs that decide identically but *spend*
differently — a mis-calibrated power table, a component left in a hot
state, a regression in the energy accounting itself.  Following the
power-profile validation literature ("Software Validation using Power
Profiles", ARENA), this module derives a compact **energy signature**
from any traced run:

1. The run's ``power/span`` journal events give a piecewise-constant
   power function of sim time (with per-component watt attribution).
2. The decision spine (fidelity-changing decisions, infeasibility
   verdicts) plus workload ``phase.begin`` markers give a stable,
   behaviour-keyed list of phase boundaries.
3. :func:`repro.powerscope.phases.fold_phase_energy` integrates power
   between boundaries, yielding one ``{id, joules, components}`` row
   per phase — the signature vector.

Signatures are pure functions of sim timestamps and event payloads
(wall-clock stamps are never consulted), serialize to canonical JSON,
and carry their own tolerance bands, so a blessed ``*.sig.json`` beside
a golden trace spine turns "behaviour matches but energy doesn't" into
a failing exit code: :func:`diff_signatures` aligns on phase ids and
flags out-of-band joule deltas; ``repro verify-profile`` is the CLI.
"""

from __future__ import annotations

import hashlib
import json
import time

from repro.obs.diff import decision_spine
from repro.obs.export import power_spans
from repro.obs.metrics import current_metrics
from repro.powerscope.phases import fold_phase_energy, spans_to_segments

__all__ = [
    "SIGNATURE_VERSION",
    "SignatureError",
    "SignatureDiff",
    "compute_signature",
    "diff_signatures",
    "signature_distance",
    "verify_signature",
    "write_signature",
    "read_signature",
]

SIGNATURE_VERSION = 1

#: Default tolerance bands baked into a blessed signature: a phase is
#: in-band when its joule delta is within ``rel`` of the larger side or
#: ``abs_j`` absolute, whichever is looser.
DEFAULT_REL_TOLERANCE = 0.05
DEFAULT_ABS_TOLERANCE_J = 2.0

_COMPUTE_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01,
                    0.05, 0.1, 0.5, 1.0, 5.0)


class SignatureError(Exception):
    """The event stream cannot yield a signature (no power spans), or a
    signature file is malformed."""


def _as_dict(event):
    return event if isinstance(event, dict) else event.to_dict()


def _spine_digest(spine):
    payload = json.dumps([entry.to_dict() for entry in spine],
                         sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _boundary_labels(events, spine, run_t0, run_t1):
    """Collect ``(ts, label)`` phase boundaries strictly inside the run.

    Decision boundaries come from spine entries that changed behaviour
    (delivered upcalls or reported infeasibility) — pure ``hold`` ticks
    segment nothing.  Workload boundaries come from ``phase.begin``
    instants on the ``workload`` category.
    """
    boundaries = []
    for entry in spine:
        if entry.upcalls:
            kind, application, level = entry.upcalls[0]
            label = f"did{entry.did}:{entry.action}>{application}:{level}"
        elif entry.infeasible:
            label = f"did{entry.did}:infeasible"
        else:
            continue
        boundaries.append((entry.ts, label))
    for event in events:
        record = _as_dict(event)
        if (record.get("cat") != "workload"
                or record.get("name") != "phase.begin"):
            continue
        args = record.get("args") or {}
        workload = args.get("workload", record.get("track", "workload"))
        item = args.get("item", "item")
        boundaries.append((record["ts"], f"{workload}:{item}"))
    boundaries = [(ts, label) for ts, label in boundaries
                  if run_t0 < ts < run_t1]
    boundaries.sort(key=lambda b: b[0])
    return boundaries


def _merge_and_uniquify(boundaries, run_t0):
    """Coalesce same-instant boundaries; make every phase id unique."""
    merged = [(run_t0, "start")]
    for ts, label in boundaries:
        if merged[-1][0] == ts and merged[-1][1] != "start":
            merged[-1] = (ts, merged[-1][1] + "+" + label)
        elif ts > merged[-1][0]:
            merged.append((ts, label))
        # A boundary at exactly run_t0 adds nothing: "start" covers it.
    seen = {}
    unique = []
    for ts, label in merged:
        count = seen.get(label, 0) + 1
        seen[label] = count
        unique.append((ts, label if count == 1 else f"{label}#{count}"))
    return unique


def compute_signature(events, rel_tolerance=DEFAULT_REL_TOLERANCE,
                      abs_tolerance_j=DEFAULT_ABS_TOLERANCE_J,
                      metrics=None):
    """Derive the energy signature of one traced run.

    ``events`` is a recorded stream (TraceEvent objects or JSONL
    dicts) that must contain ``power/span`` events; ``core`` decision
    events and ``workload`` phase markers refine the segmentation when
    present.  Returns the signature as a JSON-shaped dict.
    """
    started = time.perf_counter()
    event_dicts = [_as_dict(event) for event in events]
    spans = power_spans(event_dicts)
    if not spans:
        raise SignatureError(
            "no power/span events in the stream — record with the "
            "'power' trace category enabled"
        )
    segments = spans_to_segments(spans)
    run_t0 = min(seg[0] for seg in segments)
    run_t1 = max(seg[1] for seg in segments)
    if run_t1 <= run_t0:
        raise SignatureError("power journal covers zero sim time")

    spine = decision_spine(event_dicts)
    labelled = _merge_and_uniquify(
        _boundary_labels(event_dicts, spine, run_t0, run_t1), run_t0
    )
    instants = [ts for ts, _label in labelled] + [run_t1]
    folded = fold_phase_energy(segments, instants)

    phases = []
    for (ts, label), phase in zip(labelled, folded):
        duration = phase["t1"] - phase["t0"]
        phases.append({
            "id": label,
            "t0": phase["t0"],
            "t1": phase["t1"],
            "duration_s": duration,
            "joules": phase["joules"],
            "mean_w": phase["joules"] / duration if duration > 0 else 0.0,
            "components": phase["components"],
        })

    signature = {
        "version": SIGNATURE_VERSION,
        "kind": "energy-signature",
        "t0": run_t0,
        "t1": run_t1,
        "duration_s": run_t1 - run_t0,
        "total_joules": sum(p["joules"] for p in phases),
        "phase_count": len(phases),
        "tolerance": {"rel": rel_tolerance, "abs_j": abs_tolerance_j},
        "spine": {"decisions": len(spine), "digest": _spine_digest(spine)},
        "phases": phases,
    }

    registry = metrics if metrics is not None else current_metrics()
    registry.histogram("signature.compute_s", buckets=_COMPUTE_BUCKETS) \
        .observe(time.perf_counter() - started)
    registry.gauge("signature.phase_count").set(len(phases))
    return signature


# ----------------------------------------------------------------------
# comparing signatures
# ----------------------------------------------------------------------
class SignatureDiff:
    """Aligned comparison of two signatures (A = golden, B = candidate).

    ``phases`` holds one row per matched phase id (golden order);
    ``only_a``/``only_b`` list unmatched ids.  ``behaviour_match`` is
    the spine check; ``regression`` is True when behaviour drifted,
    phases appeared/vanished, or any matched phase's joule delta left
    its tolerance band — the "behaviour matches but energy doesn't"
    case is exactly ``behaviour_match and regression``.
    """

    def __init__(self, phases, only_a, only_b, behaviour_match,
                 shape_distance, tolerance, total_a, total_b):
        self.phases = phases
        self.only_a = only_a
        self.only_b = only_b
        self.behaviour_match = behaviour_match
        self.shape_distance = shape_distance
        self.tolerance = tolerance
        self.total_a = total_a
        self.total_b = total_b

    @property
    def out_of_band(self):
        return [p for p in self.phases if not p["in_band"]]

    @property
    def regression(self):
        return (not self.behaviour_match or bool(self.only_a)
                or bool(self.only_b) or bool(self.out_of_band))

    @property
    def first_offender(self):
        """The first phase id that breaks the verification, if any."""
        if self.out_of_band:
            return self.out_of_band[0]["id"]
        if self.only_a:
            return self.only_a[0]
        if self.only_b:
            return self.only_b[0]
        return None

    def to_dict(self):
        record = {
            "behaviour_match": self.behaviour_match,
            "regression": self.regression,
            "shape_distance": self.shape_distance,
            "tolerance": dict(self.tolerance),
            "total_a": self.total_a,
            "total_b": self.total_b,
            "total_delta": self.total_b - self.total_a,
            "matched": len(self.phases),
            "out_of_band": len(self.out_of_band),
            "only_a": list(self.only_a),
            "only_b": list(self.only_b),
            "phases": [dict(p) for p in self.phases],
        }
        if self.first_offender is not None:
            record["first_offender"] = self.first_offender
        return record

    def render(self, max_phases=10):
        """Human-readable per-phase report for the CLI."""
        lines = [
            f"energy profile: {len(self.phases)} matched phase(s), "
            f"total {self.total_a:.1f} J (golden) vs "
            f"{self.total_b:.1f} J (run), "
            f"shape distance {self.shape_distance:.4f}",
            f"tolerance: ±{self.tolerance['rel'] * 100:.1f}% rel, "
            f"±{self.tolerance['abs_j']:.1f} J abs",
        ]
        if not self.behaviour_match:
            lines.append(
                "BEHAVIOUR MISMATCH: decision spines differ — compare "
                "with 'repro diff' first; per-phase deltas below are "
                "best-effort"
            )
        for name, ids in (("golden", self.only_a), ("run", self.only_b)):
            if ids:
                shown = ", ".join(ids[:4])
                more = f" (+{len(ids) - 4} more)" if len(ids) > 4 else ""
                lines.append(f"phases only in {name}: {shown}{more}")
        offenders = self.out_of_band
        if offenders:
            lines.append(f"{len(offenders)} phase(s) out of band:")
            for index, phase in enumerate(offenders):
                if index == max_phases:
                    lines.append(
                        f"  ... {len(offenders) - max_phases} more phase(s)"
                    )
                    break
                lines.append(
                    f"  {phase['id']}: {phase['joules_a']:.1f} J -> "
                    f"{phase['joules_b']:.1f} J "
                    f"(delta {phase['delta_j']:+.1f} J, "
                    f"{phase['rel_delta'] * 100:+.1f}%)"
                )
        elif self.behaviour_match and not self.only_a and not self.only_b:
            lines.append("all phases within tolerance")
        if self.regression:
            lines.append(
                f"verdict: REGRESSION (first offender: "
                f"{self.first_offender or 'spine'})"
            )
        else:
            lines.append("verdict: clean")
        return "\n".join(lines)


def diff_signatures(golden, candidate, rel_tolerance=None,
                    abs_tolerance_j=None):
    """Compare ``candidate`` against ``golden``, aligned on phase ids.

    Tolerances default to the bands baked into the golden signature.
    Returns a :class:`SignatureDiff`.
    """
    tolerance = golden.get("tolerance") or {}
    rel = (rel_tolerance if rel_tolerance is not None
           else tolerance.get("rel", DEFAULT_REL_TOLERANCE))
    abs_j = (abs_tolerance_j if abs_tolerance_j is not None
             else tolerance.get("abs_j", DEFAULT_ABS_TOLERANCE_J))

    index_b = {}
    for phase in candidate.get("phases", ()):
        index_b.setdefault(phase["id"], phase)

    phases = []
    only_a = []
    matched_b = set()
    for phase_a in golden.get("phases", ()):
        phase_b = index_b.get(phase_a["id"])
        if phase_b is None:
            only_a.append(phase_a["id"])
            continue
        matched_b.add(phase_a["id"])
        joules_a = phase_a["joules"]
        joules_b = phase_b["joules"]
        delta = joules_b - joules_a
        scale = max(abs(joules_a), abs(joules_b))
        phases.append({
            "id": phase_a["id"],
            "joules_a": joules_a,
            "joules_b": joules_b,
            "delta_j": delta,
            "rel_delta": delta / scale if scale > 0 else 0.0,
            "in_band": abs(delta) <= max(abs_j, rel * scale),
        })
    only_b = [phase["id"] for phase in candidate.get("phases", ())
              if phase["id"] not in matched_b]

    spine_a = golden.get("spine") or {}
    spine_b = candidate.get("spine") or {}
    behaviour_match = (
        spine_a.get("digest") == spine_b.get("digest")
        and spine_a.get("decisions") == spine_b.get("decisions")
    )

    # Shape distance: half the L1 distance between the two normalized
    # joule distributions over matched phases — 0.0 means identical
    # shape regardless of scale, 1.0 means disjoint spending.
    sum_a = sum(abs(p["joules_a"]) for p in phases)
    sum_b = sum(abs(p["joules_b"]) for p in phases)
    if sum_a > 0 and sum_b > 0:
        shape_distance = 0.5 * sum(
            abs(abs(p["joules_a"]) / sum_a - abs(p["joules_b"]) / sum_b)
            for p in phases
        )
    else:
        shape_distance = 0.0 if sum_a == sum_b else 1.0

    return SignatureDiff(
        phases, only_a, only_b, behaviour_match, shape_distance,
        {"rel": rel, "abs_j": abs_j},
        golden.get("total_joules", sum_a),
        candidate.get("total_joules", sum_b),
    )


def signature_distance(signature_a, signature_b):
    """Symmetric-use comparison of two peer signatures — no blessed side.

    :func:`diff_signatures` frames its inputs as golden-vs-candidate
    (tolerance bands come from the golden, ``regression`` encodes a
    verification verdict); policy comparisons have no blessed side —
    both runs are first-class.  This wraps the same phase alignment and
    shape metric into a compact scalar record: how differently did two
    runs *spend*, independent of any band.

    Returns ``{"shape_distance", "behaviour_match", "matched_phases",
    "unmatched_phases", "total_a", "total_b", "total_delta"}`` — a pure
    function of the two signature dicts.
    """
    diff = diff_signatures(signature_a, signature_b)
    return {
        "shape_distance": diff.shape_distance,
        "behaviour_match": diff.behaviour_match,
        "matched_phases": len(diff.phases),
        "unmatched_phases": len(diff.only_a) + len(diff.only_b),
        "total_a": diff.total_a,
        "total_b": diff.total_b,
        "total_delta": diff.total_b - diff.total_a,
    }


def verify_signature(events, golden, rel_tolerance=None,
                     abs_tolerance_j=None, metrics=None):
    """Compute a run's signature and check it against a blessed one.

    Returns the :class:`SignatureDiff`; bumps the
    ``signature.verify_failures`` counter when it is a regression.
    """
    registry = metrics if metrics is not None else current_metrics()
    candidate = compute_signature(events, metrics=registry)
    diff = diff_signatures(golden, candidate,
                           rel_tolerance=rel_tolerance,
                           abs_tolerance_j=abs_tolerance_j)
    if diff.regression:
        registry.counter("signature.verify_failures").inc()
    return diff


# ----------------------------------------------------------------------
# persistence (the *.sig.json golden format)
# ----------------------------------------------------------------------
def write_signature(signature, path):
    """Write canonical signature JSON (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(signature, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_signature(path):
    """Load and sanity-check a signature written by :func:`write_signature`."""
    with open(path, "r", encoding="utf-8") as handle:
        signature = json.load(handle)
    if signature.get("kind") != "energy-signature":
        raise SignatureError(f"{path}: not an energy signature file")
    if signature.get("version") != SIGNATURE_VERSION:
        raise SignatureError(
            f"{path}: signature version {signature.get('version')} "
            f"!= supported {SIGNATURE_VERSION}"
        )
    return signature
