"""Structured event tracing: the recording half of ``repro.obs``.

The tracer is a low-overhead, append-only (or ring-buffered) recorder
of *categorized* events.  Instrumented subsystems — the sim engine, the
Odyssey core, PowerScope, the fleet coordinator — emit events through a
:class:`Tracer`; exporters in :mod:`repro.obs.export` turn the recorded
stream into JSONL, Chrome trace-event JSON (Perfetto-loadable), or a
joined event↔energy view.

Overhead contract
-----------------
Tracing is opt-in and must cost (almost) nothing when off:

* The default tracer is :data:`NULL_TRACER`, a singleton whose
  ``enabled`` flag is ``False`` and whose emit methods are no-ops.
* Instrumented hot paths do **not** call emit methods per event.  At
  construction they resolve a *gate*::

      self._trace = tracer.gate("sim")   # tracer, or None when off

  and the per-event cost of disabled tracing is one attribute load and
  one ``is not None`` branch.  ``gate`` returns ``None`` both for the
  null tracer and for categories excluded by the tracer's category
  filter, so partial tracing is as cheap as no tracing for the
  excluded subsystems.
* ``python -m repro bench`` includes a ``tracer_overhead`` benchmark
  whose disabled-path time is regression-gated at 3 % in CI.

Timestamps
----------
Every event carries two stamps: ``ts`` — the *domain* time, simulated
seconds for sim-driven subsystems and wall seconds since tracer
creation for the fleet coordinator — supplied by the caller, and
``wall`` — wall seconds since tracer creation, stamped by the tracer.
Exporters map ``ts`` to microseconds for the Chrome trace format.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "JsonlSink",
    "install",
    "uninstall",
    "installed",
    "current_tracer",
]

#: Event phases, matching the Chrome trace-event ``ph`` vocabulary.
INSTANT, BEGIN, END, COMPLETE, COUNTER = "I", "B", "E", "X", "C"


class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    ts:
        Domain timestamp in seconds (simulated time for sim-driven
        subsystems, wall time since tracer creation for the fleet).
    wall:
        Wall seconds since tracer creation, stamped at emit time.
    cat:
        Subsystem category (``"sim"``, ``"power"``, ``"core"``,
        ``"powerscope"``, ``"fleet"``).
    name:
        Event name within the category.
    ph:
        Phase: ``"I"`` instant, ``"B"``/``"E"`` span begin/end,
        ``"X"`` complete span (with ``dur``), ``"C"`` counter.
    track:
        Display track (component / application / process); exporters
        map one track to one Chrome trace thread.
    dur:
        Span duration in seconds (``"X"`` events only).
    args:
        Optional payload dict (JSON-serializable values).
    """

    __slots__ = ("ts", "wall", "cat", "name", "ph", "track", "dur", "args")

    def __init__(self, ts, wall, cat, name, ph, track=None, dur=None,
                 args=None):
        self.ts = ts
        self.wall = wall
        self.cat = cat
        self.name = name
        self.ph = ph
        self.track = track
        self.dur = dur
        self.args = args

    def to_dict(self):
        """JSONL-shaped dict (``dur``/``args``/``track`` omitted if unset)."""
        record = {
            "ts": self.ts,
            "wall": self.wall,
            "cat": self.cat,
            "name": self.name,
            "ph": self.ph,
        }
        if self.track is not None:
            record["track"] = self.track
        if self.dur is not None:
            record["dur"] = self.dur
        if self.args is not None:
            record["args"] = self.args
        return record

    def __repr__(self):
        return (f"<TraceEvent {self.ph} {self.cat}/{self.name} "
                f"ts={self.ts:.6f} track={self.track}>")


class JsonlSink:
    """Streaming sink: append events to disk as they are emitted.

    Attach to a :class:`Tracer` via its ``sink=`` parameter and every
    event reaches disk *at emit time*, before any ring-buffer eviction
    — so an unbounded Figure-22-length run can be traced (and later
    diffed) with a small ring, without losing the prefix.  The on-disk
    format is exactly :func:`repro.obs.export.write_events_jsonl`'s:
    one sorted-key JSON object per line, in emit order.
    """

    def __init__(self, path):
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")
        self.count = 0

    def write(self, event):
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True))
        self._handle.write("\n")
        self.count += 1

    def flush(self):
        if self._handle is not None:
            self._handle.flush()

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class Tracer:
    """Recording tracer.

    Parameters
    ----------
    capacity:
        ``None`` for an unbounded append-only log; an integer for a
        ring buffer keeping the most recent ``capacity`` events
        (overflow increments :attr:`dropped`).
    categories:
        ``None`` traces every category; an iterable of category names
        restricts tracing to those subsystems (``gate`` returns
        ``None`` for the rest, so excluded paths pay nothing).
    sink:
        Optional streaming sink (anything with ``write(event)``, e.g.
        :class:`JsonlSink`).  Every emitted event is forwarded before
        ring eviction can drop it; :meth:`flush` also flushes the sink
        when it has a ``flush`` method.
    clock:
        Wall clock; injectable for tests.
    """

    enabled = True

    def __init__(self, capacity=None, categories=None, sink=None,
                 clock=time.perf_counter):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.events = deque(maxlen=capacity) if capacity else []
        self.categories = frozenset(categories) if categories else None
        self.sink = sink
        self.dropped = 0
        self._clock = clock
        self.t0_wall = clock()
        self._flush_hooks = []

    # ------------------------------------------------------------------
    # gating
    # ------------------------------------------------------------------
    def gate(self, category):
        """This tracer if ``category`` is traced, else ``None``.

        Instrumented classes resolve the gate once and keep the result;
        hot paths then pay one ``is not None`` check when tracing is
        off (see the module docstring's overhead contract).
        """
        if self.categories is None or category in self.categories:
            return self
        return None

    def wall(self):
        """Wall seconds since tracer creation (the fleet's ``ts`` domain)."""
        return self._clock() - self.t0_wall

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _emit(self, event):
        events = self.events
        if self.capacity is not None and len(events) == self.capacity:
            self.dropped += 1
        events.append(event)
        if self.sink is not None:
            self.sink.write(event)
        return event

    def instant(self, ts, cat, name, track=None, args=None):
        """Record a point event."""
        return self._emit(
            TraceEvent(ts, self.wall(), cat, name, INSTANT, track, None, args)
        )

    def counter(self, ts, cat, name, value, track=None):
        """Record a counter sample (a time series point)."""
        return self._emit(
            TraceEvent(ts, self.wall(), cat, name, COUNTER, track, None,
                       {"value": value})
        )

    def begin(self, ts, cat, name, track=None, args=None):
        """Open a span on ``track`` (close it with :meth:`end`)."""
        return self._emit(
            TraceEvent(ts, self.wall(), cat, name, BEGIN, track, None, args)
        )

    def end(self, ts, cat, name, track=None, args=None):
        """Close the most recent open span of ``name`` on ``track``."""
        return self._emit(
            TraceEvent(ts, self.wall(), cat, name, END, track, None, args)
        )

    def complete(self, ts, cat, name, dur, track=None, args=None):
        """Record a finished span: start ``ts``, duration ``dur`` seconds."""
        return self._emit(
            TraceEvent(ts, self.wall(), cat, name, COMPLETE, track, dur, args)
        )

    def replay(self, record, cat=None, name=None, track=None):
        """Re-emit a previously exported event dict (``to_dict`` shape).

        The domain timestamp, phase, duration, and args are preserved;
        ``wall`` is restamped against this tracer's clock.  ``cat``,
        ``name`` and ``track`` override the record's own values — the
        fleet runner uses this to merge worker ring buffers into the
        coordinator's stream under the ``fleet`` category on per-task
        tracks, without colliding with the coordinator's sim-domain
        tracks.
        """
        return self._emit(TraceEvent(
            record["ts"], self.wall(),
            cat if cat is not None else record.get("cat"),
            name if name is not None else record.get("name"),
            record.get("ph", INSTANT),
            track if track is not None else record.get("track"),
            record.get("dur"),
            record.get("args"),
        ))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def add_flush_hook(self, hook):
        """Register ``hook()`` to run at :meth:`flush` (e.g. a machine
        emitting its still-open journal span before export)."""
        self._flush_hooks.append(hook)

    def flush(self):
        """Run flush hooks (and flush the sink); call once before export."""
        for hook in self._flush_hooks:
            hook()
        sink_flush = getattr(self.sink, "flush", None)
        if sink_flush is not None:
            sink_flush()

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    A process-wide singleton (:data:`NULL_TRACER`) stands in wherever
    no tracer was supplied, so instrumented code never needs a ``None``
    check on the tracer object itself — only on the category gate.
    """

    enabled = False
    events = ()
    dropped = 0
    capacity = None
    categories = None

    def gate(self, category):
        return None

    def wall(self):
        return 0.0

    def instant(self, *args, **kwargs):
        return None

    def counter(self, *args, **kwargs):
        return None

    def begin(self, *args, **kwargs):
        return None

    def end(self, *args, **kwargs):
        return None

    def complete(self, *args, **kwargs):
        return None

    def replay(self, *args, **kwargs):
        return None

    def add_flush_hook(self, hook):
        return None

    def flush(self):
        return None

    def __len__(self):
        return 0

    def __iter__(self):
        return iter(())


NULL_TRACER = NullTracer()

#: The process-wide installed tracer; :class:`~repro.sim.Simulator` and
#: :class:`~repro.fleet.FleetRunner` resolve it at construction when no
#: explicit tracer is passed, which is how the CLI's ``--trace`` flag
#: reaches every rig an experiment builds.
_installed = NULL_TRACER


def install(tracer):
    """Make ``tracer`` the process-wide default; returns the previous one."""
    global _installed
    previous = _installed
    _installed = tracer if tracer is not None else NULL_TRACER
    return previous


def uninstall():
    """Reset the process-wide default to the null tracer."""
    return install(NULL_TRACER)


def current_tracer():
    """The process-wide default tracer (the null tracer unless installed)."""
    return _installed


@contextmanager
def installed(tracer):
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = install(tracer)
    try:
        yield tracer
    finally:
        install(previous)
