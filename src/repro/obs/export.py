"""Exporters: JSONL events, Chrome trace-event JSON, metrics snapshots.

Three output formats, all built from the same recorded event stream:

* **JSONL** — one JSON object per event, in emit order.  The stable
  machine-readable format; :func:`read_events_jsonl` round-trips it and
  :func:`join_power` runs the event↔energy join against it.
* **Chrome trace-event JSON** — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Domain seconds
  map to microseconds; each category becomes a process, each track a
  thread, so the sim engine, the power signal, every application's
  upcalls, and the fleet coordinator render as separate swim lanes.
  Counter events (supply/demand joules, machine watts) render as
  time-series tracks.
* **Metrics snapshot** — the :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot dict as JSON.

The event↔energy join
---------------------
The machine emits one ``power/span`` complete-event per closed journal
segment, carrying the segment id (``sid``), watts, and joules.  Core
events (upcalls, fidelity moves, goal decisions) carry a ``power_span``
argument — the sid of the journal span covering the instant they fired.
:func:`power_spans` indexes the former; :func:`join_power` annotates the
latter, answering "what was the machine drawing — and what did that
span cost in joules — when this decision happened", the PowerScope
correlation story applied to our own simulator.
"""

from __future__ import annotations

import json

__all__ = [
    "write_events_jsonl",
    "read_events_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "write_metrics",
    "power_spans",
    "join_power",
    "join_summary",
]

#: Chrome trace-event phases this exporter emits / the validator accepts.
_PHASES = frozenset("IBEXCM")


def _as_dict(event):
    return event if isinstance(event, dict) else event.to_dict()


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_events_jsonl(events, path):
    """Write one JSON object per event, in emit order; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(_as_dict(event), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_events_jsonl(path):
    """Load a JSONL event log back into a list of dicts."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace(events):
    """Convert events to the Chrome trace-event JSON object format.

    Categories map to processes and tracks to threads (named via ``M``
    metadata events); ``ts``/``dur`` convert from seconds to
    microseconds.  Within each track, events are sorted by timestamp,
    so a trace assembled from several sources (or several simulators)
    still satisfies per-track monotonicity.
    """
    records = [_as_dict(e) for e in events]
    pids = {}
    tids = {}
    for record in records:
        cat = record.get("cat") or "trace"
        track = record.get("track") or cat
        if cat not in pids:
            pids[cat] = len(pids) + 1
        if (cat, track) not in tids:
            tids[(cat, track)] = sum(1 for c, _t in tids if c == cat) + 1

    trace_events = []
    for cat, pid in pids.items():
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid,
            "args": {"name": cat},
        })
    for (cat, track), tid in tids.items():
        trace_events.append({
            "ph": "M", "name": "thread_name", "pid": pids[cat], "tid": tid,
            "args": {"name": track},
        })

    def sort_key(indexed):
        index, record = indexed
        cat = record.get("cat") or "trace"
        track = record.get("track") or cat
        return (pids[cat], tids[(cat, track)], record["ts"], index)

    for _index, record in sorted(enumerate(records), key=sort_key):
        cat = record.get("cat") or "trace"
        track = record.get("track") or cat
        entry = {
            "name": record["name"],
            "cat": cat,
            "ph": record["ph"],
            "ts": record["ts"] * 1e6,
            "pid": pids[cat],
            "tid": tids[(cat, track)],
        }
        if record["ph"] == "X":
            entry["dur"] = (record.get("dur") or 0.0) * 1e6
        args = record.get("args")
        if args is not None:
            entry["args"] = args
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events, path):
    """Validate and write the Chrome trace JSON; returns the event count.

    Raises :class:`ValueError` listing the problems if the generated
    trace would not satisfy :func:`validate_chrome_trace` — an invalid
    trace on disk is worse than a loud failure.
    """
    trace = chrome_trace(events)
    problems = validate_chrome_trace(trace)
    if problems:
        raise ValueError(
            "generated Chrome trace is invalid: " + "; ".join(problems)
        )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
        handle.write("\n")
    return len(trace["traceEvents"])


def validate_chrome_trace(trace):
    """Check a Chrome trace object; returns a list of problem strings.

    Enforced: the ``traceEvents`` envelope, per-event required keys
    (``name``/``ph``, plus ``ts``/``pid``/``tid`` for non-metadata
    events and a non-negative ``dur`` for complete events), a known
    phase, and non-decreasing ``ts`` within each ``(pid, tid)`` track.
    An empty list means the trace is valid.
    """
    problems = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["top-level object must be a dict with a 'traceEvents' list"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    last_ts = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if "name" not in event:
            problems.append(f"{where}: missing 'name'")
        if ph == "M":
            if "pid" not in event or "name" not in event.get("args", {}):
                problems.append(f"{where}: metadata event needs pid and "
                                f"args.name")
            continue
        missing = [key for key in ("ts", "pid", "tid") if key not in event]
        if missing:
            problems.append(f"{where}: missing {', '.join(missing)}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: ts must be a number, got {ts!r}")
            continue
        if ph == "X" and event.get("dur", 0) < 0:
            problems.append(f"{where}: negative dur")
        key = (event["pid"], event["tid"])
        previous = last_ts.get(key)
        if previous is not None and ts < previous:
            problems.append(
                f"{where}: ts {ts} goes backwards on track {key} "
                f"(previous {previous})"
            )
        last_ts[key] = ts
    return problems


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def write_metrics(registry_or_snapshot, path):
    """Write a metrics snapshot (or a registry's snapshot) as JSON."""
    snapshot = registry_or_snapshot
    if hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# the event↔energy join
# ----------------------------------------------------------------------
def power_spans(events, branch=None):
    """Index the machine's journal-span events by segment id.

    Returns ``{sid: {"t0", "dur", "watts", "joules", "process",
    "procedure", "components"}}`` built from the ``power/span``
    complete-events the machine emits as journal segments close.

    ``branch`` selects whose spans are indexed: ``None`` (the default)
    keeps only trunk spans — segments stamped with a ``branch`` id by a
    lookahead fork's machine are skipped, so a trace that interleaves
    branch journals with the trunk's still folds to trunk-only energy
    (and branch sids can never collide into the trunk index).  Pass a
    branch id to index that branch's spans instead.
    """
    spans = {}
    for event in events:
        record = _as_dict(event)
        if record.get("cat") != "power" or record.get("name") != "span":
            continue
        args = record.get("args") or {}
        if args.get("branch") != branch:
            continue
        sid = args.get("sid")
        if sid is None:
            continue
        spans[sid] = {
            "t0": record["ts"],
            "dur": record.get("dur", 0.0),
            "watts": args.get("watts"),
            "joules": args.get("joules"),
            "process": args.get("process"),
            "procedure": args.get("procedure"),
            "components": args.get("components"),
        }
    return spans


def join_power(events):
    """Join events carrying a ``power_span`` reference to their span.

    Returns a list of ``{"event": <event dict>, "span": <span dict or
    None>}`` — one entry per event whose args include ``power_span``.
    A ``None`` span means the referenced segment never closed inside
    the recorded window (e.g. the tracer's flush hook did not run).
    """
    spans = power_spans(events)
    joined = []
    for event in events:
        record = _as_dict(event)
        args = record.get("args") or {}
        if "power_span" not in args:
            continue
        joined.append({
            "event": record,
            "span": spans.get(args["power_span"]),
        })
    return joined


def join_summary(joined):
    """Summarize a :func:`join_power` result, surfacing unresolved joins.

    A join is *unresolved* when the referenced journal segment has no
    ``power/span`` event in the recorded window: the sid was a forward
    reference into a segment that merged away, the span event fell out
    of a ring buffer, the ``power`` category was filtered, or the
    tracer's flush hook never ran.  These were previously visible only
    as ``span: None`` entries — easy to miss; the summary makes them a
    first-class count the CLI can warn about.

    Returns ``{"total", "resolved", "unresolved", "unresolved_sids"}``
    where ``unresolved_sids`` is the sorted set of span ids that failed
    to resolve.
    """
    unresolved_sids = set()
    resolved = 0
    for entry in joined:
        if entry["span"] is None:
            args = entry["event"].get("args") or {}
            unresolved_sids.add(args.get("power_span"))
        else:
            resolved += 1
    return {
        "total": len(joined),
        "resolved": resolved,
        "unresolved": len(joined) - resolved,
        "unresolved_sids": sorted(
            sid for sid in unresolved_sids if sid is not None
        ),
    }
