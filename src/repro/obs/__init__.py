"""repro.obs — structured tracing, metrics, and trace export.

The observability layer for the reproduction: a low-overhead event
tracer instrumented into the sim engine, the Odyssey core, PowerScope,
and the fleet; a metrics registry of counters/gauges/histograms; and
exporters producing JSONL event logs, Perfetto-loadable Chrome trace
JSON, and metrics snapshots.  See docs/architecture.md ("Observability")
for the design, the overhead contract, and the event↔energy join.

Quick use::

    from repro.obs import Tracer, installed
    from repro.obs.export import write_chrome_trace

    tracer = Tracer()
    with installed(tracer):              # every sim built here is traced
        result = run_goal_experiment(400.0, initial_energy=6000.0)
    tracer.flush()
    write_chrome_trace(tracer.events, "goal.trace.json")

or from the command line::

    python -m repro trace goal --out traces/goal
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_metrics,
    set_metrics,
)
from repro.obs.signature import (
    SignatureDiff,
    SignatureError,
    compute_signature,
    diff_signatures,
    read_signature,
    verify_signature,
    write_signature,
)
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    TraceEvent,
    Tracer,
    current_tracer,
    install,
    installed,
    uninstall,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "JsonlSink",
    "install",
    "uninstall",
    "installed",
    "current_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_metrics",
    "set_metrics",
    "SignatureDiff",
    "SignatureError",
    "compute_signature",
    "diff_signatures",
    "verify_signature",
    "read_signature",
    "write_signature",
]
