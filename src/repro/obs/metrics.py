"""Metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a named collection of instruments with a
JSON-serializable :meth:`~MetricsRegistry.snapshot`.  The machine, the
Odyssey core, and the fleet runner each expose one (``Machine.metrics``,
``Odyssey.metrics``, ``FleetRunner.metrics``); by default they share the
process-wide registry returned by :func:`current_metrics`, which is what
the CLI's ``--metrics-out`` flag dumps.

Instruments are deliberately tiny — an increment is one attribute add —
so hot paths can update them unconditionally.  Histograms use *fixed*
bucket boundaries chosen at creation, so snapshots from different runs
(or different workers) are mergeable bucket-by-bucket.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_metrics",
    "set_metrics",
]

#: Default histogram boundaries: spans microbenchmark-scale to
#: minute-scale durations (seconds) and small ratios alike.
DEFAULT_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def __repr__(self):
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = None

    def set(self, value):
        self.value = value

    def __repr__(self):
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-boundary histogram with cumulative-friendly bucket counts.

    ``buckets`` are upper bounds; an observation lands in the first
    bucket whose bound is >= the value, or in the implicit overflow
    bucket past the last bound.  Boundaries are fixed at creation so
    two snapshots of the same histogram are mergeable element-wise.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total")

    def __init__(self, name, buckets=DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram buckets must be strictly increasing, got {buckets}"
            )
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value):
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def __repr__(self):
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.4g}>"


class MetricsRegistry:
    """Get-or-create access to named instruments, plus snapshotting."""

    def __init__(self):
        self._instruments = {}

    def _get(self, name, kind, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory()
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name):
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name):
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name, buckets=DEFAULT_BUCKETS):
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def __contains__(self, name):
        return name in self._instruments

    def __len__(self):
        return len(self._instruments)

    def snapshot(self):
        """JSON-serializable dump: ``{counters, gauges, histograms}``."""
        counters, gauges, histograms = {}, {}, {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = {
                    "buckets": list(instrument.buckets),
                    "counts": list(instrument.counts),
                    "count": instrument.count,
                    "sum": instrument.total,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self):
        """Drop every instrument (tests; fresh CLI runs)."""
        self._instruments.clear()


_default = MetricsRegistry()


def current_metrics():
    """The process-wide default registry."""
    return _default


def set_metrics(registry):
    """Replace the process-wide default; returns the previous registry."""
    global _default
    previous = _default
    _default = registry if registry is not None else MetricsRegistry()
    return previous
