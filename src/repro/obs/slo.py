"""Histogram-shape SLO checks over metrics snapshots.

Scalar counters tell you *how much* happened; bucket shapes tell you
*how it was distributed* — a goal controller whose ``goal.demand_ratio``
mass drifts away from 1.0 is mis-predicting even if the run still meets
its goal, and a fleet whose ``fleet.task_wall_s`` tail grows is slowing
down even while every task succeeds.  CI's trace-smoke job asserts on
those shapes from ``--metrics-out`` snapshots using this module.

The check vocabulary mirrors
:func:`repro.obs.export.validate_chrome_trace`: a checker returns a
list of problem strings, empty when the SLO holds, and
:func:`assert_histogram_slo` raises with the full list for test /
CI use.

Bucket semantics match :class:`repro.obs.metrics.Histogram`: ``buckets``
are upper bounds, ``counts`` has one extra trailing overflow bucket,
and boundaries are fixed at creation so shares are comparable across
runs and mergeable across workers.
"""

from __future__ import annotations

__all__ = [
    "histogram_from_snapshot",
    "share_at_or_below",
    "check_histogram_slo",
    "assert_histogram_slo",
]


def histogram_from_snapshot(snapshot, name):
    """The histogram dict for ``name`` from a metrics snapshot.

    Accepts the snapshot dict ``--metrics-out`` writes (or
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` returns).
    Raises :class:`KeyError` with the available names when absent.
    """
    histograms = snapshot.get("histograms") or {}
    if name not in histograms:
        raise KeyError(
            f"no histogram {name!r} in snapshot "
            f"(available: {sorted(histograms) or 'none'})"
        )
    return histograms[name]


def share_at_or_below(histogram, bound):
    """Fraction of observations in buckets with upper bound <= ``bound``.

    ``bound`` must be one of the histogram's bucket boundaries —
    shares are only well-defined on the fixed grid (asking for 0.97 on
    a grid of ... 0.95, 1.0 ... would silently pick a bucket the caller
    did not mean).  Returns 0.0 for an empty histogram.
    """
    buckets = list(histogram["buckets"])
    if bound not in buckets:
        raise ValueError(
            f"bound {bound!r} is not a bucket boundary of {buckets}"
        )
    total = histogram["count"]
    if not total:
        return 0.0
    index = buckets.index(bound)
    return sum(histogram["counts"][:index + 1]) / total


def check_histogram_slo(snapshot, name, min_count=None, max_mean=None,
                        shares=()):
    """Check one histogram's shape; returns a list of problem strings.

    Parameters
    ----------
    min_count:
        Minimum number of observations (a shape over 3 samples is
        noise; this guards against the instrumentation silently dying).
    max_mean:
        Upper bound on the histogram mean (``sum / count``).
    shares:
        Iterable of ``(bound, min_share, max_share)`` triples: the
        fraction of observations at or below ``bound`` must fall in
        ``[min_share, max_share]``; pass ``None`` for an unbounded
        side.
    """
    try:
        histogram = histogram_from_snapshot(snapshot, name)
    except KeyError as error:
        return [str(error)]
    problems = []
    count = histogram["count"]
    if min_count is not None and count < min_count:
        problems.append(f"{name}: count {count} < required {min_count}")
    if max_mean is not None and count:
        mean = histogram["sum"] / count
        if mean > max_mean:
            problems.append(f"{name}: mean {mean:.4g} > allowed {max_mean}")
    for bound, min_share, max_share in shares:
        try:
            share = share_at_or_below(histogram, bound)
        except ValueError as error:
            problems.append(f"{name}: {error}")
            continue
        if min_share is not None and share < min_share:
            problems.append(
                f"{name}: share(<= {bound}) = {share:.3f} < "
                f"required {min_share}"
            )
        if max_share is not None and share > max_share:
            problems.append(
                f"{name}: share(<= {bound}) = {share:.3f} > "
                f"allowed {max_share}"
            )
    return problems


def assert_histogram_slo(snapshot, name, **kwargs):
    """Raise :class:`AssertionError` listing every violated constraint."""
    problems = check_histogram_slo(snapshot, name, **kwargs)
    if problems:
        raise AssertionError(
            f"histogram SLO violated: " + "; ".join(problems)
        )
