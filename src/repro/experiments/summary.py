"""One-call summary of the reproduction's headline results.

``full_report()`` runs a configurable subset of the paper's experiments
and returns a nested dict of the headline numbers — the programmatic
equivalent of EXPERIMENTS.md, used by ``python -m repro report``.
"""

from __future__ import annotations

from repro.experiments.concurrency import concurrency_table
from repro.experiments.fidelity_study import (
    map_energy_table,
    speech_energy_table,
    video_energy_table,
    web_energy_table,
)
from repro.experiments.goal_study import (
    derive_goals,
    fidelity_runtime_bounds,
    run_goal_experiment,
)

__all__ = ["full_report", "render_report"]

# Paper bands for the quick-look comparison column.
PAPER_BANDS = {
    ("video", "hw-only"): "9-10%",
    ("video", "lowest"): "~35%",
    ("speech", "hw-only"): "33-34%",
    ("speech", "lowest"): "69-80%",
    ("map", "hw-only"): "9-19%",
    ("map", "lowest"): "46-70%",
    ("web", "hw-only"): "22-26%",
    ("web", "lowest"): "29-34%",
}

LOWEST_CONFIG = {
    "video": "combined",
    "speech": "hybrid-reduced",
    "map": "crop-secondary",
    "web": "jpeg-5",
}

TABLES = {
    "video": video_energy_table,
    "speech": speech_energy_table,
    "map": map_energy_table,
    "web": web_energy_table,
}


def _band(values):
    return min(values), max(values)


def fidelity_summary(jobs=None):
    """Per-application hardware-PM and lowest-fidelity savings bands.

    With ``jobs > 1`` the tables come from the fleet (same
    measurements, bit-identical values, parallel execution).
    """
    if jobs is not None and jobs > 1:
        from repro.fleet import FleetRunner, energy_table

        runner = FleetRunner(jobs=jobs)
        tables = {app: energy_table(app, runner=runner) for app in TABLES}
    else:
        tables = None
    summary = {}
    for app, table_fn in TABLES.items():
        table = tables[app] if tables is not None else table_fn()
        objects = list(table["baseline"])
        hw = [
            1 - table["hw-only"][o] / table["baseline"][o] for o in objects
        ]
        lowest = [
            1 - table[LOWEST_CONFIG[app]][o] / table["baseline"][o]
            for o in objects
        ]
        summary[app] = {
            "hw-only": _band(hw),
            "lowest": _band(lowest),
        }
    return summary


def goal_summary(initial_energy=6_000.0):
    """Fidelity bounds, derived goals, and whether each was met."""
    t_hi, t_lo = fidelity_runtime_bounds(initial_energy)
    goals = derive_goals(t_hi, t_lo, count=3)
    outcomes = []
    for goal in goals:
        result = run_goal_experiment(goal, initial_energy=initial_energy)
        outcomes.append({
            "goal_seconds": goal,
            "met": result.goal_met,
            "residual": result.residual_energy,
        })
    return {
        "initial_energy": initial_energy,
        "bound_high_fidelity": t_hi,
        "bound_low_fidelity": t_lo,
        "goals": outcomes,
    }


def full_report(include_concurrency=True, include_goal=True,
                goal_energy=6_000.0, jobs=None):
    """Run the headline experiments; returns a nested dict."""
    report = {"fidelity": fidelity_summary(jobs=jobs)}
    if include_concurrency:
        table = concurrency_table(iterations=2)
        report["concurrency"] = {
            config: pair["concurrent"] / pair["alone"] - 1
            for config, pair in table.items()
        }
    if include_goal:
        report["goal"] = goal_summary(goal_energy)
    return report


def render_report(report):
    """Format :func:`full_report` output for the terminal."""
    lines = ["Reproduction headline report", "=" * 30, ""]
    lines.append("Fidelity savings vs baseline (min-max across objects):")
    for app, bands in report["fidelity"].items():
        hw_lo, hw_hi = bands["hw-only"]
        low_lo, low_hi = bands["lowest"]
        lines.append(
            f"  {app:<7} hw-only {hw_lo:5.1%}-{hw_hi:5.1%} "
            f"(paper {PAPER_BANDS[(app, 'hw-only')]})   "
            f"lowest {low_lo:5.1%}-{low_hi:5.1%} "
            f"(paper {PAPER_BANDS[(app, 'lowest')]})"
        )
    if "concurrency" in report:
        lines.append("")
        lines.append("Concurrency: energy added by the background video:")
        for config, extra in report["concurrency"].items():
            lines.append(f"  {config:<17} +{extra:.0%}")
    if "goal" in report:
        goal = report["goal"]
        lines.append("")
        lines.append(
            f"Goal-directed adaptation on {goal['initial_energy']:.0f} J "
            f"(bounds {goal['bound_high_fidelity']:.0f}-"
            f"{goal['bound_low_fidelity']:.0f} s):"
        )
        for outcome in goal["goals"]:
            status = "MET" if outcome["met"] else "MISSED"
            lines.append(
                f"  goal {outcome['goal_seconds']:6.0f} s  {status}  "
                f"residual {outcome['residual']:.0f} J"
            )
    return "\n".join(lines)
