"""Section 3 fidelity experiments: one function per figure.

Each measurement follows the paper's protocol: the object is processed
at a fixed fidelity configuration with dynamic adaptation disabled, and
the client's energy is recorded from experiment start to workload end.
The configuration names below are the figures' bar labels.
"""

from __future__ import annotations

from repro.experiments.rig import build_rig
from repro.workloads.images import IMAGES
from repro.workloads.maps import MAPS
from repro.workloads.utterances import UTTERANCES
from repro.workloads.videos import VIDEO_CLIPS

__all__ = [
    "VIDEO_CONFIGS",
    "SPEECH_CONFIGS",
    "MAP_CONFIGS",
    "WEB_CONFIGS",
    "measure_video",
    "measure_speech",
    "measure_map",
    "measure_web",
    "video_energy_table",
    "speech_energy_table",
    "map_energy_table",
    "web_energy_table",
]

# Figure 6 bars: (hardware PM enabled, video fidelity level).
VIDEO_CONFIGS = {
    "baseline": (False, "baseline"),
    "hw-only": (True, "baseline"),
    "premiere-b": (True, "premiere-b"),
    "premiere-c": (True, "premiere-c"),
    "reduced-window": (True, "reduced-window"),
    "combined": (True, "combined"),
}

# Figure 8 bars: (hardware PM, execution mode, speech model).
SPEECH_CONFIGS = {
    "baseline": (False, "local", "full"),
    "hw-only": (True, "local", "full"),
    "reduced": (True, "local", "reduced"),
    "remote": (True, "remote", "full"),
    "hybrid": (True, "hybrid", "full"),
    "remote-reduced": (True, "remote", "reduced"),
    "hybrid-reduced": (True, "hybrid", "reduced"),
}

# Figure 10 bars: (hardware PM, map fidelity).
MAP_CONFIGS = {
    "baseline": (False, "full"),
    "hw-only": (True, "full"),
    "minor-filter": (True, "minor-filter"),
    "secondary-filter": (True, "secondary-filter"),
    "cropped": (True, "cropped"),
    "crop-minor": (True, "crop-minor"),
    "crop-secondary": (True, "crop-secondary"),
}

# Figure 13 bars: (hardware PM, JPEG quality).
WEB_CONFIGS = {
    "baseline": (False, "full"),
    "hw-only": (True, "full"),
    "jpeg-75": (True, "jpeg-75"),
    "jpeg-50": (True, "jpeg-50"),
    "jpeg-25": (True, "jpeg-25"),
    "jpeg-5": (True, "jpeg-5"),
}


def measure_video(clip, config, costs=None):
    """Energy (J) to play ``clip`` under a Figure 6 configuration."""
    pm_enabled, level = VIDEO_CONFIGS[config]
    rig = build_rig(pm_enabled=pm_enabled, costs=costs)
    player = rig.apps["video"]
    player.set_fidelity(level)
    process = rig.sim.spawn(player.play(clip), name="video-exp")
    return rig.run_until_complete(process)


def measure_speech(utterance, config, costs=None):
    """Energy (J) to recognize ``utterance`` under a Figure 8 config.

    The display is turned off whenever power management is enabled —
    speech interaction needs no screen (paper Section 3.1).
    """
    pm_enabled, mode, model = SPEECH_CONFIGS[config]
    rig = build_rig(
        pm_enabled=pm_enabled,
        display_policy="off" if pm_enabled else "bright",
        speech_mode=mode,
        costs=costs,
    )
    recognizer = rig.apps["speech"]
    recognizer.set_fidelity(model)
    process = rig.sim.spawn(recognizer.recognize(utterance), name="speech-exp")
    return rig.run_until_complete(process)


def measure_map(city, config, think_time_s=5.0, costs=None):
    """Energy (J) to fetch and view ``city`` under a Figure 10 config."""
    pm_enabled, level = MAP_CONFIGS[config]
    rig = build_rig(
        pm_enabled=pm_enabled, think_time_s=think_time_s, costs=costs
    )
    viewer = rig.apps["map"]
    process = rig.sim.spawn(viewer.view(city, fidelity=level), name="map-exp")
    return rig.run_until_complete(process)


def measure_web(image, config, think_time_s=5.0, costs=None):
    """Energy (J) to fetch and view ``image`` under a Figure 13 config."""
    pm_enabled, quality = WEB_CONFIGS[config]
    rig = build_rig(
        pm_enabled=pm_enabled, think_time_s=think_time_s, costs=costs
    )
    browser = rig.apps["web"]
    process = rig.sim.spawn(browser.browse(image, quality=quality), name="web-exp")
    return rig.run_until_complete(process)


# ----------------------------------------------------------------------
# whole-figure sweeps: {config: {object: joules}}
# ----------------------------------------------------------------------
def video_energy_table(costs=None, clips=VIDEO_CLIPS, configs=None):
    configs = configs or VIDEO_CONFIGS
    return {
        config: {clip.name: measure_video(clip, config, costs) for clip in clips}
        for config in configs
    }


def speech_energy_table(costs=None, utterances=UTTERANCES, configs=None):
    configs = configs or SPEECH_CONFIGS
    return {
        config: {
            utt.name: measure_speech(utt, config, costs) for utt in utterances
        }
        for config in configs
    }


def map_energy_table(costs=None, maps=MAPS, think_time_s=5.0, configs=None):
    configs = configs or MAP_CONFIGS
    return {
        config: {
            city.name: measure_map(city, config, think_time_s, costs)
            for city in maps
        }
        for config in configs
    }


def web_energy_table(costs=None, images=IMAGES, think_time_s=5.0, configs=None):
    configs = configs or WEB_CONFIGS
    return {
        config: {
            image.name: measure_web(image, config, think_time_s, costs)
            for image in images
        }
        for config in configs
    }
