"""Figure data bundles: the plot data behind every paper figure.

Each ``figure_*`` function runs the corresponding experiment and
returns a dict of named CSV-ready tables; :func:`export_figures`
writes them all to a directory so any plotting tool can redraw the
paper.  Used by ``python -m repro export-figures``.
"""

from __future__ import annotations

import os

from repro.analysis.export import energy_table_csv, timeline_csv, write_csv
from repro.analysis.linear import fit_linear
from repro.experiments.concurrency import concurrency_table
from repro.experiments.fidelity_study import (
    map_energy_table,
    measure_map,
    measure_web,
    speech_energy_table,
    video_energy_table,
    web_energy_table,
)
from repro.experiments.goal_study import (
    derive_goals,
    fidelity_runtime_bounds,
    run_goal_experiment,
)
from repro.experiments.zoned_study import (
    ZONE_GRIDS,
    measure_map_zoned,
    measure_video_zoned,
)
from repro.workloads import THINK_SWEEP_S, image_by_name, map_by_name
from repro.workloads.videos import VideoClip

__all__ = ["FIGURES", "export_figures"]


def figure_06():
    """Video energy by fidelity configuration."""
    return {"fig06_video": energy_table_csv(video_energy_table())}


def figure_08():
    """Speech energy by execution strategy."""
    return {"fig08_speech": energy_table_csv(speech_energy_table())}


def figure_10():
    """Map energy by fidelity, 5 s think time."""
    return {"fig10_map": energy_table_csv(map_energy_table())}


def figure_11():
    """Map energy vs think time with linear fits."""
    city = map_by_name("san-jose")
    rows = ["config,think_s,energy_j,fit_intercept,fit_slope,fit_r2"]
    for config in ("baseline", "hw-only", "crop-secondary"):
        energies = [
            measure_map(city, config, think_time_s=t) for t in THINK_SWEEP_S
        ]
        fit = fit_linear(THINK_SWEEP_S, energies)
        for think, energy in zip(THINK_SWEEP_S, energies):
            rows.append(
                f"{config},{think},{energy},{fit.intercept},"
                f"{fit.slope},{fit.r_squared}"
            )
    return {"fig11_map_thinktime": "\n".join(rows) + "\n"}


def figure_13():
    """Web energy by JPEG quality, 5 s think time."""
    return {"fig13_web": energy_table_csv(web_energy_table())}


def figure_14():
    """Web energy vs think time with linear fits."""
    image = image_by_name("image-1")
    rows = ["config,think_s,energy_j,fit_intercept,fit_slope,fit_r2"]
    for config in ("baseline", "hw-only", "jpeg-5"):
        energies = [
            measure_web(image, config, think_time_s=t) for t in THINK_SWEEP_S
        ]
        fit = fit_linear(THINK_SWEEP_S, energies)
        for think, energy in zip(THINK_SWEEP_S, energies):
            rows.append(
                f"{config},{think},{energy},{fit.intercept},"
                f"{fit.slope},{fit.r_squared}"
            )
    return {"fig14_web_thinktime": "\n".join(rows) + "\n"}


def figure_15():
    """Concurrency: composite alone vs with background video."""
    table = concurrency_table(iterations=3)
    rows = ["config,alone_j,concurrent_j"]
    for config, pair in table.items():
        rows.append(f"{config},{pair['alone']},{pair['concurrent']}")
    return {"fig15_concurrency": "\n".join(rows) + "\n"}


def figure_18():
    """Zoned-backlighting projection for video and map."""
    clip = VideoClip("fig18-clip", 30.0, 12.0, 16_250)
    city = map_by_name("allentown")
    rows = ["app,config,zones,energy_j,zones_lit"]
    for config in ("hw-only", "combined"):
        for zones in ZONE_GRIDS:
            energy, lit = measure_video_zoned(clip, config, zones)
            rows.append(f"video,{config},{zones},{energy},{lit}")
    for config in ("hw-only", "crop-secondary"):
        for zones in ZONE_GRIDS:
            energy, lit = measure_map_zoned(city, config, zones)
            rows.append(f"map,{config},{zones},{energy},{lit}")
    return {"fig18_zoned": "\n".join(rows) + "\n"}


def figure_19(initial_energy=6_000.0):
    """Goal-directed traces: supply/demand series + fidelity steps."""
    t_hi, t_lo = fidelity_runtime_bounds(initial_energy)
    goals = derive_goals(t_hi, t_lo, count=4)
    bundles = {}
    for label, goal in (("short", goals[0]), ("long", goals[-1])):
        result = run_goal_experiment(goal, initial_energy=initial_energy)
        bundles[f"fig19_trace_{label}"] = timeline_csv(
            result.timeline, categories={"energy", "fidelity"}
        )
    return bundles


FIGURES = {
    "fig06": figure_06,
    "fig08": figure_08,
    "fig10": figure_10,
    "fig11": figure_11,
    "fig13": figure_13,
    "fig14": figure_14,
    "fig15": figure_15,
    "fig18": figure_18,
    "fig19": figure_19,
}


def export_figures(directory, figures=None, jobs=None, cache=None):
    """Write the selected figures' data bundles as CSV files.

    Returns the list of file paths written.  With ``jobs > 1`` (or a
    ``cache`` directory) each figure regenerates as one fleet task —
    figures are independent, so they parallelize and cache whole.
    """
    os.makedirs(directory, exist_ok=True)
    selected = figures or sorted(FIGURES)
    for name in selected:
        if name not in FIGURES:
            raise KeyError(
                f"unknown figure {name!r}; available: {sorted(FIGURES)}"
            )
    if (jobs is not None and jobs > 1) or cache is not None:
        bundles = _figure_bundles_fleet(selected, jobs, cache)
    else:
        bundles = [(name, FIGURES[name]()) for name in selected]
    written = []
    for _name, bundle in bundles:
        for stem, text in bundle.items():
            path = os.path.join(directory, f"{stem}.csv")
            write_csv(path, text)
            written.append(path)
    return written


def _figure_bundles_fleet(selected, jobs, cache):
    from repro.fleet import FleetRunner, figures_campaign

    spec = figures_campaign(selected)
    result = FleetRunner(jobs=jobs, cache=cache).run(spec)
    result.raise_on_failure()
    return [(name, result.value(name)) for name in selected]
