"""Headline-percentage calibration bands vs the paper's figures.

The band definitions used to live inline in ``scripts/calibrate.py``;
they now live here so the script and the ``repro calibrate``
subcommand share one implementation, report structured results
(``--json``), and exit nonzero when any band misses — which is what
lets CI run the check at all.

Each band pins one of the paper's headline savings percentages (e.g.
"combined video adaptation saves 28-30% over hardware-only") against
the reproduced fidelity tables.  A band is OK when the measured
min..max range overlaps the paper's published range.
"""

from __future__ import annotations

__all__ = [
    "calibration_report",
    "render_report",
    "report_ok",
]


def savings(table, config, reference):
    """Per-objective fractional savings of ``config`` vs ``reference``."""
    ref = table[reference]
    cfg = table[config]
    return [1.0 - cfg[obj] / ref[obj] for obj in ref]


def _band(label, values, lo, hi, vs="hw-only"):
    measured_lo, measured_hi = min(values), max(values)
    return {
        "label": label,
        "vs": vs,
        "measured_lo": measured_lo,
        "measured_hi": measured_hi,
        "paper_lo": lo,
        "paper_hi": hi,
        "ok": measured_hi >= lo and measured_lo <= hi,
    }


def calibration_report():
    """Compute every figure's bands; returns a JSON-shaped report."""
    from repro.experiments.fidelity_study import (
        map_energy_table,
        speech_energy_table,
        video_energy_table,
        web_energy_table,
    )

    figures = []

    video = video_energy_table()
    figures.append({
        "name": "video",
        "figure": "Figure 6",
        "baseline": {k: round(v) for k, v in video["baseline"].items()},
        "bands": [
            _band("hw-only", savings(video, "hw-only", "baseline"),
                  0.09, 0.10, "baseline"),
            _band("premiere-c", savings(video, "premiere-c", "hw-only"),
                  0.16, 0.17),
            _band("reduced-window",
                  savings(video, "reduced-window", "hw-only"), 0.19, 0.20),
            _band("combined", savings(video, "combined", "hw-only"),
                  0.28, 0.30),
            _band("combined vs baseline",
                  savings(video, "combined", "baseline"),
                  0.34, 0.36, "baseline"),
        ],
    })

    speech = speech_energy_table()
    figures.append({
        "name": "speech",
        "figure": "Figure 8",
        "baseline": {k: round(v) for k, v in speech["baseline"].items()},
        "bands": [
            _band("hw-only", savings(speech, "hw-only", "baseline"),
                  0.33, 0.34, "baseline"),
            _band("reduced", savings(speech, "reduced", "hw-only"),
                  0.25, 0.46),
            _band("remote", savings(speech, "remote", "hw-only"),
                  0.33, 0.44),
            _band("hybrid", savings(speech, "hybrid", "hw-only"),
                  0.47, 0.55),
            _band("remote-reduced",
                  savings(speech, "remote-reduced", "hw-only"), 0.42, 0.65),
            _band("hybrid-reduced",
                  savings(speech, "hybrid-reduced", "hw-only"), 0.53, 0.70),
            _band("hybrid-red vs baseline",
                  savings(speech, "hybrid-reduced", "baseline"),
                  0.69, 0.80, "baseline"),
        ],
    })

    mp = map_energy_table()
    figures.append({
        "name": "map",
        "figure": "Figure 10",
        "baseline": {k: round(v) for k, v in mp["baseline"].items()},
        "bands": [
            _band("hw-only", savings(mp, "hw-only", "baseline"),
                  0.09, 0.19, "baseline"),
            _band("minor-filter", savings(mp, "minor-filter", "hw-only"),
                  0.06, 0.51),
            _band("secondary-filter",
                  savings(mp, "secondary-filter", "hw-only"), 0.23, 0.55),
            _band("cropped", savings(mp, "cropped", "hw-only"), 0.14, 0.49),
            _band("crop-secondary",
                  savings(mp, "crop-secondary", "hw-only"), 0.36, 0.66),
            _band("lowest vs baseline",
                  savings(mp, "crop-secondary", "baseline"),
                  0.46, 0.70, "baseline"),
        ],
    })

    web = web_energy_table()
    figures.append({
        "name": "web",
        "figure": "Figure 13",
        "baseline": {k: round(v) for k, v in web["baseline"].items()},
        "bands": [
            _band("hw-only", savings(web, "hw-only", "baseline"),
                  0.22, 0.26, "baseline"),
            _band("jpeg-5", savings(web, "jpeg-5", "hw-only"), 0.04, 0.14),
            _band("jpeg-5 vs baseline", savings(web, "jpeg-5", "baseline"),
                  0.29, 0.34, "baseline"),
        ],
    })

    return {
        "figures": figures,
        "ok": all(band["ok"] for figure in figures
                  for band in figure["bands"]),
    }


def report_ok(report):
    return bool(report["ok"])


def render_report(report):
    """The classic scripts/calibrate.py output, line for line."""
    lines = []
    for figure in report["figures"]:
        lines.append(f"{figure['name']} ({figure['figure']})")
        lines.append(f"   baseline energies: {figure['baseline']}")
        for band in figure["bands"]:
            flag = "OK " if band["ok"] else "MISS"
            lines.append(
                f"  [{flag}] {band['label']:<28} vs {band['vs']:<8} "
                f"measured {band['measured_lo'] * 100:5.1f}-"
                f"{band['measured_hi'] * 100:5.1f}%   "
                f"paper {band['paper_lo'] * 100:.0f}-"
                f"{band['paper_hi'] * 100:.0f}%"
            )
    return "\n".join(lines)
