"""Trial runner: repeat an experiment with per-trial variation.

The paper reports means of five (sometimes ten) trials with 90 %
confidence intervals; run-to-run variation in the testbed came from
wireless transfer times and scheduling noise.  Here each trial gets a
seeded, slightly perturbed cost model, making the error bars meaningful
while keeping the whole suite deterministic.
"""

from __future__ import annotations

import pickle

from repro.analysis.stats import summarize
from repro.apps.costs import DEFAULT_COSTS

__all__ = ["run_trials", "trial_costs"]


def trial_costs(trial, base_costs=None, spread=0.03):
    """The cost model for one trial (trial 0 = unperturbed calibration)."""
    base = base_costs or DEFAULT_COSTS
    if trial == 0:
        return base
    return base.jittered(seed=trial, spread=spread)


def _trial_value(experiment, base_costs, trial, spread):
    """One trial's measurement — module-level so pool workers can run it."""
    return experiment(trial_costs(trial, base_costs, spread))


def run_trials(experiment, trials=5, base_costs=None, spread=0.03,
               jobs=None, timeout_s=None):
    """Run ``experiment(costs) -> float`` for several trials.

    Returns a :class:`~repro.analysis.stats.TrialStats` over the trial
    values.  With ``jobs > 1`` the trials execute on the fleet's process
    pool; each trial's costs are seeded by its trial number alone, so
    the stats are bit-identical to the serial run.  An experiment that
    cannot be pickled (a lambda or closure) degrades to serial.
    """
    if trials < 1:
        raise ValueError(
            f"run_trials needs at least one trial, got trials={trials!r}"
        )
    if jobs is not None and jobs > 1 and trials > 1:
        try:
            pickle.dumps((experiment, base_costs))
        except Exception:
            pass  # unpicklable experiment: fall through to the serial path
        else:
            return _run_trials_fleet(
                experiment, trials, base_costs, spread, jobs, timeout_s
            )
    values = [
        experiment(trial_costs(trial, base_costs, spread))
        for trial in range(trials)
    ]
    return summarize(values)


def _run_trials_fleet(experiment, trials, base_costs, spread, jobs,
                      timeout_s):
    from repro.fleet import CampaignSpec, FleetRunner, Task

    tasks = [
        Task(
            id=f"trial-{trial}",
            fn="repro.experiments.runner:_trial_value",
            params={"trial": trial, "spread": spread},
            payload=(experiment, base_costs),
        )
        for trial in range(trials)
    ]
    spec = CampaignSpec(name="trials", tasks=tasks)
    result = FleetRunner(jobs=jobs, timeout_s=timeout_s).run(spec)
    result.raise_on_failure()
    values = [result.value(f"trial-{trial}") for trial in range(trials)]
    return summarize(values)
