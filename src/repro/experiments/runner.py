"""Trial runner: repeat an experiment with per-trial variation.

The paper reports means of five (sometimes ten) trials with 90 %
confidence intervals; run-to-run variation in the testbed came from
wireless transfer times and scheduling noise.  Here each trial gets a
seeded, slightly perturbed cost model, making the error bars meaningful
while keeping the whole suite deterministic.
"""

from __future__ import annotations

from repro.analysis.stats import summarize
from repro.apps.costs import DEFAULT_COSTS

__all__ = ["run_trials", "trial_costs"]


def trial_costs(trial, base_costs=None, spread=0.03):
    """The cost model for one trial (trial 0 = unperturbed calibration)."""
    base = base_costs or DEFAULT_COSTS
    if trial == 0:
        return base
    return base.jittered(seed=trial, spread=spread)


def run_trials(experiment, trials=5, base_costs=None, spread=0.03):
    """Run ``experiment(costs) -> float`` for several trials.

    Returns a :class:`~repro.analysis.stats.TrialStats` over the trial
    values.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    values = [
        experiment(trial_costs(trial, base_costs, spread))
        for trial in range(trials)
    ]
    return summarize(values)
