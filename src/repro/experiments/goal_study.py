"""Section 5: goal-directed energy adaptation experiments.

The workload is the composite application (one iteration started every
25 seconds) running concurrently with the video player as a background
newsfeed; priorities are speech < video < map < web.  Odyssey receives
an initial energy value and a duration goal, monitors supply and
demand, and directs fidelity adaptation.  An experiment succeeds when
the energy supply lasts at least the specified duration.

Because the reproduction's absolute power levels are model outputs (see
DESIGN.md Section 5), feasible goal durations are *derived* the same
way the paper chose its 20–26 minute goals relative to the 19:27
highest-fidelity and 27:06 lowest-fidelity runtimes: by bracketing the
measured fidelity bounds of this workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps import CompositeApplication
from repro.core import Odyssey
from repro.experiments.concurrency import LOWEST_LEVELS
from repro.experiments.rig import build_rig
from repro.hardware.battery import Battery
from repro.workloads.stochastic import generate_schedules
from repro.workloads.utterances import UTTERANCES
from repro.workloads.videos import VIDEO_CLIPS

__all__ = [
    "GoalResult",
    "build_goal_rig",
    "run_goal_experiment",
    "fidelity_runtime_bounds",
    "derive_goals",
    "halflife_sweep",
    "run_bursty_experiment",
]

DEFAULT_INITIAL_ENERGY_J = 12_000.0  # paper Section 5.2
COMPOSITE_PERIOD_S = 25.0


@dataclass
class GoalResult:
    """Outcome of one goal-directed trial (a Figure 20/21/22 row)."""

    goal_seconds: float
    goal_met: bool
    residual_energy: float
    survived_seconds: float
    adaptations: dict = field(default_factory=dict)
    timeline: object = None
    infeasible_reported: bool = False
    profile: object = None  # EnergyProfile when profiling was requested

    @property
    def total_adaptations(self):
        """Total upcalls across all applications."""
        return sum(self.adaptations.values())


def _spawn_workload(rig, horizon):
    """The Section 5.2 workload: composite every 25 s + video newsfeed."""
    composite = CompositeApplication(
        rig.apps["speech"], rig.apps["web"], rig.apps["map"]
    )

    def composite_main():
        yield from composite.run_every(COMPOSITE_PERIOD_S, until=horizon)

    def video_main():
        yield from rig.apps["video"].play_loop(VIDEO_CLIPS[0], duration=horizon)

    rig.sim.spawn(composite_main(), name="composite-workload")
    rig.sim.spawn(video_main(), name="video-newsfeed")
    return composite


def build_goal_rig(initial_energy=DEFAULT_INITIAL_ENERGY_J, costs=None,
                   priorities=None, supply=None, monitor_factory=None):
    """Rig with a finite battery and all four applications registered.

    ``monitor_factory(machine)`` overrides the power-measurement source
    (e.g. the SmartBattery gauge of Section 5.1.1); ``supply`` overrides
    the ideal battery (e.g. a Peukert model).
    """
    battery = supply if supply is not None else Battery(initial_energy)
    rig = build_rig(
        pm_enabled=True, costs=costs, supply=battery, priorities=priorities
    )
    monitor = monitor_factory(rig.machine) if monitor_factory else None
    odyssey = Odyssey(rig.machine, timeline=rig.timeline, monitor=monitor)
    for name in ("speech", "video", "map", "web"):
        odyssey.register_application(rig.apps[name])
    return rig, odyssey, battery


def _run_to_goal(rig, battery, goal_seconds):
    """Step until the goal instant or battery exhaustion."""
    failed_at = None
    while rig.sim.now < goal_seconds:
        if not rig.sim.step():
            break
        if battery.exhausted:
            failed_at = rig.sim.now
            break
    rig.machine.advance()
    if failed_at is None and battery.exhausted:
        failed_at = rig.sim.now
    return failed_at


def run_goal_experiment(goal_seconds, initial_energy=DEFAULT_INITIAL_ENERGY_J,
                        halflife_fraction=0.10, costs=None,
                        extensions=(), priorities=None, supply=None,
                        monitor_factory=None, **controller_kwargs):
    """One trial: adapt toward ``goal_seconds`` on ``initial_energy``.

    ``extensions`` is a sequence of ``(at_seconds, extra_seconds)``
    pairs modeling the user revising the duration estimate mid-run
    (paper Section 5.4).
    """
    rig, odyssey, battery = build_goal_rig(
        initial_energy, costs, priorities,
        supply=supply, monitor_factory=monitor_factory,
    )
    controller = odyssey.set_goal(
        initial_energy, goal_seconds,
        halflife_fraction=halflife_fraction, **controller_kwargs,
    )
    horizon = (goal_seconds + sum(e for _t, e in extensions)) * 1.5
    _spawn_workload(rig, horizon)
    odyssey.start()
    for at_seconds, extra in extensions:
        rig.sim.schedule(at_seconds, lambda _t, e=extra: controller.extend_goal(e))
    failed_at = _run_to_goal(rig, battery, controller.goal_seconds)
    goal_met = failed_at is None
    return GoalResult(
        goal_seconds=controller.goal_seconds,
        goal_met=goal_met,
        residual_energy=max(0.0, battery.residual),
        survived_seconds=failed_at if failed_at is not None else rig.sim.now,
        adaptations=odyssey.viceroy.adaptation_counts(),
        timeline=rig.timeline,
        infeasible_reported=controller.infeasible_reported,
    )


# ----------------------------------------------------------------------
# deriving feasible goals (the Figure 20 x-axis)
# ----------------------------------------------------------------------
def _pinned_runtime(initial_energy, fidelity, costs=None):
    """Runtime of the workload at a pinned fidelity until exhaustion."""
    rig, _odyssey, battery = build_goal_rig(initial_energy, costs)
    if fidelity == "lowest":
        for name, level in LOWEST_LEVELS.items():
            rig.apps[name].set_fidelity(level)
    _spawn_workload(rig, horizon=1e7)
    while not battery.exhausted:
        if not rig.sim.step():
            break
    return rig.sim.now


def fidelity_runtime_bounds(initial_energy=DEFAULT_INITIAL_ENERGY_J, costs=None):
    """(highest-fidelity runtime, lowest-fidelity runtime).

    The paper's analogues are 19:27 and 27:06 minutes on 12 000 J.
    """
    t_hi = _pinned_runtime(initial_energy, "highest", costs)
    t_lo = _pinned_runtime(initial_energy, "lowest", costs)
    return t_hi, t_lo


def derive_goals(t_hi, t_lo, count=4):
    """Evenly spaced goals bracketing the fidelity bounds.

    Matches the paper's placement: the shortest goal slightly exceeds
    the highest-fidelity runtime (1200 s vs 19:27), the longest sits
    slightly inside the lowest-fidelity runtime (1560 s vs 27:06).
    The inside margin also absorbs the ±3 % per-trial cost jitter, so
    the longest goal stays feasible in every trial.
    """
    lo = t_hi * 1.03
    hi = t_lo * 0.94
    if count == 1:
        return [lo]
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


# ----------------------------------------------------------------------
# Figure 21: sensitivity to the smoothing half-life
# ----------------------------------------------------------------------
def halflife_sweep(halflives=(0.01, 0.05, 0.10, 0.15), goal_seconds=None,
                   initial_energy=13_000.0, trials=5, costs_for_trial=None):
    """Run the goal experiment across smoothing half-life values.

    Returns ``{halflife: [GoalResult, ...]}``.
    """
    from repro.experiments.runner import trial_costs

    if goal_seconds is None:
        t_hi, t_lo = fidelity_runtime_bounds(initial_energy)
        goal_seconds = derive_goals(t_hi, t_lo, count=3)[1]  # mid-range
    results = {}
    for halflife in halflives:
        results[halflife] = [
            run_goal_experiment(
                goal_seconds,
                initial_energy=initial_energy,
                halflife_fraction=halflife,
                costs=(costs_for_trial or trial_costs)(trial),
            )
            for trial in range(trials)
        ]
    return results


# ----------------------------------------------------------------------
# Figure 22: longer-duration bursty workload with a goal extension
# ----------------------------------------------------------------------
def _bursty_app_main(rig, name, schedule, minute_s=60.0):
    """One application alternating active/idle minutes per its schedule."""
    sim = rig.sim
    apps = rig.apps
    from repro.workloads.cursor import WorkloadCursor
    from repro.workloads.images import IMAGES
    from repro.workloads.maps import MAPS

    phases = WorkloadCursor(f"bursty-{name}", sim=sim)
    for minute in range(len(schedule)):
        minute_end = (minute + 1) * minute_s
        if not schedule.active_in_minute(minute):
            if sim.now < minute_end:
                yield sim.timeout(minute_end - sim.now)
            continue
        phases.begin(f"min{minute}")
        if name == "video":
            yield from apps["video"].play_loop(
                VIDEO_CLIPS[0], duration=max(0.0, minute_end - sim.now)
            )
        elif name == "speech":
            index = 0
            while sim.now < minute_end - 10.0:
                yield from apps["speech"].recognize(
                    UTTERANCES[index % len(UTTERANCES)]
                )
                index += 1
                yield sim.timeout(10.0)
        elif name == "map":
            index = 0
            while sim.now < minute_end - 15.0:
                yield from apps["map"].view(MAPS[index % len(MAPS)])
                index += 1
        elif name == "web":
            index = 0
            while sim.now < minute_end - 10.0:
                yield from apps["web"].browse(IMAGES[index % len(IMAGES)])
                index += 1
        phases.end()
        if sim.now < minute_end:
            yield sim.timeout(minute_end - sim.now)


def run_bursty_experiment(seed, goal_seconds, extension=(0.0, 0.0),
                          initial_energy=None, energy_margin=1.05,
                          costs=None, halflife_fraction=0.10,
                          profile_rate_hz=None, profile_seed=0,
                          profile_eager=False):
    """One Figure 22 trial: bursty workload, optional mid-run extension.

    When ``initial_energy`` is None it is sized so the *total* goal is
    feasible at lowest fidelity with ``energy_margin`` headroom — the
    same relationship the paper's 90 000 J bears to its 3:15 goal.

    ``profile_rate_hz`` additionally runs a PowerScope collection pass
    (multimeter + system monitor) over the whole trial and attaches the
    correlated :class:`~repro.powerscope.profile.EnergyProfile` to the
    result — the long-duration hot path ``python -m repro bench`` times.
    ``profile_eager`` selects the historical one-event-per-sample
    multimeter instead of the lazy journal replay.
    """
    extend_at, extend_by = extension
    total_goal = goal_seconds + extend_by
    minutes = int(total_goal / 60.0) + 3
    app_names = ("speech", "video", "map", "web")

    if initial_energy is None:
        probe_seconds = min(600.0, goal_seconds / 4)
        rate = _bursty_power_probe(seed, probe_seconds, costs)
        initial_energy = rate * total_goal * energy_margin

    rig, odyssey, battery = build_goal_rig(initial_energy, costs)
    controller = odyssey.set_goal(
        initial_energy, goal_seconds, halflife_fraction=halflife_fraction
    )
    schedules = generate_schedules(app_names, minutes, seed)
    for name in app_names:
        rig.sim.spawn(
            _bursty_app_main(rig, name, schedules[name]), name=f"bursty-{name}"
        )
    odyssey.start()
    meter = monitor = None
    if profile_rate_hz is not None:
        from repro.powerscope import Multimeter, SystemMonitor

        monitor = SystemMonitor(rig.machine, seed=profile_seed)
        meter = Multimeter(rig.machine, rate_hz=profile_rate_hz,
                           monitor=monitor, eager=profile_eager)
        meter.start()
        # Stop collection at exactly the goal horizon so eager and lazy
        # runs sample the same span (the run loop exits on the first
        # event at or past the goal, which otherwise differs by mode).
        rig.sim.schedule_at(total_goal, lambda _t: meter.stop())
    if extend_by > 0:
        rig.sim.schedule(
            extend_at, lambda _t: controller.extend_goal(extend_by)
        )
    failed_at = _run_to_goal(rig, battery, total_goal)
    profile = None
    if meter is not None:
        meter.stop()
        profile = meter.profile()
    return GoalResult(
        goal_seconds=controller.goal_seconds,
        goal_met=failed_at is None,
        residual_energy=max(0.0, battery.residual),
        survived_seconds=failed_at if failed_at is not None else rig.sim.now,
        adaptations=odyssey.viceroy.adaptation_counts(),
        timeline=rig.timeline,
        infeasible_reported=controller.infeasible_reported,
        profile=profile,
    )


def _bursty_power_probe(seed, probe_seconds, costs):
    """Average power of the bursty workload at lowest fidelity."""
    rig, _odyssey, battery = build_goal_rig(1e9, costs)
    for name, level in LOWEST_LEVELS.items():
        rig.apps[name].set_fidelity(level)
    minutes = int(probe_seconds / 60.0) + 1
    schedules = generate_schedules(
        ("speech", "video", "map", "web"), minutes, seed
    )
    for name in schedules:
        rig.sim.spawn(_bursty_app_main(rig, name, schedules[name]))
    rig.sim.run(until=probe_seconds)
    rig.machine.advance()
    return rig.machine.energy_total / probe_seconds
