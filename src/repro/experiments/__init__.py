"""Experiment definitions: one module per section of the paper's evaluation."""

from repro.experiments.concurrency import (
    CONCURRENCY_CONFIGS,
    concurrency_table,
    measure_composite,
)
from repro.experiments.fidelity_study import (
    MAP_CONFIGS,
    SPEECH_CONFIGS,
    VIDEO_CONFIGS,
    WEB_CONFIGS,
    map_energy_table,
    measure_map,
    measure_speech,
    measure_video,
    measure_web,
    speech_energy_table,
    video_energy_table,
    web_energy_table,
)
from repro.experiments.goal_study import (
    GoalResult,
    build_goal_rig,
    derive_goals,
    fidelity_runtime_bounds,
    halflife_sweep,
    run_bursty_experiment,
    run_goal_experiment,
)
from repro.experiments.rig import Rig, build_rig
from repro.experiments.runner import run_trials, trial_costs
from repro.experiments.figures import FIGURES, export_figures
from repro.experiments.summary import full_report, render_report
from repro.experiments.zoned_study import (
    ZONE_GRIDS,
    measure_map_zoned,
    measure_video_zoned,
    zoned_table,
)

__all__ = [
    "Rig",
    "build_rig",
    "run_trials",
    "trial_costs",
    "VIDEO_CONFIGS",
    "SPEECH_CONFIGS",
    "MAP_CONFIGS",
    "WEB_CONFIGS",
    "measure_video",
    "measure_speech",
    "measure_map",
    "measure_web",
    "video_energy_table",
    "speech_energy_table",
    "map_energy_table",
    "web_energy_table",
    "CONCURRENCY_CONFIGS",
    "measure_composite",
    "concurrency_table",
    "ZONE_GRIDS",
    "measure_video_zoned",
    "measure_map_zoned",
    "zoned_table",
    "GoalResult",
    "build_goal_rig",
    "run_goal_experiment",
    "fidelity_runtime_bounds",
    "derive_goals",
    "halflife_sweep",
    "run_bursty_experiment",
    "full_report",
    "render_report",
    "FIGURES",
    "export_figures",
]
