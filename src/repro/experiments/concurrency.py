"""Section 3.7: the effect of concurrency on energy usage.

The composite application (six iterations of speech + Web + map with
think time) runs in isolation and then concurrently with the video
player acting as a background newsfeed.  Three configurations: baseline
(full fidelity, no power management), hardware-only power management,
and lowest fidelity with power management — the three bar pairs of
Figure 15.
"""

from __future__ import annotations

from repro.apps import CompositeApplication
from repro.experiments.rig import build_rig
from repro.workloads.videos import VIDEO_CLIPS

__all__ = ["CONCURRENCY_CONFIGS", "measure_composite", "concurrency_table"]

# (hardware PM, fidelity setting) where fidelity is "highest"/"lowest".
CONCURRENCY_CONFIGS = {
    "baseline": (False, "highest"),
    "hw-only": (True, "highest"),
    "lowest-fidelity": (True, "lowest"),
}

LOWEST_LEVELS = {
    "speech": "reduced",
    "web": "jpeg-5",
    "map": "crop-secondary",
    "video": "combined",
}


def _apply_fidelity(rig, setting):
    if setting == "lowest":
        for name, level in LOWEST_LEVELS.items():
            rig.apps[name].set_fidelity(level)
    elif setting != "highest":
        raise ValueError(f"unknown fidelity setting {setting!r}")


def measure_composite(config, with_video, iterations=6, costs=None):
    """Energy (J) for the composite workload, optionally with video.

    Measurement ends when the composite finishes; the video loops as a
    background newsfeed for as long as the composite runs.
    """
    pm_enabled, fidelity = CONCURRENCY_CONFIGS[config]
    rig = build_rig(pm_enabled=pm_enabled, costs=costs)
    _apply_fidelity(rig, fidelity)
    composite = CompositeApplication(
        rig.apps["speech"], rig.apps["web"], rig.apps["map"]
    )
    main = rig.sim.spawn(composite.run(iterations=iterations), name="composite")
    if with_video:
        player = rig.apps["video"]
        clip = VIDEO_CLIPS[0]

        def newsfeed():
            # Far horizon: the background feed outlives the composite.
            yield from player.play_loop(clip, duration=1e7)

        rig.sim.spawn(newsfeed(), name="newsfeed")
    return rig.run_until_complete(main)


def concurrency_table(iterations=6, costs=None):
    """The six Figure 15 values: {config: {"alone"/"concurrent": J}}."""
    return {
        config: {
            "alone": measure_composite(config, False, iterations, costs),
            "concurrent": measure_composite(config, True, iterations, costs),
        }
        for config in CONCURRENCY_CONFIGS
    }
