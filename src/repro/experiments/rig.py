"""Experiment rig: assembles a complete simulated client.

One rig = one trial: a fresh simulator, a calibrated ThinkPad 560X, the
wireless link, the remote servers, the X server, the wardens, and the
four adaptive applications — mirroring the experimental setup of paper
Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps import (
    DEFAULT_COSTS,
    MapViewer,
    MapWarden,
    SpeechRecognizer,
    SpeechWarden,
    VideoPlayer,
    VideoWarden,
    WebBrowser,
    WebWarden,
    XServer,
)
from repro.hardware import PowerManager, build_machine
from repro.hardware.battery import ExternalSupply
from repro.net import Link, RpcChannel, Server
from repro.sim import Simulator, Timeline
from repro.workloads.thinktime import DEFAULT_THINK_S, FixedThinkTime

__all__ = ["Rig", "build_rig"]

WAVELAN_BANDWIDTH_BPS = 2e6  # 2 Mb/s 900 MHz WaveLAN


@dataclass
class Rig:
    """All the moving parts of one experimental trial."""

    sim: object
    machine: object
    timeline: object
    link: object
    xserver: object
    power_manager: object
    servers: dict = field(default_factory=dict)
    wardens: dict = field(default_factory=dict)
    apps: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def run_until_complete(self, *processes):
        """Step the simulation until every given process finishes.

        Returns the machine's total energy at the completion instant —
        the paper measures each experiment from start to workload end,
        excluding whatever the event queue still holds (e.g. pending
        spin-down timers).
        """
        while any(p.alive for p in processes):
            if not self.sim.step():
                raise RuntimeError("event queue drained with processes alive")
        self.machine.advance()
        return self.machine.energy_total

    def energy_report(self):
        return self.machine.energy_report()


def build_rig(pm_enabled=True, display_policy="bright", costs=None,
              supply=None, zoned=None, think_time_s=DEFAULT_THINK_S,
              speech_mode="local", bandwidth_bps=WAVELAN_BANDWIDTH_BPS,
              priorities=None, cpu_quantum=None):
    """Assemble a rig.

    Parameters
    ----------
    pm_enabled:
        Hardware power management (False = the paper's baseline).
    display_policy:
        ``"bright"``, ``"dim"`` or ``"off"`` (speech experiments).
    costs:
        :class:`~repro.apps.CostModel`; default calibration when None.
    supply:
        Energy supply; external (infinite) by default.
    zoned:
        ``None`` or ``(rows, cols)`` for a zoned-backlight display.
    think_time_s:
        Fixed think time for the map and Web applications.
    speech_mode:
        ``"local"``, ``"remote"`` or ``"hybrid"``.
    priorities:
        Optional ``{app_name: priority}`` override; the default is the
        paper's ordering (speech < video < map < web).
    cpu_quantum:
        When set, the CPU time-slices round-robin with this quantum
        instead of serializing whole bursts FIFO.
    """
    costs = costs or DEFAULT_COSTS
    priorities = priorities or {"speech": 1, "video": 2, "map": 3, "web": 4}
    sim = Simulator()
    timeline = Timeline()
    scheduler = None
    if cpu_quantum is not None:
        from repro.sim.scheduler import QuantumScheduler

        scheduler = QuantumScheduler(sim, quantum=cpu_quantum)
    machine = build_machine(
        sim,
        supply=supply if supply is not None else ExternalSupply(),
        timeline=timeline,
        zoned=zoned,
        scheduler=scheduler,
    )
    link = Link(machine, bandwidth_bps=bandwidth_bps)
    xserver = XServer(machine)

    servers = {
        "video": Server("video-server"),
        "janus": Server("janus-server", speed=costs.speech_server_speed),
        "map": Server("map-server"),
        "distill": Server("distillation-server"),
    }
    channels = {
        name: RpcChannel(link, server) for name, server in servers.items()
    }

    wardens = {
        "video": VideoWarden(link, costs=costs),
        "speech": SpeechWarden(channels["janus"], costs=costs),
        "map": MapWarden(channels["map"], costs=costs),
        "web": WebWarden(channels["distill"], costs=costs),
    }

    think = FixedThinkTime(think_time_s)
    apps = {
        "video": VideoPlayer(
            machine, wardens["video"], xserver,
            priority=priorities["video"], costs=costs,
        ),
        "speech": SpeechRecognizer(
            machine, warden=wardens["speech"], mode=speech_mode,
            priority=priorities["speech"], costs=costs,
        ),
        "map": MapViewer(
            machine, wardens["map"], xserver,
            priority=priorities["map"], costs=costs, think_time=think,
        ),
        "web": WebBrowser(
            machine, wardens["web"], xserver,
            priority=priorities["web"], costs=costs, think_time=think,
        ),
    }

    power_manager = PowerManager(
        machine, enabled=pm_enabled, display_policy=display_policy
    )
    power_manager.apply_initial_states()

    return Rig(
        sim=sim,
        machine=machine,
        timeline=timeline,
        link=link,
        xserver=xserver,
        power_manager=power_manager,
        servers=servers,
        wardens=wardens,
        apps=apps,
    )
