"""Section 4: projected energy impact of zoned backlighting.

No display with zoned backlighting existed, so the paper *projects*
energy usage from the design characteristics of the 560X: each zone
draws power proportional to its area, the application's window
determines which zones must be lit, and the rest of the panel is dark.
The reproduction performs the same projection by running the video and
map experiments on a machine whose display model is zoned: before the
workload starts, exactly the zones under the application's window are
lit and the remainder switched off.

The paper considers a 4-zone (2x2) and an 8-zone (2x4) version and the
video/map applications only (speech runs with the display off; Netscape
is nearly full-screen, so zoning cannot help it).
"""

from __future__ import annotations

from repro.experiments.fidelity_study import MAP_CONFIGS, VIDEO_CONFIGS
from repro.experiments.rig import build_rig
from repro.hardware.display import ZonedDisplay

__all__ = ["ZONE_GRIDS", "measure_video_zoned", "measure_map_zoned", "zoned_table"]

ZONE_GRIDS = {
    "no-zones": None,
    "4-zones": (2, 2),
    "8-zones": (2, 4),
}


def _illuminate_for(rig, app):
    """Light exactly the zones the application's window occupies."""
    display = rig.machine["display"]
    if not isinstance(display, ZonedDisplay):
        return None
    return display.illuminate([app.window_rect()], background=ZonedDisplay.OFF)


def measure_video_zoned(clip, config, zones, costs=None):
    """Video energy (J) under a Figure 18 zone configuration.

    Returns ``(joules, zones_lit)``; ``zones_lit`` is None for the
    stock display.
    """
    pm_enabled, level = VIDEO_CONFIGS[config]
    rig = build_rig(pm_enabled=pm_enabled, costs=costs, zoned=ZONE_GRIDS[zones])
    player = rig.apps["video"]
    player.set_fidelity(level)
    lit = _illuminate_for(rig, player)
    process = rig.sim.spawn(player.play(clip), name="video-zoned")
    return rig.run_until_complete(process), lit


def measure_map_zoned(city, config, zones, think_time_s=5.0, costs=None):
    """Map energy (J) under a Figure 18 zone configuration."""
    pm_enabled, level = MAP_CONFIGS[config]
    rig = build_rig(
        pm_enabled=pm_enabled, costs=costs, zoned=ZONE_GRIDS[zones],
        think_time_s=think_time_s,
    )
    viewer = rig.apps["map"]
    # The viewer's window geometry follows its *ladder* fidelity; align
    # it with the measured configuration so cropping shrinks the window.
    if level in viewer.ladder.levels:
        viewer.set_fidelity(level)
    lit = _illuminate_for(rig, viewer)
    process = rig.sim.spawn(viewer.view(city, fidelity=level), name="map-zoned")
    return rig.run_until_complete(process), lit


def zoned_table(objects, measure, configs, costs=None):
    """Sweep zones x configs for one application.

    ``measure(obj, config, zones)`` -> ``(joules, lit)``.
    Returns ``{config: {zones: {object: joules}}}``.
    """
    table = {}
    for config in configs:
        table[config] = {}
        for zones in ZONE_GRIDS:
            table[config][zones] = {
                obj.name: measure(obj, config, zones, costs=costs)[0]
                for obj in objects
            }
    return table
