"""The snapshot-capable goal rig: a pulsed, timer-driven workload.

The generator-based applications in :mod:`repro.apps` cannot cross a
snapshot boundary (live frames are not serializable), so this module
provides a workload built *entirely* from timer-driven state machines:
each :class:`PulsedApp` drives its own power component through periodic
active/idle pulses whose wattage scales with fidelity.  Pulse *timing*
is fidelity-independent — adaptation changes joules, never the event
timeline — which keeps decision instants aligned across policies and
makes ``repro diff`` windows exact.

Every stateful object registers with the simulator under a stable key
and the simulator carries a builder reference, so
:meth:`repro.snapshot.state.Snapshot.capture` can checkpoint the whole
stack at any instant and :meth:`~repro.snapshot.state.Snapshot.fork`
can branch it — the substrate for lookahead what-if evaluation
(:mod:`repro.snapshot.lookahead`) and warm-started fleet sweeps
(:mod:`repro.snapshot.warm`).

Sizing
------
With the default 2 400 J and the pulse wattages below, the full-
fidelity stack survives ~249 s and the floor-fidelity stack ~338 s;
the default 290 s goal sits mid-bracket (the same placement the golden
scenarios use), so a run both degrades early and upgrades late.
"""

from __future__ import annotations

from repro.core.goal import GoalDirectedController
from repro.core.viceroy import Viceroy
from repro.hardware.battery import Battery
from repro.hardware.component import PowerComponent
from repro.hardware.machine import Machine
from repro.obs.metrics import MetricsRegistry
from repro.powerscope.online import OnlinePowerMonitor
from repro.sim import Simulator

__all__ = [
    "PulsedApp",
    "PulseScenario",
    "build_pulse_scenario",
    "run_pulse_goal",
    "BUILDER_PATH",
    "DEFAULT_GOAL_SECONDS",
    "DEFAULT_INITIAL_ENERGY_J",
]

BUILDER_PATH = "repro.snapshot.scenario.build_pulse_scenario"

DEFAULT_GOAL_SECONDS = 290.0
DEFAULT_INITIAL_ENERGY_J = 2_400.0

#: Background draw (display dim + standbys), the paper's 5.6 W floor.
PLATFORM_WATTS = 5.6


class PulsedApp:
    """An adaptive application as a timer-driven pulse generator.

    Every ``period`` seconds the app runs one burst of ``duty * period``
    seconds: it pushes its attribution context, raises its component to
    the wattage of the current fidelity level, and drops both at burst
    end.  Fidelity changes take effect immediately (mid-burst included)
    but never move a pulse edge.

    Implements the :class:`~repro.core.priority.PriorityLadder` protocol
    (``can_degrade``/``degrade``/...) and the snapshot protocol.
    """

    def __init__(self, sim, machine, name, component, levels, priority,
                 period, duty, offset=0.0):
        if not 0.0 < duty < 1.0:
            raise ValueError(f"{name}: duty {duty} outside (0, 1)")
        self.sim = sim
        self.machine = machine
        self.name = name
        self.component = component
        self.levels = [level for level, _watts in levels]
        self.priority = priority
        self.period = period
        self.duty = duty
        self.offset = offset
        self.level_index = 0
        self._started = False
        self._active = False
        self._token = None
        self._entry = None

    @property
    def burst(self):
        return self.duty * self.period

    # ------------------------------------------------------------------
    # priority-ladder protocol
    # ------------------------------------------------------------------
    def can_degrade(self):
        return self.level_index < len(self.levels) - 1

    def can_upgrade(self):
        return self.level_index > 0

    def degrade(self):
        if not self.can_degrade():
            raise ValueError(f"{self.name} already at lowest fidelity")
        self.level_index += 1
        self._apply_level()
        return self.fidelity_level

    def upgrade(self):
        if not self.can_upgrade():
            raise ValueError(f"{self.name} already at highest fidelity")
        self.level_index -= 1
        self._apply_level()
        return self.fidelity_level

    def _apply_level(self):
        if self._active:
            self.component.set_state(self.fidelity_level)

    @property
    def fidelity_level(self):
        return self.levels[self.level_index]

    @property
    def fidelity_normalized(self):
        if len(self.levels) == 1:
            return 1.0
        return 1.0 - self.level_index / (len(self.levels) - 1)

    # ------------------------------------------------------------------
    # pulse state machine
    # ------------------------------------------------------------------
    def start(self):
        if self._started:
            return
        self._started = True
        self._entry = self.sim.schedule(self.offset, self._begin)

    def _begin(self, _time):
        self._active = True
        self._token = self.machine.push_context(self.name, "pulse")
        self.component.set_state(self.fidelity_level)
        self._entry = self.sim.schedule(self.burst, self._end)

    def _end(self, _time):
        self.component.set_state("idle")
        self.machine.pop_context(self._token)
        self._token = None
        self._active = False
        self._entry = self.sim.schedule(self.period - self.burst, self._begin)

    # ------------------------------------------------------------------
    # snapshot protocol (repro.snapshot)
    # ------------------------------------------------------------------
    def __snapshot__(self, ctx):
        # One pending transition at most: the burst end while active,
        # the next burst start while idle.
        ctx.claim(self._entry, "end" if self._active else "begin")
        return {
            "started": self._started,
            "active": self._active,
            "level_index": self.level_index,
            "token": self._token,
            "priority": self.priority,
        }

    def __restore__(self, state, ctx):
        # The component's power state is restored by the machine (the
        # component is attached); only the pulse bookkeeping lives here.
        self._started = bool(state["started"])
        self._active = bool(state["active"])
        self.level_index = int(state["level_index"])
        self._token = state["token"]
        self.priority = state["priority"]
        for when, seq, kind in ctx.events():
            callback = {"begin": self._begin, "end": self._end}[kind]
            self._entry = ctx.push(when, seq, callback)


class PulseScenario:
    """The assembled stack: machine + monitor + viceroy + controller."""

    def __init__(self, sim, machine, battery, monitor, viceroy, controller,
                 apps, params, gauge=None, calibrator=None):
        self.sim = sim
        self.machine = machine
        self.battery = battery
        self.monitor = monitor
        self.viceroy = viceroy
        self.controller = controller
        self.apps = apps
        self.params = params
        self.gauge = gauge
        self.calibrator = calibrator
        self.failed_at = None

    def start(self):
        """Start the workload pulses and the goal controller."""
        for app in self.apps:
            app.start()
        self.controller.start()
        return self

    def extend(self, extra_seconds, extra_energy=0.0):
        """Revise the goal mid-run: later deadline, larger reservoir.

        The controller's accounting and the physical battery move
        together — extending the goal without growing the battery
        would just relocate the exhaustion instant.
        """
        self.controller.extend_goal(extra_seconds, extra_energy)
        if extra_energy:
            self.battery.charge(extra_energy)
        return self

    def run(self, until=None):
        """Step to the goal instant (or ``until``), exact at the end.

        Stops early on battery exhaustion, recording ``failed_at``.
        """
        target = until if until is not None else self.controller.goal_time
        if target is None:
            target = self.params["goal_seconds"]
        sim = self.sim
        # Mark the bounded run so the monitor may fuse tick batches;
        # exhaustion still surfaces at the exact per-event instant (a
        # fused batch ends the moment the battery clamps).
        previous = sim._fuse_until
        sim._fuse_until = target
        try:
            while self.failed_at is None:
                next_at = sim.peek()
                if next_at is None or next_at > target:
                    break
                sim.step()
                if self.battery.exhausted:
                    self.failed_at = sim.now
        finally:
            sim._fuse_until = previous
        if self.failed_at is None:
            sim.run(until=target)
        self.machine.advance()
        return self

    def prepare_reuse(self):
        """Reset run-level state so :meth:`Snapshot.restore` can reuse
        this scenario in place of a fresh build (branch pooling).

        Only clears what ``__restore__`` does not overwrite: the event
        heap (restore re-pushes every claimed entry), its tombstones,
        and the exhaustion flag.
        """
        sim = self.sim
        sim._heap.clear()
        sim._cancelled.clear()
        self.failed_at = None

    def summary(self):
        """JSON-shaped outcome record (the fleet task return value)."""
        record = dict(self.controller.summary())
        record.update({
            "goal_met": self.failed_at is None,
            "survived_seconds": (
                self.failed_at if self.failed_at is not None else self.sim.now
            ),
            "energy_total_j": self.machine.energy_total,
            "battery_residual_j": max(0.0, self.battery.residual),
            "fidelity": {app.name: app.fidelity_level for app in self.apps},
        })
        lookahead = getattr(self.controller, "lookahead_summary", None)
        if lookahead is not None:
            record["lookahead"] = lookahead()
        if self.calibrator is not None:
            record["calibration"] = self.calibrator.summary()
        return record


def build_pulse_scenario(goal_seconds=DEFAULT_GOAL_SECONDS,
                         initial_energy=DEFAULT_INITIAL_ENERGY_J,
                         decision_period=0.5, halflife_fraction=0.10,
                         upgrade_min_interval=15.0, sample_period=0.1,
                         lookahead=False, horizon=12.0,
                         beam_width=0, beam_depth=2,
                         variable_fraction=None, constant_fraction=None,
                         device=None, learned_model=False, drift=None,
                         tracer=None, metrics=None):
    """Build the pulse stack, never started, fully registered.

    ``tracer``/``metrics`` are runtime environment, not scenario
    identity: they are excluded from the recorded builder params, so a
    branch forked with a private tracer still shares its parent's
    snapshot key.

    ``beam_width`` >= 1 with ``lookahead`` selects the beam-search
    controller (see :class:`repro.snapshot.lookahead
    .BeamLookaheadController`); 0 keeps the two-branch evaluator.

    ``variable_fraction``/``constant_fraction`` override the trigger's
    hysteresis margins when given (``0.0``/``0.0`` disables hysteresis
    — the policy-matrix axis); ``None`` keeps the controller defaults.

    ``device`` (a :class:`~repro.devices.DeviceProfile` or its dict)
    makes the *physical* machine deviate from the nominal table —
    component wattages scale by the profile's multipliers and the
    battery by its capacity scale — while the controller keeps
    believing the nominal ``initial_energy``; the gap is the
    miscalibration under test.  ``learned_model`` replaces the
    ground-truth monitor with a :class:`SmartBatteryGauge` +
    :class:`OnlineCalibrator` feed (the controller sees only what the
    learned model predicts).  ``drift`` (``"AT:FACTOR"`` or
    ``(at, factor)``) scales the real wattages mid-run.  All three are
    recorded in the builder params only when set, so default payloads,
    snapshot keys, and goldens are unchanged.
    """
    params = {
        "goal_seconds": goal_seconds,
        "initial_energy": initial_energy,
        "decision_period": decision_period,
        "halflife_fraction": halflife_fraction,
        "upgrade_min_interval": upgrade_min_interval,
        "sample_period": sample_period,
        "lookahead": lookahead,
        "horizon": horizon,
    }
    # Recorded only when the beam is on: default payloads — and the
    # snapshot keys and goldens derived from them — stay byte-identical
    # to the pre-beam format.
    if beam_width:
        params["beam_width"] = beam_width
        params["beam_depth"] = beam_depth
    # Same pattern for the hysteresis overrides: recorded (and passed
    # through) only when explicitly set, so default scenario payloads
    # and snapshot keys are unchanged.
    hysteresis = {}
    if variable_fraction is not None:
        params["variable_fraction"] = variable_fraction
        hysteresis["variable_fraction"] = variable_fraction
    if constant_fraction is not None:
        params["constant_fraction"] = constant_fraction
        hysteresis["constant_fraction"] = constant_fraction
    profile = None
    if device is not None:
        from repro.devices.profile import DeviceProfile

        profile = (device if isinstance(device, DeviceProfile)
                   else DeviceProfile.from_dict(device))
        params["device"] = profile.to_dict()
    if learned_model:
        if lookahead or beam_width:
            raise ValueError(
                "learned_model does not combine with lookahead: the "
                "gauge/calibrator stack is not snapshot-capable"
            )
        params["learned_model"] = True
    drift_spec = None
    if drift is not None:
        if lookahead or beam_width:
            raise ValueError(
                "drift does not combine with lookahead: the scheduled "
                "drift event is not snapshot-claimable"
            )
        from repro.devices.calibrate import parse_drift

        drift_spec = parse_drift(drift)
        params["drift"] = list(drift_spec)
    metrics = metrics if metrics is not None else MetricsRegistry()
    sim = Simulator(tracer=tracer)
    battery_scale = profile.battery_scale if profile is not None else 1.0
    battery = Battery(initial_energy * battery_scale)
    machine = Machine(sim, battery, metrics=metrics, profile=profile)

    # Nominal (believed) tables, held apart from the attached
    # components: Machine.attach rescales the component's own states
    # under a device profile, and the calibrator must regress against
    # what the controller *believes*, not against reality.
    platform_table = {"on": PLATFORM_WATTS}
    codec_levels = [("full", 4.2), ("reduced", 3.0), ("half", 2.1),
                    ("min", 1.3)]
    radio_levels = [("fast", 2.6), ("slow", 1.7), ("trickle", 1.0)]
    codec_table = dict({"idle": 0.35}, **dict(codec_levels))
    radio_table = dict({"idle": 0.18}, **dict(radio_levels))

    machine.attach(PowerComponent("platform", platform_table, "on"))
    codec = machine.attach(PowerComponent("codec", codec_table, "idle"))
    radio = machine.attach(PowerComponent("radio", radio_table, "idle"))
    viewer = PulsedApp(sim, machine, "viewer", codec, codec_levels,
                       priority=2, period=4.0, duty=0.6, offset=0.0)
    sync = PulsedApp(sim, machine, "sync", radio, radio_levels,
                     priority=1, period=6.0, duty=0.5, offset=1.0)

    gauge = None
    calibrator = None
    if learned_model:
        from repro.devices.calibrate import (CalibratedPowerFeed,
                                             OnlineCalibrator)
        from repro.powerscope.smartbattery import SmartBatteryGauge

        gauge = SmartBatteryGauge(
            machine,
            period=profile.gauge_period if profile else 1.0,
            resolution_w=profile.gauge_resolution_w if profile else 0.25,
            noise_w=profile.gauge_noise_w if profile else 0.0,
            noise_seed=profile.device_id if profile else 0,
        )
        calibrator = OnlineCalibrator(
            machine, gauge,
            nominal={"platform": platform_table, "codec": codec_table,
                     "radio": radio_table},
            tracer=tracer, metrics=metrics,
        )
        monitor = CalibratedPowerFeed(calibrator)
    else:
        monitor = OnlinePowerMonitor(machine, period=sample_period)
    if drift_spec is not None:
        from repro.devices.calibrate import schedule_drift

        schedule_drift(sim, machine, drift_spec[0], drift_spec[1],
                       tracer=tracer)
    viceroy = Viceroy(sim, machine=machine, metrics=metrics)
    viceroy.register_application(viewer)
    viceroy.register_application(sync)
    if lookahead and beam_width:
        from repro.snapshot.lookahead import BeamLookaheadController

        controller = BeamLookaheadController(
            viceroy, monitor, initial_energy, goal_seconds,
            halflife_fraction=halflife_fraction,
            decision_period=decision_period,
            upgrade_min_interval=upgrade_min_interval,
            horizon=horizon,
            beam_width=beam_width, beam_depth=beam_depth,
            **hysteresis,
        )
    elif lookahead:
        from repro.snapshot.lookahead import LookaheadGoalController

        controller = LookaheadGoalController(
            viceroy, monitor, initial_energy, goal_seconds,
            halflife_fraction=halflife_fraction,
            decision_period=decision_period,
            upgrade_min_interval=upgrade_min_interval,
            horizon=horizon,
            **hysteresis,
        )
    else:
        controller = GoalDirectedController(
            viceroy, monitor, initial_energy, goal_seconds,
            halflife_fraction=halflife_fraction,
            decision_period=decision_period,
            upgrade_min_interval=upgrade_min_interval,
            **hysteresis,
        )

    sim.register_snapshottable("machine", machine)
    sim.register_snapshottable("battery", battery)
    if not learned_model:
        # The gauge/calibrator feed is not snapshot-capable (and
        # learned_model excludes lookahead); the ground-truth monitor
        # keeps its snapshot slot on every other build.
        sim.register_snapshottable("monitor", monitor)
    sim.register_snapshottable("viceroy", viceroy)
    sim.register_snapshottable("controller", controller)
    sim.register_snapshottable("app.viewer", viewer)
    sim.register_snapshottable("app.sync", sync)
    sim.snapshot_builder = (BUILDER_PATH, params)
    return PulseScenario(sim, machine, battery, monitor, viceroy,
                         controller, [viewer, sync], params,
                         gauge=gauge, calibrator=calibrator)


def run_pulse_goal(**params):
    """Build, start, run to the goal, and return the summary dict."""
    scenario = build_pulse_scenario(**params)
    scenario.start()
    scenario.run()
    return scenario.summary()
