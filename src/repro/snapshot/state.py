"""Snapshot: capture, fork, and restore a registered simulation stack.

A snapshot is a pure JSON-shaped payload — builder reference, simulator
header (clock + sequence counter), per-object state dicts, and the
pending event list with original ``(when, seq)`` stamps.  ``fork()``
and :meth:`Snapshot.restore` share one code path: every branch is built
from the payload, so the in-memory fork and the on-disk warm start are
the same operation and the determinism tests cover both.

Determinism contract
--------------------
Capturing is side-effect free for the parent (the integer sequence
counter is read, not consumed) and restoring reproduces the parent's
future exactly: a stack restored at time T and advanced to T' produces
a byte-identical decision spine and power journal to the uninterrupted
run — enforced by ``tests/test_snapshot_determinism.py`` and the
snapshot-smoke CI job.
"""

from __future__ import annotations

from repro.fleet.spec import resolve_callable
from repro.snapshot.protocol import CaptureContext, RestoreContext, SnapshotError

__all__ = ["Snapshot", "PAYLOAD_VERSION"]

#: Bump when the payload layout changes; the store refuses mismatches.
PAYLOAD_VERSION = 1


class Snapshot:
    """One captured state of a snapshot-capable stack."""

    def __init__(self, payload):
        self.payload = payload

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, sim):
        """Serialize ``sim`` and every registered snapshottable.

        The simulator must carry a ``snapshot_builder`` — a
        ``(dotted_path, params)`` pair naming the callable that rebuilds
        this stack — and every live heap entry must be claimed by some
        registered object, or the capture raises naming the stragglers.
        """
        if sim.snapshot_builder is None:
            raise SnapshotError(
                "simulator has no snapshot_builder; build the stack with a "
                "snapshot-capable builder (see repro.snapshot.scenario)"
            )
        builder, params = sim.snapshot_builder
        ctx = CaptureContext(sim)
        states = {}
        for key, obj in sim.snapshottables.items():
            states[key] = ctx.capture(key, obj)
        stragglers = ctx.unclaimed()
        if stragglers:
            names = ", ".join(
                f"seq={seq} due={when:g} "
                f"{getattr(cb, '__qualname__', repr(cb))}"
                for when, seq, cb in stragglers[:5]
            )
            raise SnapshotError(
                f"{len(stragglers)} pending event(s) not claimed by any "
                f"snapshottable: {names}" +
                (" ..." if len(stragglers) > 5 else "")
            )
        payload = {
            "version": PAYLOAD_VERSION,
            "builder": builder,
            "params": dict(params),
            "sim": {"now": sim.now, "next_seq": sim._next_seq},
            "states": states,
            "events": [list(e) for e in ctx.events],
        }
        return cls(payload)

    # ------------------------------------------------------------------
    def restore(self, **builder_overrides):
        """Build a fresh stack from the payload and apply the state.

        ``builder_overrides`` are merged over the captured params —
        branch builds pass a private ``tracer``/``metrics`` here (and
        the lookahead evaluator switches the branch controller back to
        the plain policy).  Returns whatever the builder returns (the
        scenario object owning the new simulator).
        """
        payload = self.payload
        if payload.get("version") != PAYLOAD_VERSION:
            raise SnapshotError(
                f"snapshot payload version {payload.get('version')!r} != "
                f"supported {PAYLOAD_VERSION}"
            )
        params = dict(payload["params"])
        params.update(builder_overrides)
        scenario = resolve_callable(payload["builder"])(**params)
        sim = scenario.sim
        if sim.live_entries():
            raise SnapshotError(
                "snapshot builder scheduled events before restore; "
                "builders must return a never-started stack"
            )
        sim.now = float(payload["sim"]["now"])
        sim._next_seq = int(payload["sim"]["next_seq"])
        states = payload["states"]
        registered = sim.snapshottables
        missing = [k for k in states if k not in registered]
        if missing:
            raise SnapshotError(
                f"builder did not register snapshottable(s): {missing}"
            )
        ctx = RestoreContext(sim, payload["events"])
        for key, obj in registered.items():
            if key in states:
                ctx.restore(key, obj, states[key])
        ctx.verify_consumed()
        return scenario

    def fork(self, **builder_overrides):
        """Alias for :meth:`restore`: yield an independent branch."""
        return self.restore(**builder_overrides)

    # ------------------------------------------------------------------
    @property
    def time(self):
        return self.payload["sim"]["now"]

    @property
    def builder(self):
        return self.payload["builder"]

    @property
    def params(self):
        return dict(self.payload["params"])

    def __repr__(self):
        return (f"<Snapshot t={self.time:g} builder={self.builder} "
                f"events={len(self.payload['events'])}>")
