"""Snapshot: capture, fork, and restore a registered simulation stack.

A snapshot is a pure JSON-shaped payload — builder reference, simulator
header (clock + sequence counter), per-object state dicts, and the
pending event list with original ``(when, seq)`` stamps.  ``fork()``
and :meth:`Snapshot.restore` share one code path: every branch is built
from the payload, so the in-memory fork and the on-disk warm start are
the same operation and the determinism tests cover both.

Copy-on-write capture
---------------------
State dicts may carry shared-structure markers instead of flat rows
(see :mod:`repro.snapshot.protocol`): capture then stores a *reference*
to an immutable structure — a sealed journal prefix, an append-only
log — instead of serializing it, which is what makes capture and fork
O(changes) rather than O(simulated time).  The flat JSON ``payload`` is
materialized lazily, only when something actually needs it (the disk
store, a ``--out`` dump, the byte-identity tests); it is byte-identical
to what a non-sharing capture would have produced, so on-disk
snapshots, warm starts, and every golden are unaffected.

Determinism contract
--------------------
Capturing is side-effect free for the parent (the integer sequence
counter is read, not consumed) and restoring reproduces the parent's
future exactly: a stack restored at time T and advanced to T' produces
a byte-identical decision spine and power journal to the uninterrupted
run — enforced by ``tests/test_snapshot_determinism.py`` and the
snapshot-smoke CI job.
"""

from __future__ import annotations

from time import perf_counter

from repro.fleet.spec import resolve_callable
from repro.obs.metrics import current_metrics
from repro.snapshot.protocol import CaptureContext, RestoreContext, SnapshotError

__all__ = ["Snapshot", "PAYLOAD_VERSION"]

#: Bump when the payload layout changes; the store refuses mismatches.
PAYLOAD_VERSION = 1

#: Capture/fork latencies sit in the micro- to millisecond range, far
#: below the registry's default (second-scale) boundaries.
_SNAPSHOT_TIME_BUCKETS = (
    0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 1.0,
)


def _is_marker(value):
    return type(value) is dict and len(value) == 1 and "__shared__" in value


class Snapshot:
    """One captured state of a snapshot-capable stack."""

    def __init__(self, payload, shared=None):
        self._raw = payload
        self._shared = dict(shared) if shared else {}
        # Without shared structures the raw payload already is flat.
        self._flat = None if self._shared else payload

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, sim):
        """Serialize ``sim`` and every registered snapshottable.

        The simulator must carry a ``snapshot_builder`` — a
        ``(dotted_path, params)`` pair naming the callable that rebuilds
        this stack — and every live heap entry must be claimed by some
        registered object, or the capture raises naming the stragglers.
        """
        start = perf_counter()
        if sim.snapshot_builder is None:
            raise SnapshotError(
                "simulator has no snapshot_builder; build the stack with a "
                "snapshot-capable builder (see repro.snapshot.scenario)"
            )
        builder, params = sim.snapshot_builder
        ctx = CaptureContext(sim)
        states = {}
        for key, obj in sim.snapshottables.items():
            states[key] = ctx.capture(key, obj)
        stragglers = ctx.unclaimed()
        if stragglers:
            names = ", ".join(
                f"seq={seq} due={when:g} "
                f"{getattr(cb, '__qualname__', repr(cb))}"
                for when, seq, cb in stragglers[:5]
            )
            raise SnapshotError(
                f"{len(stragglers)} pending event(s) not claimed by any "
                f"snapshottable: {names}" +
                (" ..." if len(stragglers) > 5 else "")
            )
        payload = {
            "version": PAYLOAD_VERSION,
            "builder": builder,
            "params": dict(params),
            "sim": {"now": sim.now, "next_seq": sim._next_seq},
            "states": states,
            "events": [list(e) for e in ctx.events],
        }
        snapshot = cls(payload, shared=ctx.shared)
        metrics = current_metrics()
        metrics.histogram(
            "snapshot.capture_s", _SNAPSHOT_TIME_BUCKETS
        ).observe(perf_counter() - start)
        saved = 0
        for obj in ctx.shared.values():
            size = getattr(obj, "shared_bytes", None)
            if size is not None:
                saved += size() if callable(size) else size
        if saved:
            metrics.counter("snapshot.shared_bytes_saved").inc(saved)
        return snapshot

    # ------------------------------------------------------------------
    @property
    def payload(self):
        """The flat JSON payload, materializing shared structures.

        Expanding a marker asks the shared object for the exact rows a
        non-sharing capture would have emitted, so this payload is
        byte-identical to the pre-COW format; it is cached after the
        first access.  Forking does not touch it — in-memory branches
        restore straight from the raw payload plus live references.
        """
        if self._flat is None:
            self._flat = self._materialize()
        return self._flat

    def _materialize(self):
        states = {}
        for key, state in self._raw["states"].items():
            out = state
            for field, value in state.items():
                if _is_marker(value):
                    if out is state:
                        out = dict(state)
                    out[field] = self._shared[value["__shared__"]].materialize()
            states[key] = out
        flat = dict(self._raw)
        flat["states"] = states
        return flat

    # ------------------------------------------------------------------
    def restore(self, reuse=None, **builder_overrides):
        """Build a fresh stack from the payload and apply the state.

        ``builder_overrides`` are merged over the captured params —
        branch builds pass a private ``tracer``/``metrics`` here (and
        the lookahead evaluator switches the branch controller back to
        the plain policy).  Returns whatever the builder returns (the
        scenario object owning the new simulator).

        ``reuse`` recycles a scenario this snapshot (or a compatible
        one: same builder, same params) previously returned, skipping
        the builder entirely: the scenario's ``prepare_reuse()`` hook
        clears the event heap and run-level flags, then every
        ``__restore__`` overwrites the stale state.  The lookahead
        evaluator pools branch scenarios this way; results are
        byte-identical to a fresh build (see the COW property tests).
        """
        start = perf_counter()
        payload = self._raw
        # Validate against the materialized dict when one exists: it is
        # what callers see (and may have edited); the two only diverge
        # through such edits.
        header = self._flat if self._flat is not None else payload
        if header.get("version") != PAYLOAD_VERSION:
            raise SnapshotError(
                f"snapshot payload version {header.get('version')!r} != "
                f"supported {PAYLOAD_VERSION}"
            )
        if reuse is None:
            params = dict(payload["params"])
            params.update(builder_overrides)
            scenario = resolve_callable(payload["builder"])(**params)
            sim = scenario.sim
            if sim.live_entries():
                raise SnapshotError(
                    "snapshot builder scheduled events before restore; "
                    "builders must return a never-started stack"
                )
        else:
            scenario = reuse
            sim = scenario.sim
            prepare = getattr(scenario, "prepare_reuse", None)
            if prepare is None:
                raise SnapshotError(
                    f"{type(scenario).__name__} does not support reuse "
                    f"(no prepare_reuse hook)"
                )
            prepare()
        sim.now = float(payload["sim"]["now"])
        sim._next_seq = int(payload["sim"]["next_seq"])
        states = payload["states"]
        registered = sim.snapshottables
        missing = [k for k in states if k not in registered]
        if missing:
            raise SnapshotError(
                f"builder did not register snapshottable(s): {missing}"
            )
        ctx = RestoreContext(sim, payload["events"], shared=self._shared)
        for key, obj in registered.items():
            if key in states:
                ctx.restore(key, obj, states[key])
        ctx.verify_consumed()
        current_metrics().histogram(
            "snapshot.fork_s", _SNAPSHOT_TIME_BUCKETS
        ).observe(perf_counter() - start)
        return scenario

    def fork(self, reuse=None, **builder_overrides):
        """Alias for :meth:`restore`: yield an independent branch."""
        return self.restore(reuse=reuse, **builder_overrides)

    # ------------------------------------------------------------------
    @property
    def time(self):
        return self._raw["sim"]["now"]

    @property
    def builder(self):
        return self._raw["builder"]

    @property
    def params(self):
        return dict(self._raw["params"])

    def __repr__(self):
        return (f"<Snapshot t={self.time:g} builder={self.builder} "
                f"events={len(self._raw['events'])}>")
