"""Lookahead what-if evaluation: vet adaptation decisions on forks.

The goal-directed controller's hysteresis trigger extrapolates demand
from *smoothed history*; a pulsed workload can therefore talk it into
degrading during a transient burst or upgrading right before one.  The
:class:`WhatIfEvaluator` replaces extrapolation with *measurement*: at
each non-hold proposal it captures the whole stack, forks one branch
per candidate action, advances each a configurable horizon under a
private null tracer, and scores the branch's measured energy against
the goal.

Scoring
-------
For a branch that spent ``E_H`` joules over horizon ``H`` with ``R``
joules residual and ``T`` seconds remaining at the decision::

    margin = (R - E_H) - (E_H / H) * (T - H)

i.e. the joules left at the goal if the branch's measured burn rate
held.  A DEGRADE proposal is accepted only when the *hold* branch's
margin is negative (holding would miss the goal); an UPGRADE proposal
only when the *upgraded* branch's margin is non-negative (the richer
fidelity still makes the goal).

Branch runs are invisible to the parent's metrics and decision spine:
they fork with ``NULL_TRACER`` plus a fresh registry, and the parent
emits their verdicts on the ``branch`` category/track, which
:func:`repro.obs.diff.decision_spine` (``core`` only) never reads.
"""

from __future__ import annotations

from repro.core.goal import GoalDirectedController
from repro.core.hysteresis import DEGRADE, HOLD, UPGRADE
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.snapshot.state import Snapshot

__all__ = ["WhatIfEvaluator", "LookaheadGoalController"]


class WhatIfEvaluator:
    """Fork-and-measure evaluation of candidate adaptation actions."""

    def __init__(self, sim, horizon=12.0):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.sim = sim
        self.horizon = horizon
        self.evaluations = 0
        self.branches_run = 0

    def evaluate(self, actions, residual, remaining, did=None, trace=None):
        """Run one branch per action; return ``{action: verdict}``.

        Each verdict carries the branch's measured joules over the
        (goal-clamped) horizon and the projected margin at the goal.
        """
        snapshot = Snapshot.capture(self.sim)
        horizon = min(self.horizon, remaining)
        self.evaluations += 1
        return {
            action: self._run_branch(snapshot, action, residual, remaining,
                                     horizon, did, trace)
            for action in actions
        }

    def _run_branch(self, snapshot, action, residual, remaining, horizon,
                    did, trace):
        # Branches are plain-policy (no nested lookahead) and private:
        # an explicit null tracer keeps the branch sim from resolving
        # the process-installed tracer, and a fresh registry keeps its
        # counters out of the parent's metrics.
        scenario = snapshot.fork(
            lookahead=False, tracer=NULL_TRACER, metrics=MetricsRegistry()
        )
        if action == DEGRADE:
            scenario.viceroy.degrade_once(decision_id=did)
        elif action == UPGRADE:
            scenario.viceroy.upgrade_once(decision_id=did)
        machine = scenario.machine
        t0 = scenario.sim.now
        start_energy = machine.finish()
        scenario.sim.run(until=t0 + horizon)
        energy = machine.finish() - start_energy
        rate = energy / horizon if horizon > 0 else 0.0
        margin = (residual - energy) - rate * max(0.0, remaining - horizon)
        self.branches_run += 1
        verdict = {
            "action": action,
            "energy_j": energy,
            "rate_w": rate,
            "margin_j": margin,
            "horizon_s": horizon,
        }
        if trace is not None:
            trace.instant(t0, "branch", f"branch.{action}", track="branch",
                          args=dict(verdict, did=did))
        return verdict


class LookaheadGoalController(GoalDirectedController):
    """Goal controller that vets trigger proposals on forked branches.

    HOLD proposals pass through untouched (no forking on the steady
    path), as do upgrades still inside the rate limit.  Every other
    proposal is measured: the trigger proposes, the evaluator forks a
    hold branch and an acted branch, and the proposal only stands when
    the margins say it should.
    """

    def __init__(self, viceroy, monitor, initial_energy, goal_seconds,
                 horizon=12.0, **kwargs):
        super().__init__(viceroy, monitor, initial_energy, goal_seconds,
                         **kwargs)
        self.horizon = horizon
        self.evaluator = WhatIfEvaluator(self.sim, horizon=horizon)
        self.lookahead_evaluations = 0
        self.overrides = 0
        tracer = getattr(self.sim, "tracer", None)
        self._branch_trace = (
            tracer.gate("branch") if tracer is not None else None
        )

    def _choose_action(self, now, did, demand, residual):
        proposal = self.trigger.decide(demand, residual)
        if proposal == HOLD or self.sim.snapshot_builder is None:
            return proposal
        if proposal == UPGRADE and not self._upgrade_allowed(now):
            # The rate limit will veto it anyway; don't pay for forks.
            return proposal
        remaining = self.time_remaining
        if min(self.horizon, remaining) <= self.decision_period:
            return proposal
        verdicts = self.evaluator.evaluate(
            (HOLD, proposal), residual, remaining,
            did=did, trace=self._branch_trace,
        )
        self.lookahead_evaluations += 1
        if proposal == DEGRADE:
            accepted = verdicts[HOLD]["margin_j"] < 0.0
        else:
            accepted = verdicts[proposal]["margin_j"] >= 0.0
        if not accepted:
            self.overrides += 1
        if self._branch_trace is not None:
            self._branch_trace.instant(
                now, "branch", "lookahead.verdict", track="branch",
                args={
                    "did": did,
                    "proposal": proposal,
                    "accepted": accepted,
                    "hold_margin_j": verdicts[HOLD]["margin_j"],
                    "action_margin_j": verdicts[proposal]["margin_j"],
                },
            )
        return proposal if accepted else HOLD

    def lookahead_summary(self):
        return {
            "horizon_s": self.horizon,
            "evaluations": self.lookahead_evaluations,
            "overrides": self.overrides,
            "branches_run": self.evaluator.branches_run,
        }

    # ------------------------------------------------------------------
    # snapshot protocol (repro.snapshot)
    # ------------------------------------------------------------------
    def __snapshot__(self, ctx):
        state = super().__snapshot__(ctx)
        state["lookahead"] = {
            "evaluations": self.lookahead_evaluations,
            "overrides": self.overrides,
            "branches_run": self.evaluator.branches_run,
        }
        return state

    def __restore__(self, state, ctx):
        super().__restore__(state, ctx)
        # Absent when restoring a plain-policy capture into a lookahead
        # stack; counters then start fresh, which is the honest reading.
        extra = state.get("lookahead")
        if extra:
            self.lookahead_evaluations = int(extra["evaluations"])
            self.overrides = int(extra["overrides"])
            self.evaluator.branches_run = int(extra["branches_run"])
