"""Lookahead what-if evaluation: vet adaptation decisions on forks.

The goal-directed controller's hysteresis trigger extrapolates demand
from *smoothed history*; a pulsed workload can therefore talk it into
degrading during a transient burst or upgrading right before one.  The
:class:`WhatIfEvaluator` replaces extrapolation with *measurement*: at
each non-hold proposal it captures the whole stack, forks one branch
per candidate action, advances each a configurable horizon under a
private null tracer, and scores the branch's measured energy against
the goal.

Scoring
-------
For a branch that spent ``E_H`` joules over horizon ``H`` with ``R``
joules residual and ``T`` seconds remaining at the decision::

    margin = (R - E_H) - (E_H / H) * (T - H)

i.e. the joules left at the goal if the branch's measured burn rate
held.  A DEGRADE proposal is accepted only when the *hold* branch's
margin is negative (holding would miss the goal); an UPGRADE proposal
only when the *upgraded* branch's margin is non-negative (the richer
fidelity still makes the goal).

Branch runs are invisible to the parent's metrics and decision spine:
they fork with ``NULL_TRACER`` plus a fresh registry, and the parent
emits their verdicts on the ``branch`` category/track, which
:func:`repro.obs.diff.decision_spine` (``core`` only) never reads.
As belt and braces, every forked machine is stamped with a branch id
(``did<n>.<action>``) that rides on its ``power/span`` args, so even a
branch run under a *real* tracer cannot pollute the trunk's energy
fold — :func:`repro.obs.export.power_spans` indexes trunk spans only
unless a branch is named explicitly.

Beam search
-----------
:class:`BeamLookaheadController` generalizes the two-branch evaluation
to *schedules*: the horizon is split into ``beam_depth`` stages, each
stage expands every surviving branch with the feasible actions (hold,
degrade, upgrade), and only the ``beam_width`` best-margin branches
survive to the next stage.  Stage boundaries re-capture the branch —
forking a fork — which is exactly the O(changes) case the copy-on-write
journal exists for.  The chosen schedule's *first* action is what the
parent actually takes; the rest is lookahead scaffolding, re-planned at
the next trigger.
"""

from __future__ import annotations

from repro.core.goal import GoalDirectedController
from repro.core.hysteresis import DEGRADE, HOLD, UPGRADE
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.snapshot.state import Snapshot

__all__ = [
    "WhatIfEvaluator",
    "LookaheadGoalController",
    "BeamLookaheadController",
]


class WhatIfEvaluator:
    """Fork-and-measure evaluation of candidate adaptation actions."""

    #: Branch scenarios retained for reuse; branches run sequentially,
    #: so a couple cover the steady state (beam stages briefly spike).
    POOL_MAX = 4

    def __init__(self, sim, horizon=12.0):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.sim = sim
        self.horizon = horizon
        self.evaluations = 0
        self.branches_run = 0
        # Branch runs share one registry (never read; a fresh one per
        # fork would just burn construction time) and recycle built
        # scenarios through Snapshot.restore(reuse=...) — the builder
        # is ~half the cost of a cold fork.
        self._branch_metrics = MetricsRegistry()
        self._branch_pool = []

    def evaluate(self, actions, residual, remaining, did=None, trace=None):
        """Run one branch per action; return ``{action: verdict}``.

        Each verdict carries the branch's measured joules over the
        (goal-clamped) horizon and the projected margin at the goal.
        """
        snapshot = Snapshot.capture(self.sim)
        horizon = min(self.horizon, remaining)
        self.evaluations += 1
        return {
            action: self._run_branch(snapshot, action, residual, remaining,
                                     horizon, did, trace)
            for action in actions
        }

    def _run_branch(self, snapshot, action, residual, remaining, horizon,
                    did, trace):
        # Branches are plain-policy (no nested lookahead) and private:
        # an explicit null tracer keeps the branch sim from resolving
        # the process-installed tracer, and the evaluator-private
        # registry keeps its counters out of the parent's metrics.
        reuse = self._branch_pool.pop() if self._branch_pool else None
        scenario = snapshot.fork(
            reuse=reuse, lookahead=False, tracer=NULL_TRACER,
            metrics=self._branch_metrics,
        )
        # Stamp the branch machine so its power/span stream disentangles
        # from the trunk's if the fork is ever run under a real tracer
        # (power_spans indexes trunk spans only by default).
        scenario.machine.branch_id = f"did{did}.{action}"
        if action == DEGRADE:
            scenario.viceroy.degrade_once(decision_id=did)
        elif action == UPGRADE:
            scenario.viceroy.upgrade_once(decision_id=did)
        machine = scenario.machine
        t0 = scenario.sim.now
        start_energy = machine.finish()
        scenario.sim.run(until=t0 + horizon)
        energy = machine.finish() - start_energy
        rate = energy / horizon if horizon > 0 else 0.0
        margin = (residual - energy) - rate * max(0.0, remaining - horizon)
        self.branches_run += 1
        verdict = {
            "action": action,
            "energy_j": energy,
            "rate_w": rate,
            "margin_j": margin,
            "horizon_s": horizon,
        }
        if trace is not None:
            trace.instant(t0, "branch", f"branch.{action}", track="branch",
                          args=dict(verdict, did=did))
        if len(self._branch_pool) < self.POOL_MAX:
            self._branch_pool.append(scenario)
        return verdict

    def expand(self, snapshot, action, stage_s, did=None):
        """Fork, apply ``action``, advance one beam stage, re-capture.

        Returns ``(energy_j, stage_snapshot)``, or ``None`` when the
        branch cannot perform ``action`` (ladder exhausted in that
        direction).  The re-capture is a fork-of-a-fork: the stage
        snapshot shares the branch's sealed journal blocks, so chaining
        stages stays O(changes per stage).
        """
        reuse = self._branch_pool.pop() if self._branch_pool else None
        scenario = snapshot.fork(
            reuse=reuse, lookahead=False, tracer=NULL_TRACER,
            metrics=self._branch_metrics,
        )
        scenario.machine.branch_id = f"did{did}.{action}"
        applied = True
        if action == DEGRADE:
            applied = scenario.viceroy.degrade_once(decision_id=did) is not None
        elif action == UPGRADE:
            applied = scenario.viceroy.upgrade_once(decision_id=did) is not None
        if not applied:
            if len(self._branch_pool) < self.POOL_MAX:
                self._branch_pool.append(scenario)
            return None
        machine = scenario.machine
        t0 = scenario.sim.now
        start_energy = machine.finish()
        scenario.sim.run(until=t0 + stage_s)
        energy = machine.finish() - start_energy
        stage_snapshot = Snapshot.capture(scenario.sim)
        self.branches_run += 1
        if len(self._branch_pool) < self.POOL_MAX:
            self._branch_pool.append(scenario)
        return energy, stage_snapshot


class LookaheadGoalController(GoalDirectedController):
    """Goal controller that vets trigger proposals on forked branches.

    HOLD proposals pass through untouched (no forking on the steady
    path), as do upgrades still inside the rate limit.  Every other
    proposal is measured: the trigger proposes, the evaluator forks a
    hold branch and an acted branch, and the proposal only stands when
    the margins say it should.
    """

    def __init__(self, viceroy, monitor, initial_energy, goal_seconds,
                 horizon=12.0, **kwargs):
        super().__init__(viceroy, monitor, initial_energy, goal_seconds,
                         **kwargs)
        self.horizon = horizon
        self.evaluator = WhatIfEvaluator(self.sim, horizon=horizon)
        self.lookahead_evaluations = 0
        self.overrides = 0
        tracer = getattr(self.sim, "tracer", None)
        self._branch_trace = (
            tracer.gate("branch") if tracer is not None else None
        )

    def _choose_action(self, now, did, demand, residual):
        proposal = self.trigger.decide(demand, residual)
        if proposal == HOLD or self.sim.snapshot_builder is None:
            return proposal
        if proposal == UPGRADE and not self._upgrade_allowed(now):
            # The rate limit will veto it anyway; don't pay for forks.
            return proposal
        remaining = self.time_remaining
        if min(self.horizon, remaining) <= self.decision_period:
            return proposal
        verdicts = self.evaluator.evaluate(
            (HOLD, proposal), residual, remaining,
            did=did, trace=self._branch_trace,
        )
        self.lookahead_evaluations += 1
        if proposal == DEGRADE:
            accepted = verdicts[HOLD]["margin_j"] < 0.0
        else:
            accepted = verdicts[proposal]["margin_j"] >= 0.0
        if not accepted:
            self.overrides += 1
        if self._branch_trace is not None:
            self._branch_trace.instant(
                now, "branch", "lookahead.verdict", track="branch",
                args={
                    "did": did,
                    "proposal": proposal,
                    "accepted": accepted,
                    "hold_margin_j": verdicts[HOLD]["margin_j"],
                    "action_margin_j": verdicts[proposal]["margin_j"],
                },
            )
        return proposal if accepted else HOLD

    def lookahead_summary(self):
        return {
            "horizon_s": self.horizon,
            "evaluations": self.lookahead_evaluations,
            "overrides": self.overrides,
            "branches_run": self.evaluator.branches_run,
        }

    # ------------------------------------------------------------------
    # snapshot protocol (repro.snapshot)
    # ------------------------------------------------------------------
    def __snapshot__(self, ctx):
        state = super().__snapshot__(ctx)
        state["lookahead"] = {
            "evaluations": self.lookahead_evaluations,
            "overrides": self.overrides,
            "branches_run": self.evaluator.branches_run,
        }
        return state

    def __restore__(self, state, ctx):
        super().__restore__(state, ctx)
        # Absent when restoring a plain-policy capture into a lookahead
        # stack; counters then start fresh, which is the honest reading.
        extra = state.get("lookahead")
        if extra:
            self.lookahead_evaluations = int(extra["evaluations"])
            self.overrides = int(extra["overrides"])
            self.evaluator.branches_run = int(extra["branches_run"])


class BeamLookaheadController(LookaheadGoalController):
    """Lookahead controller that plans over action *schedules*.

    Where :class:`LookaheadGoalController` vets a single proposal with
    two branches, this controller beam-searches candidate schedules: the
    (goal-clamped) horizon is split into ``beam_depth`` equal stages;
    each stage expands every surviving branch with the feasible actions
    and keeps the ``beam_width`` best projected margins.  A completed
    schedule's margin uses the same formula as the two-branch evaluator,
    with the schedule's *measured* burn rate over its whole horizon.

    Decision rule: among completed schedules whose margin is
    non-negative, take the one with the richest first action
    (upgrade > hold > degrade), margin breaking ties; if none clears
    the goal, take the maximum-margin schedule.  Only that first action
    is applied — the rest of the schedule is re-planned at the next
    trigger, so beam search changes *which* adaptation fires, never the
    decision cadence.
    """

    _RICHNESS = {UPGRADE: 2, HOLD: 1, DEGRADE: 0}

    def __init__(self, viceroy, monitor, initial_energy, goal_seconds,
                 horizon=12.0, beam_width=4, beam_depth=2, **kwargs):
        if beam_width < 1:
            raise ValueError(f"beam_width must be >= 1, got {beam_width}")
        if beam_depth < 1:
            raise ValueError(f"beam_depth must be >= 1, got {beam_depth}")
        super().__init__(viceroy, monitor, initial_energy, goal_seconds,
                         horizon=horizon, **kwargs)
        self.beam_width = int(beam_width)
        self.beam_depth = int(beam_depth)
        self.beam_plans = 0
        self.beam_expansions = 0

    def _choose_action(self, now, did, demand, residual):
        proposal = self.trigger.decide(demand, residual)
        if proposal == HOLD or self.sim.snapshot_builder is None:
            return proposal
        if proposal == UPGRADE and not self._upgrade_allowed(now):
            # The rate limit will veto it anyway; don't pay for forks.
            return proposal
        remaining = self.time_remaining
        horizon = min(self.horizon, remaining)
        if horizon <= self.decision_period:
            return proposal
        best = self._beam_plan(now, did, residual, remaining, horizon)
        self.lookahead_evaluations += 1
        chosen = best["schedule"][0]
        if chosen != proposal:
            self.overrides += 1
        if self._branch_trace is not None:
            self._branch_trace.instant(
                now, "branch", "beam.verdict", track="branch",
                args={
                    "did": did,
                    "proposal": proposal,
                    "chosen": chosen,
                    "schedule": list(best["schedule"]),
                    "margin_j": best["margin"],
                    "width": self.beam_width,
                    "depth": self.beam_depth,
                },
            )
        return chosen

    def _beam_plan(self, now, did, residual, remaining, horizon):
        """Run the beam search; returns the winning candidate dict."""
        self.beam_plans += 1
        stage_s = horizon / self.beam_depth
        evaluator = self.evaluator
        beam = [{
            "snapshot": Snapshot.capture(self.sim),
            "energy": 0.0,
            "elapsed": 0.0,
            "schedule": (),
            "margin": 0.0,
        }]
        for depth in range(self.beam_depth):
            first = depth == 0
            candidates = []
            for item in beam:
                for action in (HOLD, DEGRADE, UPGRADE):
                    if (first and action == UPGRADE
                            and not self._upgrade_allowed(now)):
                        continue
                    expanded = evaluator.expand(
                        item["snapshot"], action, stage_s, did=did,
                    )
                    if expanded is None:
                        continue
                    self.beam_expansions += 1
                    energy, snap = expanded
                    total = item["energy"] + energy
                    elapsed = item["elapsed"] + stage_s
                    rate = total / elapsed
                    margin = ((residual - total)
                              - rate * max(0.0, remaining - elapsed))
                    candidates.append({
                        "snapshot": snap,
                        "energy": total,
                        "elapsed": elapsed,
                        "schedule": item["schedule"] + (action,),
                        "margin": margin,
                    })
            if not candidates:
                break
            # Stable sort: margin ties keep expansion order (hold
            # before degrade before upgrade), so planning is exactly
            # deterministic.
            candidates.sort(key=lambda c: -c["margin"])
            beam = candidates[:self.beam_width]
        viable = [c for c in beam if c["margin"] >= 0.0]
        if viable:
            return max(viable, key=lambda c: (
                self._RICHNESS[c["schedule"][0]], c["margin"],
            ))
        return beam[0]

    def lookahead_summary(self):
        summary = super().lookahead_summary()
        summary["beam"] = {
            "width": self.beam_width,
            "depth": self.beam_depth,
            "plans": self.beam_plans,
            "expansions": self.beam_expansions,
        }
        return summary

    # ------------------------------------------------------------------
    # snapshot protocol (repro.snapshot)
    # ------------------------------------------------------------------
    def __snapshot__(self, ctx):
        state = super().__snapshot__(ctx)
        # Inside the lookahead dict: plain-lookahead payloads (and the
        # goldens pinned to them) stay byte-identical.
        state["lookahead"]["beam"] = {
            "plans": self.beam_plans,
            "expansions": self.beam_expansions,
        }
        return state

    def __restore__(self, state, ctx):
        super().__restore__(state, ctx)
        beam = (state.get("lookahead") or {}).get("beam")
        if beam:
            self.beam_plans = int(beam["plans"])
            self.beam_expansions = int(beam["expansions"])
