"""The state-capture protocol: ``__snapshot__``/``__restore__``.

Python generators cannot be serialized, so the snapshot subsystem does
not try to freeze live process frames.  Instead every stateful object
in a snapshot-capable stack is *registered* with its simulator
(:meth:`repro.sim.Simulator.register_snapshottable`) and implements two
methods:

``__snapshot__(ctx)``
    Return a JSON-shaped dict of the object's live state.  For every
    pending heap entry the object owns (its next timer tick, its next
    decision), it must call :meth:`CaptureContext.claim` with a *kind*
    string naming the callback.  Capture fails loudly if any live heap
    entry goes unclaimed — an unclaimed event would silently vanish
    from the branch.

``__restore__(state, ctx)``
    Apply a previously captured state dict to a freshly built (never
    started) object.  For each claimed event, :meth:`RestoreContext.
    events` hands back ``(when, seq, kind)`` triples; the object maps
    each kind to a bound callback and re-pushes it via
    :meth:`RestoreContext.push`, preserving the original stamps so
    same-instant FIFO ties break exactly as in the parent.

Both dicts must round-trip through JSON unchanged (``repr`` float
round-tripping is exact in Python, so float state is safe).

Shared-structure channel
------------------------
Heavy state that is immutable once written (a sealed power-journal
prefix, an append-only upcall log) can opt out of per-capture copying:
``__snapshot__`` calls :meth:`CaptureContext.share` with an object
exposing ``materialize()`` and places the returned marker in its state
dict instead of the flat rows.  An in-memory fork's ``__restore__``
gets the live object back from :meth:`RestoreContext.shared` and adopts
it by reference; a flat restore (disk store, JSON round-trip) sees the
materialized rows instead, because :class:`repro.snapshot.state.
Snapshot` expands every marker when its ``payload`` is first read.  The
flat payload is byte-identical to what a non-sharing capture would have
produced, so the on-disk format and every golden stay unchanged.
"""

from __future__ import annotations

__all__ = ["SnapshotError", "CaptureContext", "RestoreContext"]


class SnapshotError(Exception):
    """Capture or restore failed (unclaimed events, version skew, ...)."""


class CaptureContext:
    """Collects event claims while ``__snapshot__`` walks the registry."""

    def __init__(self, sim):
        self.sim = sim
        self.events = []  # [(when, seq, key, kind)] in claim order
        self.shared = {}  # marker key -> shared object (materialize())
        self._live = {entry[1] for entry in sim.live_entries()}
        self._claimed = set()
        self._current_key = None

    def claim(self, entry, kind):
        """Claim one pending heap entry (as returned by ``schedule``).

        ``kind`` is the owner-local name ``__restore__`` will map back
        to a bound callback.  Claiming ``None`` (no pending entry) or a
        cancelled/fired entry is a no-op, so owners can claim their
        ``self._entry`` unconditionally — a stale handle never smuggles
        a dead event into the branch.
        """
        if entry is None:
            return
        when, seq, _callback = entry
        if seq not in self._live or seq in self._claimed:
            return
        self._claimed.add(seq)
        self.events.append((when, seq, self._current_key, str(kind)))

    def capture(self, key, obj):
        """Run one object's ``__snapshot__`` under its registry key."""
        self._current_key = key
        try:
            return obj.__snapshot__(self)
        finally:
            self._current_key = None

    def share(self, name, obj):
        """Register ``obj`` on the shared-structure channel.

        ``obj`` must expose ``materialize()`` returning the JSON-shaped
        value a non-sharing capture would have emitted, and must never
        be mutated after this call (share copies nothing).  Returns the
        marker dict to place in the state dict where the flat value
        would have gone.  The marker is keyed per owner, so two
        registered objects can both share a field called ``journal``.
        """
        key = f"{self._current_key}/{name}"
        if key in self.shared:
            raise SnapshotError(f"duplicate shared-structure key {key!r}")
        self.shared[key] = obj
        return {"__shared__": key}

    def unclaimed(self):
        """Live heap entries no owner claimed (capture-blocking)."""
        return [e for e in self.sim.live_entries()
                if e[1] not in self._claimed]


class RestoreContext:
    """Hands claimed events back to their owners during restore."""

    def __init__(self, sim, events, shared=None):
        self.sim = sim
        self._by_key = {}
        for when, seq, key, kind in events:
            self._by_key.setdefault(key, []).append((when, seq, kind))
        self._shared = shared if shared is not None else {}
        self._current_key = None
        self._pushed = 0
        self._total = len(events)

    def events(self):
        """``(when, seq, kind)`` triples claimed by the current owner."""
        return list(self._by_key.get(self._current_key, ()))

    def push(self, when, seq, callback):
        """Re-push one claimed event with its original stamps."""
        self._pushed += 1
        return self.sim.restore_entry(when, seq, callback)

    def shared(self, name):
        """The live shared object behind this owner's marker, if any.

        Returns ``None`` on a flat restore (disk store, rehydrated
        JSON), where the marker was already expanded to plain rows and
        the owner never sees it — callers only reach for this after
        finding a marker in their state dict, and must treat the
        returned structure as immutable.
        """
        return self._shared.get(f"{self._current_key}/{name}")

    def restore(self, key, obj, state):
        """Run one object's ``__restore__`` under its registry key."""
        self._current_key = key
        try:
            return obj.__restore__(state, self)
        finally:
            self._current_key = None

    def verify_consumed(self):
        if self._pushed != self._total:
            raise SnapshotError(
                f"restore re-pushed {self._pushed} of {self._total} "
                f"captured events — an owner dropped its claims"
            )
