"""Snapshot-capable Section 5 workloads: item-driven state machines.

:mod:`repro.snapshot.scenario` made the goal stack checkpointable with
a synthetic pulsed workload; the paper's actual Section 5 objects
(video clips, utterances, maps, web images) still ran as generator
coroutines, which no snapshot can cross.  This module closes that
coverage gap: :class:`ItemWorkloadApp` walks a workload's item cycle as
a timer-driven state machine — work one item (component at the current
fidelity wattage, machine context attributing the joules to the item),
think, repeat — with its position held in an explicit
:class:`~repro.workloads.cursor.WorkloadCursor` and its think-time
model carrying the ``__cursor__``/``__seek__`` protocol.  Both cursors
ride inside ``__snapshot__`` state, so a mid-phase capture forks to a
byte-identical continuation, and the emitted ``phase.begin`` instants
segment energy signatures per item.

Item durations and wattages are derived from the real workload
descriptors (clip lengths, recognition real-time factors, per-fidelity
transfer sizes), scaled so a single-app run brackets the default goal
the same way the pulse rig does.
"""

from __future__ import annotations

from repro.core.goal import GoalDirectedController
from repro.core.viceroy import Viceroy
from repro.hardware.battery import Battery
from repro.hardware.component import PowerComponent
from repro.hardware.machine import Machine
from repro.obs.metrics import MetricsRegistry
from repro.powerscope.online import OnlinePowerMonitor
from repro.sim import Simulator
from repro.snapshot.scenario import PLATFORM_WATTS, PulseScenario
from repro.workloads.cursor import WorkloadCursor
from repro.workloads.images import IMAGES, JPEG_QUALITIES, QUALITY_FACTOR
from repro.workloads.maps import MAPS
from repro.workloads.thinktime import FixedThinkTime, RandomThinkTime
from repro.workloads.utterances import UTTERANCES
from repro.workloads.videos import VIDEO_CLIPS

__all__ = [
    "ItemWorkloadApp",
    "WORKLOAD_BUILDER_PATH",
    "WORKLOAD_SCENARIOS",
    "build_workload_scenario",
    "run_workload_goal",
    "workload_spec",
]

WORKLOAD_BUILDER_PATH = "repro.snapshot.workload.build_workload_scenario"

DEFAULT_GOAL_SECONDS = 240.0
DEFAULT_INITIAL_ENERGY_J = 2_000.0

#: The four Section 5 workloads this rig can drive.
WORKLOAD_SCENARIOS = ("videos", "utterances", "maps", "images")


def workload_spec(workload):
    """Component, fidelity ladder, and item cycle for one workload.

    Returns ``{"component", "idle_w", "levels": [(name, watts)...]
    highest fidelity first, "items": [(name, active_seconds)...]}``.
    Durations compress real clip/utterance/transfer scales into a few
    seconds to tens of seconds per item; wattages follow each
    workload's per-fidelity byte (or search-space) ratios.
    """
    if workload == "videos":
        return {
            "component": "decoder",
            "idle_w": 0.40,
            "levels": [("baseline", 4.6), ("premiere-b", 3.6),
                       ("premiere-c", 2.8), ("combined", 1.9)],
            "items": [(clip.name, clip.duration_s / 10.0)
                      for clip in VIDEO_CLIPS],
        }
    if workload == "utterances":
        return {
            "component": "recognizer",
            "idle_w": 0.30,
            "levels": [("full", 3.2), ("reduced", 1.9)],
            "items": [(u.name, u.recognition_seconds("full"))
                      for u in UTTERANCES],
        }
    if workload == "maps":
        reference = MAPS[2]  # boston: mid-spread filter factors
        fidelities = ("full", "minor-filter", "secondary-filter",
                      "crop-secondary")
        return {
            "component": "mapper",
            "idle_w": 0.25,
            "levels": [
                (f, 0.8 + 2.9 * reference.bytes_at(f) / reference.full_bytes)
                for f in fidelities
            ],
            "items": [(m.name, m.full_bytes / 400_000.0) for m in MAPS],
        }
    if workload == "images":
        return {
            "component": "distiller",
            "idle_w": 0.20,
            "levels": [(q, 0.7 + 2.7 * QUALITY_FACTOR[q])
                       for q in reversed(JPEG_QUALITIES)],
            "items": [(i.name, max(1.0, i.full_bytes / 40_000.0))
                      for i in IMAGES],
        }
    raise KeyError(f"unknown workload scenario {workload!r} "
                   f"(expected one of {WORKLOAD_SCENARIOS})")


class ItemWorkloadApp:
    """One Section 5 workload as a snapshot-capable state machine.

    Alternates work items and think time: each item raises the app's
    component to the wattage of the current fidelity level for the
    item's duration under a per-item machine context, then the think
    model (itself cursor-resumable) spaces the next item.  Implements
    the priority-ladder protocol, the snapshot protocol, and — through
    its :class:`WorkloadCursor` — the resumable-cursor protocol.
    """

    def __init__(self, sim, machine, name, component, levels, priority,
                 items, think, offset=0.0):
        self.sim = sim
        self.machine = machine
        self.name = name
        self.component = component
        self.levels = [level for level, _watts in levels]
        self.priority = priority
        self.item_names = [item for item, _duration in items]
        self.durations = [duration for _item, duration in items]
        self.think = think
        self.offset = offset
        self.cursor = WorkloadCursor(name, sim=sim, items=self.item_names)
        self.level_index = 0
        self._started = False
        self._active = False
        self._token = None
        self._entry = None

    # ------------------------------------------------------------------
    # priority-ladder protocol
    # ------------------------------------------------------------------
    def can_degrade(self):
        return self.level_index < len(self.levels) - 1

    def can_upgrade(self):
        return self.level_index > 0

    def degrade(self):
        if not self.can_degrade():
            raise ValueError(f"{self.name} already at lowest fidelity")
        self.level_index += 1
        self._apply_level()
        return self.fidelity_level

    def upgrade(self):
        if not self.can_upgrade():
            raise ValueError(f"{self.name} already at highest fidelity")
        self.level_index -= 1
        self._apply_level()
        return self.fidelity_level

    def _apply_level(self):
        if self._active:
            self.component.set_state(self.fidelity_level)

    @property
    def fidelity_level(self):
        return self.levels[self.level_index]

    @property
    def fidelity_normalized(self):
        if len(self.levels) == 1:
            return 1.0
        return 1.0 - self.level_index / (len(self.levels) - 1)

    # ------------------------------------------------------------------
    # item state machine
    # ------------------------------------------------------------------
    def start(self):
        if self._started:
            return
        self._started = True
        self._entry = self.sim.schedule(self.offset, self._begin)

    def _begin(self, _time):
        duration = self.durations[self.cursor.position % len(self.durations)]
        item = self.cursor.begin()
        self._active = True
        self._token = self.machine.push_context(self.name, item)
        self.component.set_state(self.fidelity_level)
        self._entry = self.sim.schedule(duration, self._end)

    def _end(self, _time):
        self.component.set_state("idle")
        self.machine.pop_context(self._token)
        self._token = None
        self._active = False
        self.cursor.end()
        self._entry = self.sim.schedule(self.think.next(), self._begin)

    # ------------------------------------------------------------------
    # snapshot protocol (repro.snapshot)
    # ------------------------------------------------------------------
    def __snapshot__(self, ctx):
        # One pending transition at most: the item end while active,
        # the next item start while thinking.
        ctx.claim(self._entry, "end" if self._active else "begin")
        return {
            "started": self._started,
            "active": self._active,
            "level_index": self.level_index,
            "token": self._token,
            "priority": self.priority,
            "cursor": self.cursor.__cursor__(),
            "think": self.think.__cursor__(),
        }

    def __restore__(self, state, ctx):
        # The component's power state is restored by the machine; the
        # cursors carry the workload position and the think-model RNG.
        self._started = bool(state["started"])
        self._active = bool(state["active"])
        self.level_index = int(state["level_index"])
        self._token = state["token"]
        self.priority = state["priority"]
        self.cursor.__seek__(state["cursor"])
        self.think.__seek__(state["think"])
        for when, seq, kind in ctx.events():
            callback = {"begin": self._begin, "end": self._end}[kind]
            self._entry = ctx.push(when, seq, callback)


def build_workload_scenario(workload="videos",
                            goal_seconds=DEFAULT_GOAL_SECONDS,
                            initial_energy=DEFAULT_INITIAL_ENERGY_J,
                            decision_period=0.5, halflife_fraction=0.10,
                            upgrade_min_interval=15.0, sample_period=0.1,
                            think_seconds=5.0, think_jitter=0.0,
                            think_seed=0,
                            tracer=None, metrics=None):
    """Build one Section 5 workload on the goal stack, never started.

    Mirrors :func:`repro.snapshot.scenario.build_pulse_scenario`:
    every stateful object registers under a stable key, the simulator
    carries the builder reference, and ``tracer``/``metrics`` stay out
    of the recorded params (runtime environment, not identity).
    ``think_jitter`` > 0 selects the seeded random think-time model —
    the RNG position rides in the snapshot as a cursor.
    """
    params = {
        "workload": workload,
        "goal_seconds": goal_seconds,
        "initial_energy": initial_energy,
        "decision_period": decision_period,
        "halflife_fraction": halflife_fraction,
        "upgrade_min_interval": upgrade_min_interval,
        "sample_period": sample_period,
        "think_seconds": think_seconds,
        "think_jitter": think_jitter,
        "think_seed": think_seed,
    }
    spec = workload_spec(workload)
    metrics = metrics if metrics is not None else MetricsRegistry()
    sim = Simulator(tracer=tracer)
    battery = Battery(initial_energy)
    machine = Machine(sim, battery, metrics=metrics)
    machine.attach(PowerComponent("platform", {"on": PLATFORM_WATTS}, "on"))

    component = machine.attach(PowerComponent(
        spec["component"],
        dict({"idle": spec["idle_w"]}, **dict(spec["levels"])),
        "idle",
    ))
    if think_jitter > 0.0:
        think = RandomThinkTime(mean=think_seconds, spread=think_jitter,
                                seed=think_seed)
    else:
        think = FixedThinkTime(think_seconds)
    app = ItemWorkloadApp(
        sim, machine, workload, component, spec["levels"], priority=2,
        items=spec["items"], think=think,
    )

    monitor = OnlinePowerMonitor(machine, period=sample_period)
    viceroy = Viceroy(sim, machine=machine, metrics=metrics)
    viceroy.register_application(app)
    controller = GoalDirectedController(
        viceroy, monitor, initial_energy, goal_seconds,
        halflife_fraction=halflife_fraction,
        decision_period=decision_period,
        upgrade_min_interval=upgrade_min_interval,
    )

    sim.register_snapshottable("machine", machine)
    sim.register_snapshottable("battery", battery)
    sim.register_snapshottable("monitor", monitor)
    sim.register_snapshottable("viceroy", viceroy)
    sim.register_snapshottable("controller", controller)
    sim.register_snapshottable(f"app.{workload}", app)
    sim.snapshot_builder = (WORKLOAD_BUILDER_PATH, params)
    return PulseScenario(sim, machine, battery, monitor, viceroy,
                         controller, [app], params)


def run_workload_goal(**params):
    """Build, start, run to the goal, and return the summary dict."""
    scenario = build_workload_scenario(**params)
    scenario.start()
    scenario.run()
    return scenario.summary()
