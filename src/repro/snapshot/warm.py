"""Warm-started fleet sweeps: restore a shared scenario prefix from disk.

The paper's Figure 22 experiment revises the battery-duration estimate
mid-run; sweeping the revision (how much longer, how much extra energy)
re-simulates the identical pre-revision prefix once per sweep point.
This module factors that prefix out through the snapshot store: every
sweep point computes the :func:`~repro.snapshot.disk.snapshot_key` of
its scenario prefix — builder + params + the extension instant — and
*restores* the stored snapshot instead of re-simulating when a
previous point (any worker, any earlier campaign) already captured it.

The warm path is exact, not approximate: restore reproduces the cold
run byte-for-byte (see ``tests/test_snapshot_determinism.py``), so a
warm-started campaign's results are identical to a cold one's — the
``repro snapshot sweep`` CLI asserts exactly that, and the runner
reports restored tasks in campaign telemetry (``restored``).
"""

from __future__ import annotations

from repro.fleet.spec import CampaignSpec, Task
from repro.snapshot.disk import SnapshotStore, snapshot_key
from repro.snapshot.scenario import build_pulse_scenario
from repro.snapshot.state import Snapshot

__all__ = ["pulse_goal_summary", "build_warm_campaign"]

TASK_FN = "repro.snapshot.warm.pulse_goal_summary"

#: Default extension instant: deep enough that the prefix has real
#: adaptation history, early enough that the suffix dominates runtime.
DEFAULT_EXTEND_AT = 120.0


def pulse_goal_summary(extend_by=0.0, extend_energy=0.0,
                       extend_at=DEFAULT_EXTEND_AT, warm=False,
                       snapshot_dir=None, **scenario_params):
    """One sweep point: pulse scenario + mid-run goal extension.

    Runs the pulse goal scenario to ``extend_at``, applies the goal
    extension there, and runs to the (extended) goal.  With ``warm``
    and a ``snapshot_dir``, the pre-extension prefix is restored from
    the snapshot store when available; on a miss the prefix is
    simulated cold and captured for every later sweep point.  The
    returned summary carries ``snapshot_restored`` so the fleet runner
    can count warm starts in campaign telemetry.
    """
    scenario = build_pulse_scenario(**scenario_params)
    goal = scenario.params["goal_seconds"]
    if extend_at >= goal:
        raise ValueError(
            f"extend_at {extend_at:g}s must precede the goal {goal:g}s"
        )
    restored = False
    snapshot = None
    store = None
    key = None
    if warm and snapshot_dir:
        builder, params = scenario.sim.snapshot_builder
        key = snapshot_key(builder, params, extend_at)
        store = SnapshotStore(snapshot_dir)
        snapshot = store.get(key)
    if snapshot is not None:
        scenario = snapshot.restore()
        restored = True
    else:
        scenario.start()
        scenario.sim.run(until=extend_at)
        if store is not None:
            store.put(key, Snapshot.capture(scenario.sim))
    if extend_by or extend_energy:
        scenario.extend(extend_by, extend_energy)
    scenario.run()
    summary = scenario.summary()
    summary["snapshot_restored"] = restored
    summary["extend_by"] = extend_by
    summary["extend_energy"] = extend_energy
    return summary


def build_warm_campaign(extensions=(0.0, 20.0, 40.0, 60.0),
                        lookahead_axis=(False, True),
                        extend_at=DEFAULT_EXTEND_AT, energy_per_second=8.0,
                        warm=True, snapshot_dir=None,
                        name="pulse-extension-sweep", **scenario_params):
    """Sweep goal extensions × adaptation policies as one campaign.

    All tasks sharing a policy share one scenario prefix up to
    ``extend_at``, so a warm campaign simulates each prefix once and
    restores it ``len(extensions) - 1`` times.  Extensions are paired
    with proportional extra energy (``energy_per_second`` joules per
    extended second) so longer goals stay feasible — the same
    relationship the paper's Figure 22 extension bears to its battery.
    """
    tasks = []
    for lookahead in lookahead_axis:
        for extend_by in extensions:
            policy = "lookahead" if lookahead else "base"
            params = dict(scenario_params)
            params.update({
                "extend_by": extend_by,
                "extend_energy": extend_by * energy_per_second,
                "extend_at": extend_at,
                "warm": warm,
                "snapshot_dir": snapshot_dir,
                "lookahead": lookahead,
            })
            tasks.append(Task(
                id=f"{policy}/ext{int(extend_by)}", fn=TASK_FN, params=params,
            ))
    return CampaignSpec(name=name, tasks=tasks)
