"""On-disk snapshot store: versioned, sha256-addressed, atomic.

Follows :class:`repro.fleet.cache.ResultCache`'s layout — one JSON file
per record in a directory, written via tempfile + rename so a killed
run never leaves a truncated snapshot — but keyed by *scenario prefix
identity*: :func:`snapshot_key` hashes the builder path, the builder
params, and the capture instant, so every fleet sweep point sharing a
scenario prefix resolves to the same stored snapshot and restores
instead of re-simulating (see :mod:`repro.snapshot.warm`).

Each record wraps the snapshot payload with its own content digest;
a record whose body no longer matches its digest (disk fault, partial
legacy write) is treated as a miss and discarded, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

from repro.fleet.spec import canonical_json
from repro.snapshot.protocol import SnapshotError
from repro.snapshot.state import PAYLOAD_VERSION, Snapshot

__all__ = ["SnapshotStore", "snapshot_key"]

#: Bump to invalidate every stored snapshot (record layout changed).
STORE_VERSION = 1


def snapshot_key(builder, params, at_time):
    """Stable hex digest identifying one scenario prefix.

    Two campaigns capture-compatible up to ``at_time`` — same builder,
    same params, same capture instant — share a key regardless of what
    they do afterwards, which is exactly the prefix-sharing property
    warm-started sweeps need.
    """
    text = canonical_json({
        "v": STORE_VERSION,
        "payload_v": PAYLOAD_VERSION,
        "builder": builder,
        "params": params,
        "t": float(at_time),
    })
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class SnapshotStore:
    """A directory of ``<key>.snap.json`` snapshot records."""

    def __init__(self, directory):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    def path(self, key):
        return os.path.join(self.directory, f"{key}.snap.json")

    # ------------------------------------------------------------------
    def put(self, key, snapshot):
        """Atomically store a :class:`Snapshot` under ``key``."""
        body = canonical_json(snapshot.payload)
        record = {
            "store_version": STORE_VERSION,
            "sha256": hashlib.sha256(body.encode("utf-8")).hexdigest(),
            "payload": snapshot.payload,
        }
        text = json.dumps(record, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return key

    def get(self, key):
        """Load the :class:`Snapshot` stored under ``key``, or ``None``.

        Version skew and integrity failures are misses (the record is
        discarded), matching the fleet cache's corrupt-record policy.
        """
        try:
            with open(self.path(key), "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            self.discard(key)
            return None
        if record.get("store_version") != STORE_VERSION:
            self.discard(key)
            return None
        payload = record.get("payload")
        if payload is None or payload.get("version") != PAYLOAD_VERSION:
            self.discard(key)
            return None
        body = canonical_json(payload)
        if hashlib.sha256(body.encode("utf-8")).hexdigest() != record.get("sha256"):
            self.discard(key)
            return None
        return Snapshot(payload)

    def require(self, key):
        snapshot = self.get(key)
        if snapshot is None:
            raise SnapshotError(f"no snapshot stored under {key}")
        return snapshot

    # ------------------------------------------------------------------
    def discard(self, key):
        try:
            os.unlink(self.path(key))
        except OSError:
            pass
        try:
            os.unlink(self.pin_path(key))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # pinning + pruning
    # ------------------------------------------------------------------
    def pin_path(self, key):
        return os.path.join(self.directory, f"{key}.pin")

    def pin(self, key):
        """Protect ``key`` from :meth:`prune` (a baseline worth keeping)."""
        if key not in self:
            raise SnapshotError(f"cannot pin {key}: no such snapshot")
        with open(self.pin_path(key), "w", encoding="utf-8"):
            pass
        return key

    def unpin(self, key):
        try:
            os.unlink(self.pin_path(key))
        except OSError:
            pass

    def pinned(self, key):
        return os.path.exists(self.pin_path(key))

    def prune(self, keep_latest, dry_run=False):
        """Delete all but the ``keep_latest`` most recent snapshots.

        Recency is file modification time (a re-``put`` refreshes it).
        Pinned snapshots never count against the budget and never get
        deleted.  Returns ``{"kept": [...], "deleted": [...],
        "pinned": [...]}`` with keys in recency order, newest first.
        """
        if keep_latest < 0:
            raise ValueError(f"keep_latest must be >= 0, got {keep_latest}")
        entries = []
        for key in self.keys():
            try:
                mtime = os.path.getmtime(self.path(key))
            except OSError:
                continue  # deleted underneath us
            entries.append((mtime, key))
        entries.sort(reverse=True)
        kept, deleted, pinned = [], [], []
        budget = keep_latest
        for _, key in entries:
            if self.pinned(key):
                pinned.append(key)
                kept.append(key)
            elif budget > 0:
                kept.append(key)
                budget -= 1
            else:
                deleted.append(key)
                if not dry_run:
                    self.discard(key)
        return {"kept": kept, "deleted": deleted, "pinned": pinned}

    def keys(self):
        suffix = ".snap.json"
        return [
            name[: -len(suffix)]
            for name in os.listdir(self.directory)
            if name.endswith(suffix) and not name.startswith(".tmp-")
        ]

    def __len__(self):
        return len(self.keys())

    def __contains__(self, key):
        return os.path.exists(self.path(key))
