"""repro.snapshot: deterministic checkpoint/fork of the simulated stack.

The subsystem has four layers:

* :mod:`repro.snapshot.protocol` — the ``__snapshot__``/``__restore__``
  duck protocol plus the capture/restore contexts that carry pending
  heap events across the boundary with their original ``(when, seq)``
  stamps.
* :mod:`repro.snapshot.state` — :class:`Snapshot`: capture a registered
  stack into a JSON-shaped payload, ``fork()`` independent branches,
  restore byte-identical continuations.
* :mod:`repro.snapshot.disk` — :class:`SnapshotStore`: the versioned,
  sha256-addressed on-disk format fleet campaigns warm-start from.
* :mod:`repro.snapshot.lookahead` — :class:`WhatIfEvaluator` and
  :class:`LookaheadGoalController`: fork a branch per candidate
  fidelity action at each adaptation decision, advance a horizon, and
  score predicted energy against the goal.

:mod:`repro.snapshot.scenario` provides the snapshot-capable goal rig
(timer-driven workloads — no generator processes), and
:mod:`repro.snapshot.warm` the warm-started fleet sweep built on it.
"""

from repro.snapshot.disk import SnapshotStore, snapshot_key
from repro.snapshot.protocol import SnapshotError
from repro.snapshot.state import Snapshot

__all__ = [
    "Snapshot",
    "SnapshotError",
    "SnapshotStore",
    "snapshot_key",
]
