"""User think-time models (paper Sections 3.5–3.6).

Viewing a map or Web page includes a period during which the user
absorbs the content; energy consumed keeping the content visible is
charged to the application.  The paper uses a 5-second default with
sensitivity analysis at 0, 10 and 20 seconds; Section 5's longer
experiments also interleave five-second think times.
"""

from __future__ import annotations

import random

__all__ = ["DEFAULT_THINK_S", "THINK_SWEEP_S", "FixedThinkTime", "RandomThinkTime"]

DEFAULT_THINK_S = 5.0
THINK_SWEEP_S = (0.0, 5.0, 10.0, 20.0)


class FixedThinkTime:
    """Deterministic think time (the paper's experimental control)."""

    def __init__(self, seconds=DEFAULT_THINK_S):
        if seconds < 0:
            raise ValueError(f"think time must be >= 0, got {seconds}")
        self.seconds = seconds
        self.draws = 0

    def next(self):
        """Next think time (always the constant)."""
        self.draws += 1
        return self.seconds

    # -- resumable-cursor protocol -------------------------------------
    def __cursor__(self):
        return {"draws": self.draws}

    def __seek__(self, state):
        self.draws = int(state["draws"])
        return self


class RandomThinkTime:
    """Uniformly jittered think time for less synthetic workloads."""

    def __init__(self, mean=DEFAULT_THINK_S, spread=0.5, seed=0):
        if mean < 0 or not 0 <= spread <= 1:
            raise ValueError(f"invalid think-time model mean={mean} spread={spread}")
        self.mean = mean
        self.spread = spread
        self.seed = seed
        self.draws = 0
        self._rng = random.Random(seed)

    def next(self):
        low = self.mean * (1 - self.spread)
        high = self.mean * (1 + self.spread)
        self.draws += 1
        return self._rng.uniform(low, high)

    # -- resumable-cursor protocol -------------------------------------
    def __cursor__(self):
        return {"seed": self.seed, "draws": self.draws}

    def __seek__(self, state):
        # Restoring the RNG stream by replay keeps the cursor JSON-shaped
        # (no pickled Random state) at the cost of `draws` uniform calls —
        # each next() consumes exactly one underlying random() draw.
        if state["seed"] != self.seed:
            raise ValueError(
                f"cursor seed {state['seed']} does not match model seed "
                f"{self.seed}"
            )
        self._rng = random.Random(self.seed)
        self.draws = 0
        for _ in range(int(state["draws"])):
            self.next()
        return self
