"""Web workload: four GIF images (paper Section 3.6).

The images range from 110 bytes to 175 kB.  A distillation server
transcodes each image to lower fidelity with lossy JPEG compression at
qualities 75 / 50 / 25 / 5 before transmission — the strategy of Fox
et al., with fidelity control at the client.  Tiny images cannot
shrink much (there is a floor of protocol and header bytes), which is
why the paper finds the energy benefit of Web fidelity reduction
"disappointing" (4–14 % below hardware-only power management).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WebImage", "IMAGES", "JPEG_QUALITIES", "image_by_name"]

# JPEG qualities ordered lowest fidelity first.
JPEG_QUALITIES = ("jpeg-5", "jpeg-25", "jpeg-50", "jpeg-75", "full")

# Transcoded size as a fraction of the original.
QUALITY_FACTOR = {
    "full": 1.00,
    "jpeg-75": 0.55,
    "jpeg-50": 0.38,
    "jpeg-25": 0.24,
    "jpeg-5": 0.10,
}

# No transcoding shrinks below headers + minimal payload.
MIN_BYTES = 110


@dataclass(frozen=True)
class WebImage:
    """One Web image with distillation sizes."""

    name: str
    full_bytes: int

    def bytes_at(self, quality):
        """Transfer size after distillation to ``quality``."""
        if quality not in QUALITY_FACTOR:
            raise KeyError(f"{self.name}: unknown JPEG quality {quality!r}")
        return max(MIN_BYTES, int(self.full_bytes * QUALITY_FACTOR[quality]))


IMAGES = (
    WebImage("image-1", 175_000),
    WebImage("image-2", 80_000),
    WebImage("image-3", 21_000),
    WebImage("image-4", 110),
)


def image_by_name(name):
    """Look up one of the four measurement images."""
    for image in IMAGES:
        if image.name == name:
            return image
    raise KeyError(f"unknown image {name!r}")
