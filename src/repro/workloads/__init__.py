"""Workload descriptors for the four adaptive applications."""

from repro.workloads.cursor import WORKLOAD_CATEGORY, CursorError, WorkloadCursor
from repro.workloads.images import IMAGES, JPEG_QUALITIES, WebImage, image_by_name
from repro.workloads.maps import MAP_FIDELITIES, MAPS, CityMap, map_by_name
from repro.workloads.stochastic import BurstySchedule, generate_schedules
from repro.workloads.trace import SessionTrace, TraceAction, TraceCursor, TraceError
from repro.workloads.thinktime import (
    DEFAULT_THINK_S,
    THINK_SWEEP_S,
    FixedThinkTime,
    RandomThinkTime,
)
from repro.workloads.utterances import (
    SPEECH_MODELS,
    UTTERANCES,
    WAVEFORM_BYTES_PER_SECOND,
    Utterance,
    utterance_by_name,
)
from repro.workloads.videos import (
    TRACKS,
    VIDEO_CLIPS,
    WINDOWS,
    VideoClip,
    clip_by_name,
)

__all__ = [
    "VideoClip",
    "VIDEO_CLIPS",
    "TRACKS",
    "WINDOWS",
    "clip_by_name",
    "Utterance",
    "UTTERANCES",
    "SPEECH_MODELS",
    "WAVEFORM_BYTES_PER_SECOND",
    "utterance_by_name",
    "CityMap",
    "MAPS",
    "MAP_FIDELITIES",
    "map_by_name",
    "WebImage",
    "IMAGES",
    "JPEG_QUALITIES",
    "image_by_name",
    "FixedThinkTime",
    "RandomThinkTime",
    "DEFAULT_THINK_S",
    "THINK_SWEEP_S",
    "BurstySchedule",
    "generate_schedules",
    "SessionTrace",
    "TraceAction",
    "TraceCursor",
    "TraceError",
    "WORKLOAD_CATEGORY",
    "CursorError",
    "WorkloadCursor",
]
