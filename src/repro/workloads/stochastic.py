"""The stochastic bursty workload of paper Section 5.4.

Each of the four applications independently alternates between active
and idle minutes.  During any given minute an application keeps its
state with probability 0.9 and switches with probability 0.1.  An
active application executes a fixed one-minute workload; an idle one
does nothing.  Five different random seeds give the five trials of
Figure 22.
"""

from __future__ import annotations

import random

__all__ = ["BurstySchedule", "generate_schedules"]


class BurstySchedule:
    """A minute-by-minute active/idle schedule for one application."""

    STAY_PROBABILITY = 0.9

    def __init__(self, name, minutes, seed, initially_active=True):
        self.name = name
        self.seed = seed
        self._rng = random.Random(seed)
        states = []
        active = initially_active
        for _minute in range(minutes):
            states.append(active)
            if self._rng.random() >= self.STAY_PROBABILITY:
                active = not active
        self.states = states
        self.position = 0

    def __len__(self):
        return len(self.states)

    def active_in_minute(self, minute):
        """True when the application should run during ``minute``."""
        if not 0 <= minute < len(self.states):
            raise IndexError(f"minute {minute} outside schedule")
        return self.states[minute]

    def next_minute(self):
        """Consume the schedule in order: ``(minute, active)`` and advance."""
        minute = self.position
        active = self.active_in_minute(minute)
        self.position += 1
        return minute, active

    # -- resumable-cursor protocol -------------------------------------
    def __cursor__(self):
        return {"position": self.position}

    def __seek__(self, state):
        position = int(state["position"])
        if not 0 <= position <= len(self.states):
            raise ValueError(f"cursor position {position} outside schedule")
        self.position = position
        return self

    @property
    def duty_cycle(self):
        """Fraction of minutes active."""
        if not self.states:
            return 0.0
        return sum(self.states) / len(self.states)


def generate_schedules(app_names, minutes, seed):
    """One schedule per application, derived from a single trial seed."""
    return {
        name: BurstySchedule(name, minutes, seed=seed * 1009 + i)
        for i, name in enumerate(app_names)
    }
