"""Speech workload: four pre-recorded utterances (paper Section 3.4).

Utterances run one to seven seconds.  The waveform is 16-bit 16 kHz
mono (32 kB per second of speech) — what the front-end ships to a
remote Janus instance in remote mode.  Recognition cost is expressed
as a real-time factor (CPU seconds per utterance second); the full
vocabulary/acoustic model is several times slower than the reduced
model, which is the paper's fidelity dimension.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Utterance",
    "UTTERANCES",
    "SPEECH_MODELS",
    "WAVEFORM_BYTES_PER_SECOND",
    "utterance_by_name",
]

WAVEFORM_BYTES_PER_SECOND = 32_000  # 16-bit 16 kHz mono

# Recognition real-time factors by vocabulary/acoustic model.  The
# reduced model substantially shrinks the search space (paper: "this
# substantially reduces the memory footprint and processing required").
SPEECH_MODELS = {
    "full": {"rtf": 1.6},
    "reduced": {"rtf": 0.95},
}


@dataclass(frozen=True)
class Utterance:
    """One spoken utterance.

    ``complexity`` scatters per-utterance recognition effort around the
    model's real-time factor — the source of the cross-object variation
    visible in the paper's Figure 8.
    """

    name: str
    duration_s: float
    complexity: float = 1.0

    @property
    def waveform_bytes(self):
        """Raw waveform size shipped for remote recognition."""
        return int(self.duration_s * WAVEFORM_BYTES_PER_SECOND)

    def recognition_seconds(self, model):
        """CPU seconds to recognize this utterance with ``model``."""
        if model not in SPEECH_MODELS:
            raise KeyError(f"unknown speech model {model!r}")
        return self.duration_s * SPEECH_MODELS[model]["rtf"] * self.complexity


UTTERANCES = (
    Utterance("utterance-1", 1.4, complexity=1.10),
    Utterance("utterance-2", 3.1, complexity=0.95),
    Utterance("utterance-3", 5.2, complexity=1.00),
    Utterance("utterance-4", 6.8, complexity=0.90),
)


def utterance_by_name(name):
    """Look up one of the four measurement utterances."""
    for utterance in UTTERANCES:
        if utterance.name == name:
            return utterance
    raise KeyError(f"unknown utterance {name!r}")
