"""Trace-driven workloads: record and replay user sessions.

The paper's controlled experiments use scripted loops; its future-work
section calls for studying real use.  A session trace is an ordered
list of timed actions — recognize an utterance, browse an image, view
a map, play a video segment, idle — that can be written by hand,
parsed from a simple text format, or recorded from a live run, then
replayed deterministically against any rig configuration.

Text format (one action per line, ``#`` comments):

    0.0   speech utterance-1
    8.0   web image-2
    20.0  map boston
    40.0  video video-1 15
    60.0  idle 10
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.cursor import WorkloadCursor
from repro.workloads.images import image_by_name
from repro.workloads.maps import map_by_name
from repro.workloads.utterances import utterance_by_name
from repro.workloads.videos import clip_by_name

__all__ = ["TraceAction", "SessionTrace", "TraceCursor", "TraceError"]

ACTIONS = ("speech", "web", "map", "video", "idle")


class TraceError(Exception):
    """Malformed trace input."""


@dataclass(frozen=True)
class TraceAction:
    """One timed action in a session trace.

    ``at`` is the earliest start time (seconds from trace start);
    actions run in order, later than ``at`` if the previous action
    overruns.  ``argument`` names the workload object (or the idle /
    video duration).
    """

    at: float
    kind: str
    argument: str
    duration: float = 0.0

    def __post_init__(self):
        if self.at < 0:
            raise TraceError(f"negative action time {self.at}")
        if self.kind not in ACTIONS:
            raise TraceError(f"unknown action kind {self.kind!r}")
        if self.kind in ("video", "idle") and self.duration <= 0:
            raise TraceError(f"{self.kind} actions need a positive duration")


class SessionTrace:
    """An ordered, replayable user session."""

    def __init__(self, actions):
        self.actions = sorted(actions, key=lambda a: a.at)

    def __len__(self):
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    @property
    def span(self):
        """Nominal trace length (start of the last action)."""
        return self.actions[-1].at if self.actions else 0.0

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text):
        """Parse the text format described in the module docstring."""
        actions = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) < 2:
                raise TraceError(f"line {lineno}: expected 'time kind ...'")
            try:
                at = float(parts[0])
            except ValueError as exc:
                raise TraceError(f"line {lineno}: bad time {parts[0]!r}") from exc
            kind = parts[1]
            if kind == "idle":
                if len(parts) != 3:
                    raise TraceError(f"line {lineno}: idle needs a duration")
                actions.append(
                    TraceAction(at, "idle", "", duration=float(parts[2]))
                )
            elif kind == "video":
                if len(parts) != 4:
                    raise TraceError(
                        f"line {lineno}: video needs a clip and duration"
                    )
                actions.append(
                    TraceAction(at, "video", parts[2], duration=float(parts[3]))
                )
            elif kind in ("speech", "web", "map"):
                if len(parts) != 3:
                    raise TraceError(f"line {lineno}: {kind} needs an object")
                actions.append(TraceAction(at, kind, parts[2]))
            else:
                raise TraceError(f"line {lineno}: unknown action {kind!r}")
        if not actions:
            raise TraceError("empty trace")
        return cls(actions)

    def render(self):
        """Serialize back to the text format (round-trips with parse)."""
        lines = []
        for action in self.actions:
            if action.kind == "idle":
                lines.append(f"{action.at:g} idle {action.duration:g}")
            elif action.kind == "video":
                lines.append(
                    f"{action.at:g} video {action.argument} {action.duration:g}"
                )
            else:
                lines.append(f"{action.at:g} {action.kind} {action.argument}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    def cursor(self):
        """A fresh :class:`TraceCursor` positioned at the first action."""
        return TraceCursor(self)

    def replay(self, rig):
        """Generator: replay the trace against a rig's applications."""
        return self.cursor().replay(rig)


class TraceCursor:
    """Resumable position inside a :class:`SessionTrace` replay.

    ``index`` counts fully completed actions; seeking to it and calling
    :meth:`replay` with the original anchor ``start`` resumes the
    session exactly where it left off.
    """

    def __init__(self, trace):
        self.trace = trace
        self.index = 0

    # -- resumable-cursor protocol -------------------------------------
    def __cursor__(self):
        return {"index": self.index}

    def __seek__(self, state):
        index = int(state["index"])
        if not 0 <= index <= len(self.trace.actions):
            raise TraceError(f"cursor index {index} outside trace")
        self.index = index
        return self

    # ------------------------------------------------------------------
    @staticmethod
    def _item_name(action):
        if action.kind == "idle":
            return f"idle:{action.duration:g}"
        return f"{action.kind}:{action.argument}"

    def replay(self, rig, start=None):
        """Generator: replay the remaining actions against ``rig``.

        ``start`` anchors the trace's time origin; it defaults to the
        simulator's current time, so a resumed cursor must pass the
        original anchor to keep later actions on schedule.
        """
        sim = rig.sim
        if start is None:
            start = sim.now
        phases = WorkloadCursor("session", sim=sim)
        phases.position = self.index
        while self.index < len(self.trace.actions):
            action = self.trace.actions[self.index]
            target = start + action.at
            if sim.now < target:
                yield sim.timeout(target - sim.now)
            phases.begin(self._item_name(action))
            if action.kind == "speech":
                utterance = utterance_by_name(action.argument)
                yield from rig.apps["speech"].recognize(utterance)
            elif action.kind == "web":
                image = image_by_name(action.argument)
                yield from rig.apps["web"].browse(image)
            elif action.kind == "map":
                city = map_by_name(action.argument)
                yield from rig.apps["map"].view(city)
            elif action.kind == "video":
                clip = clip_by_name(action.argument)
                yield from rig.apps["video"].play(
                    clip, max_seconds=action.duration
                )
            elif action.kind == "idle":
                yield sim.timeout(action.duration)
            phases.end()
            self.index = phases.position
