"""Map workload: four U.S. city maps (paper Section 3.5).

Fidelity is lowered by *filtering* (dropping minor roads, then also
secondary roads) and by *cropping* (restricting to a geographic subset
of half the original height and width).  Both act on the server before
transmission, so the client-side effect is fewer bytes fetched and
rendered.  Per-city size factors differ — a dense urban grid loses
more bytes to a road filter than a sparse one — which produces the wide
per-object savings bands of Figure 10 (e.g. 6–51 % for the minor-road
filter).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CityMap", "MAPS", "MAP_FIDELITIES", "map_by_name"]

# Fidelity names ordered lowest fidelity first (crop + aggressive filter
# is the paper's "lowest fidelity" for maps).
MAP_FIDELITIES = (
    "crop-secondary",
    "crop-minor",
    "cropped",
    "secondary-filter",
    "minor-filter",
    "full",
)


@dataclass(frozen=True)
class CityMap:
    """One city map with per-fidelity transfer sizes.

    ``minor_factor``/``secondary_factor`` are the byte fractions that
    survive the two filters; ``crop_factor`` the fraction inside the
    cropped region.  Filters and cropping compose multiplicatively.
    """

    name: str
    full_bytes: int
    minor_factor: float
    secondary_factor: float
    crop_factor: float = 0.55

    def bytes_at(self, fidelity):
        """Transfer size at the requested fidelity."""
        factors = {
            "full": 1.0,
            "minor-filter": self.minor_factor,
            "secondary-filter": self.secondary_factor,
            "cropped": self.crop_factor,
            "crop-minor": self.crop_factor * self.minor_factor,
            "crop-secondary": self.crop_factor * self.secondary_factor,
        }
        if fidelity not in factors:
            raise KeyError(f"{self.name}: unknown map fidelity {fidelity!r}")
        return max(1, int(self.full_bytes * factors[fidelity]))


# Dense grids (San Jose) shed many bytes to filtering; sparse towns
# (Allentown) shed few — matching the paper's spread across objects.
MAPS = (
    CityMap("san-jose", 1_900_000, minor_factor=0.42, secondary_factor=0.28),
    CityMap("allentown", 900_000, minor_factor=0.88, secondary_factor=0.62),
    CityMap("boston", 1_500_000, minor_factor=0.60, secondary_factor=0.38),
    CityMap("pittsburgh", 1_200_000, minor_factor=0.72, secondary_factor=0.45),
)


def map_by_name(name):
    """Look up one of the four measurement maps."""
    for city in MAPS:
        if city.name == name:
            return city
    raise KeyError(f"unknown map {name!r}")
