"""The resumable-cursor protocol: ``__cursor__``/``__seek__``.

Workload drivers (think-time models, bursty schedules, session traces)
and workload-driving applications advance through *phases* — one video
clip, one composite iteration, one active minute.  Two things need to
observe that progress:

* **Snapshots.**  A generator's frame cannot be serialized, but a
  cursor can: ``__cursor__()`` returns a JSON-shaped dict of the
  driver's position, and ``__seek__(state)`` restores a freshly built
  driver to that position (replaying RNG draws where needed).  The
  protocol sits beside ``__snapshot__``/``__restore__`` — an app's
  ``__snapshot__`` embeds its drivers' cursor dicts in its own state.
* **Energy signatures.**  :class:`WorkloadCursor` emits
  ``phase.begin``/``phase.end`` instants on the ``workload`` trace
  category as it advances, giving :func:`repro.obs.signature.
  compute_signature` the workload-phase boundaries it segments the
  power journal along.

Both are pure observers: with no tracer installed (or the ``workload``
category filtered) a cursored driver behaves byte-identically to the
old generator path — the cursor never touches the simulator.
"""

from __future__ import annotations

__all__ = ["WORKLOAD_CATEGORY", "CursorError", "WorkloadCursor"]

#: Trace category for workload phase boundaries.
WORKLOAD_CATEGORY = "workload"


class CursorError(Exception):
    """Invalid cursor operation (nested begin, end outside a phase, seek
    against a mismatched driver)."""


class WorkloadCursor:
    """Explicit phase position for one workload.

    Parameters
    ----------
    workload:
        Workload name; the trace track and the first half of the
        ``"workload:item"`` phase ids signatures derive.
    sim:
        Optional simulator; binding resolves the ``workload`` trace
        gate (and the clock phase events are stamped with).  An unbound
        cursor still counts phases — it just emits nothing.
    items:
        Optional item-name cycle; :meth:`begin` with no explicit item
        takes ``items[position % len(items)]``.
    """

    __slots__ = ("workload", "items", "position", "in_phase",
                 "current_item", "_sim", "_trace")

    def __init__(self, workload, sim=None, items=None):
        self.workload = workload
        self.items = tuple(items) if items else None
        self.position = 0
        self.in_phase = False
        self.current_item = None
        self._sim = None
        self._trace = None
        if sim is not None:
            self.bind(sim)

    def bind(self, sim):
        """Attach to ``sim``'s tracer; returns ``self``."""
        self._sim = sim
        self._trace = sim.tracer.gate(WORKLOAD_CATEGORY)
        return self

    def item_at(self, index):
        """Default item name for phase ``index``."""
        if self.items:
            return self.items[index % len(self.items)]
        return f"item-{index}"

    # ------------------------------------------------------------------
    # phase boundaries
    # ------------------------------------------------------------------
    def begin(self, item=None):
        """Enter the next phase; emits ``phase.begin``; returns the item."""
        if self.in_phase:
            raise CursorError(
                f"{self.workload}: begin() inside phase "
                f"{self.current_item!r} (position {self.position})"
            )
        if item is None:
            item = self.item_at(self.position)
        self.in_phase = True
        self.current_item = item
        if self._trace is not None:
            self._trace.instant(
                self._sim.now, WORKLOAD_CATEGORY, "phase.begin",
                track=self.workload,
                args={"workload": self.workload, "item": item,
                      "index": self.position},
            )
        return item

    def end(self):
        """Leave the current phase; emits ``phase.end``; advances."""
        if not self.in_phase:
            raise CursorError(
                f"{self.workload}: end() outside a phase "
                f"(position {self.position})"
            )
        if self._trace is not None:
            self._trace.instant(
                self._sim.now, WORKLOAD_CATEGORY, "phase.end",
                track=self.workload,
                args={"workload": self.workload, "item": self.current_item,
                      "index": self.position},
            )
        self.in_phase = False
        self.current_item = None
        self.position += 1
        return self.position

    # ------------------------------------------------------------------
    # resumable-cursor protocol
    # ------------------------------------------------------------------
    def __cursor__(self):
        state = {"position": self.position, "in_phase": self.in_phase}
        if self.current_item is not None:
            state["item"] = self.current_item
        return state

    def __seek__(self, state):
        self.position = int(state["position"])
        self.in_phase = bool(state["in_phase"])
        self.current_item = state.get("item")
        return self

    def __repr__(self):
        where = f"in {self.current_item!r}" if self.in_phase else "between"
        return (f"<WorkloadCursor {self.workload} position={self.position} "
                f"{where}>")
