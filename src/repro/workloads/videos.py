"""Video workload: four QuickTime/Cinepak clips (paper Section 3.3).

The clips range from 127 to 226 seconds.  Multiple *tracks* of each
clip live on the server, generated offline with Adobe Premiere: the
original encoding ("baseline") and two increasingly lossy encodings
("premiere-b", "premiere-c").  Per-frame byte sizes are calibrated so
the baseline stream nearly saturates the 2 Mb/s WaveLAN — the paper
notes the processor idles because the network cannot deliver frames
faster.  Decode cost scales with encoded frame size; render cost
scales with the display-window area.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VideoClip", "VIDEO_CLIPS", "TRACKS", "WINDOWS", "clip_by_name"]

# Lossy-compression tracks, ordered lowest fidelity first.
TRACKS = ("premiere-c", "premiere-b", "baseline")

# Display-window geometries (pixels).  "reduced" halves both height and
# width, quartering the area (Section 3.3.2).
WINDOWS = {
    "full": (320, 240),
    "reduced": (160, 120),
}

# Encoded size relative to the baseline track.  Premiere-B is the
# milder compression, Premiere-C the aggressive one.
TRACK_BYTE_FACTOR = {
    "baseline": 1.00,
    "premiere-b": 0.70,
    "premiere-c": 0.45,
}


@dataclass(frozen=True)
class VideoClip:
    """One clip: duration, frame rate, and per-track frame sizes."""

    name: str
    duration_s: float
    fps: float
    baseline_frame_bytes: int
    frame_bytes: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.frame_bytes:
            object.__setattr__(
                self,
                "frame_bytes",
                {
                    track: int(self.baseline_frame_bytes * factor)
                    for track, factor in TRACK_BYTE_FACTOR.items()
                },
            )

    @property
    def frame_count(self):
        """Total frames in the clip."""
        return int(self.duration_s * self.fps)

    def track_bytes(self, track):
        """Encoded bytes of one frame on the given track."""
        if track not in self.frame_bytes:
            raise KeyError(f"{self.name}: unknown track {track!r}")
        return self.frame_bytes[track]

    def bitrate_bps(self, track="baseline"):
        """Stream bitrate for a track in bits/second."""
        return self.track_bytes(track) * 8 * self.fps


def _clip(name, duration_s, baseline_kbps):
    """Build a clip whose baseline track runs at ``baseline_kbps``."""
    fps = 12.0  # Cinepak-era frame rate
    frame_bytes = int(baseline_kbps * 1000 / 8 / fps)
    return VideoClip(name, duration_s, fps, frame_bytes)


# Four clips, 127–226 s, baseline bitrates near (but under) the 2 Mb/s
# link so playback is network-limited as in the paper.
VIDEO_CLIPS = (
    _clip("video-1", 127.0, 1560.0),
    _clip("video-2", 163.0, 1470.0),
    _clip("video-3", 201.0, 1620.0),
    _clip("video-4", 226.0, 1510.0),
)


def clip_by_name(name):
    """Look up one of the four measurement clips."""
    for clip in VIDEO_CLIPS:
        if clip.name == name:
            return clip
    raise KeyError(f"unknown video clip {name!r}")
