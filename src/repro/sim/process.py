"""Generator-based simulated processes.

A process is a Python generator that ``yield``\\ s :class:`~repro.sim.engine.Waitable`
objects (timeouts, events, resource grants).  The process runner drives
the generator, resuming it with the waitable's value each time one
fires.  Processes compose with ``yield from``, which is how higher
layers (applications, RPCs, device drivers) build structured activity.

A process is itself a waitable: other processes may ``yield proc`` to
join on its completion and receive its return value.
"""

from __future__ import annotations

import types

from repro.sim.engine import Waitable
from repro.sim.errors import Interrupted, ProcessError

__all__ = ["Process"]


class Process(Waitable):
    """Runs a generator to completion over simulated time.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    generator:
        A generator object yielding waitables.
    name:
        Optional human-readable name used in traces and profiles.
    """

    _ids = 0

    def __init__(self, sim, generator, name=None):
        super().__init__(sim)
        if not isinstance(generator, types.GeneratorType):
            raise ProcessError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        Process._ids += 1
        self.pid = Process._ids
        self.name = name or f"process-{self.pid}"
        self._generator = generator
        self._waiting_on = None
        self._interrupt_pending = None
        self.alive = True
        self.failed = False
        self.error = None
        # Start on the next event-loop iteration at the current instant so
        # that the caller finishes its own time step first (FIFO fairness).
        sim.schedule(0.0, lambda _t: self._resume(None))

    def __repr__(self):
        state = "alive" if self.alive else ("failed" if self.failed else "done")
        return f"<Process {self.name} pid={self.pid} {state}>"

    # ------------------------------------------------------------------
    def _resume(self, value):
        if not self.alive:
            return
        self._waiting_on = None
        try:
            if self._interrupt_pending is not None:
                cause, self._interrupt_pending = self._interrupt_pending, None
                target = self._generator.throw(Interrupted(cause[0]))
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupted:
            # Generator chose not to handle the interrupt: treat as exit.
            self._finish(None)
            return
        except Exception as exc:  # propagate process crash to joiners
            self.alive = False
            self.failed = True
            self.error = exc
            raise
        if not isinstance(target, Waitable):
            self.alive = False
            self.failed = True
            raise ProcessError(
                f"{self.name} yielded {target!r}; processes must yield Waitables"
            )
        self._waiting_on = target
        target.subscribe(self._resume)

    def _finish(self, value):
        self.alive = False
        self.trigger(value)

    # ------------------------------------------------------------------
    def interrupt(self, cause=None):
        """Raise :class:`~repro.sim.errors.Interrupted` inside the process.

        Delivery happens at the current instant, replacing whatever the
        process was waiting on.  Interrupting a finished process is a
        no-op.
        """
        if not self.alive:
            return
        self._interrupt_pending = (cause,)
        self.sim.schedule(0.0, lambda _t: self._deliver_interrupt())

    def _deliver_interrupt(self):
        if self.alive and self._interrupt_pending is not None:
            self._resume(None)

    def join(self):
        """Return a waitable that fires when this process completes."""
        return self
