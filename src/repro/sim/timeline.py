"""Timeline tracing: a time-stamped record of simulation events.

Experiments use the timeline to reconstruct the paper's trace figures —
supply/demand curves and per-application fidelity steps over elapsed
time (Figure 19) — and tests use it to assert ordering properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TraceRecord", "Timeline"]


@dataclass(frozen=True)
class TraceRecord:
    """One timeline entry: ``(time, category, label, value)``."""

    time: float
    category: str
    label: str
    value: object = None


@dataclass
class Timeline:
    """An append-only, queryable event trace."""

    records: list = field(default_factory=list)

    def record(self, time, category, label, value=None):
        """Append a :class:`TraceRecord`."""
        self.records.append(TraceRecord(time, category, label, value))

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def category(self, category):
        """All records with the given category, in time order."""
        return [r for r in self.records if r.category == category]

    def series(self, category, label=None):
        """Return ``(times, values)`` for plotting-style consumption."""
        records = [
            r
            for r in self.records
            if r.category == category and (label is None or r.label == label)
        ]
        return [r.time for r in records], [r.value for r in records]

    def last(self, category, label=None):
        """Most recent record in a category, or ``None``."""
        for record in reversed(self.records):
            if record.category == category and (
                label is None or record.label == label
            ):
                return record
        return None

    def between(self, start, end):
        """Records with ``start <= time < end``."""
        return [r for r in self.records if start <= r.time < end]
