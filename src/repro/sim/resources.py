"""FIFO resources for simulated contention.

The reproduction uses resources for the client CPU (capacity 1) and the
wireless link (capacity 1): only one compute burst or one transfer
proceeds at a time, and waiters are served strictly in arrival order.
This mirrors the coarse-grained, non-preemptive interleaving visible in
the paper's PowerScope profiles.
"""

from __future__ import annotations

from collections import deque

from repro.sim.engine import Waitable
from repro.sim.errors import ResourceError

__all__ = ["Resource", "ResourceGrant"]


class ResourceGrant(Waitable):
    """Waitable handed to acquirers; fires when the resource is granted."""

    __slots__ = ("resource", "owner")

    def __init__(self, resource, owner):
        super().__init__(resource.sim)
        self.resource = resource
        self.owner = owner


class Resource:
    """A capacity-limited resource with FIFO granting.

    Examples
    --------
    >>> from repro.sim import Simulator
    >>> sim = Simulator()
    >>> cpu = Resource(sim, capacity=1, name="cpu")
    >>> def worker():
    ...     grant = cpu.acquire(owner="worker")
    ...     yield grant
    ...     yield sim.timeout(1.0)
    ...     cpu.release(grant)
    >>> _ = sim.spawn(worker())
    >>> _ = sim.run()
    """

    def __init__(self, sim, capacity=1, name=None):
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self._queue = deque()
        self._holders = []

    def __repr__(self):
        return (
            f"<Resource {self.name} {len(self._holders)}/{self.capacity} held, "
            f"{len(self._queue)} queued>"
        )

    @property
    def in_use(self):
        """Number of grants currently held."""
        return len(self._holders)

    @property
    def queued(self):
        """Number of acquirers waiting."""
        return len(self._queue)

    def acquire(self, owner=None):
        """Request the resource; returns a :class:`ResourceGrant` waitable."""
        grant = ResourceGrant(self, owner)
        if len(self._holders) < self.capacity:
            self._holders.append(grant)
            grant.trigger(grant)
        else:
            self._queue.append(grant)
        return grant

    def release(self, grant):
        """Release a previously granted :class:`ResourceGrant`."""
        if grant not in self._holders:
            raise ResourceError(f"{self.name}: releasing a grant that is not held")
        self._holders.remove(grant)
        if self._queue:
            nxt = self._queue.popleft()
            self._holders.append(nxt)
            nxt.trigger(nxt)

    def use(self, duration, owner=None, on_grant=None, on_release=None):
        """Generator: hold the resource for ``duration`` simulated seconds.

        ``on_grant``/``on_release`` are optional zero-argument callbacks
        invoked when the resource is actually granted/released — the
        hardware layer uses them to flip device power states and
        attribution contexts exactly while the resource is held.
        """
        grant = self.acquire(owner=owner)
        yield grant
        if on_grant is not None:
            on_grant()
        try:
            yield self.sim.timeout(duration)
        finally:
            if on_release is not None:
                on_release()
            self.release(grant)
