"""Discrete-event simulation kernel used by every substrate in the repo.

Public surface:

* :class:`~repro.sim.engine.Simulator` — clock + event queue
* :class:`~repro.sim.engine.Timeout`, :class:`~repro.sim.engine.Event` —
  waitable primitives
* :class:`~repro.sim.process.Process` — generator-based processes
* :class:`~repro.sim.resources.Resource` — FIFO contention
* :class:`~repro.sim.timeline.Timeline` — trace recording
"""

from repro.sim.engine import Event, Simulator, Timeout, Waitable
from repro.sim.errors import (
    Interrupted,
    ProcessError,
    ResourceError,
    SchedulingError,
    SimulationError,
)
from repro.sim.process import Process
from repro.sim.resources import Resource, ResourceGrant
from repro.sim.scheduler import QuantumScheduler
from repro.sim.timeline import Timeline, TraceRecord

__all__ = [
    "Simulator",
    "Timeout",
    "Event",
    "Waitable",
    "Process",
    "Resource",
    "ResourceGrant",
    "QuantumScheduler",
    "Timeline",
    "TraceRecord",
    "SimulationError",
    "SchedulingError",
    "ProcessError",
    "ResourceError",
    "Interrupted",
]
