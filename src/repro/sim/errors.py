"""Exception types raised by the discrete-event simulation kernel."""


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class SchedulingError(SimulationError):
    """An event was scheduled at an invalid time (e.g. in the past)."""


class ProcessError(SimulationError):
    """A simulated process misbehaved (e.g. yielded a non-waitable)."""


class ResourceError(SimulationError):
    """Invalid resource operation (e.g. releasing a resource not held)."""


class Interrupted(SimulationError):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause
