"""The discrete-event simulation kernel.

The kernel is deliberately small: a monotonic clock, a binary-heap event
queue, and a handful of *waitable* primitives (:class:`Timeout`,
:class:`Event`) that generator-based processes may yield on.  Everything
else in the reproduction — hardware power models, the PowerScope
profiler, the Odyssey viceroy — is built on top of these primitives.

Determinism
-----------
Events scheduled for the same instant fire in FIFO order (a strictly
increasing sequence number breaks ties), so a simulation with a fixed
random seed is exactly reproducible run-to-run.
"""

from __future__ import annotations

import heapq
import math

from repro.obs.tracer import current_tracer
from repro.sim.errors import ProcessError, SchedulingError

__all__ = ["Simulator", "Waitable", "Timeout", "Event"]


class Waitable:
    """Base class for things a process may ``yield`` on.

    A waitable is *triggered* exactly once; callbacks subscribed before
    the trigger fire at trigger time, callbacks subscribed afterwards
    fire immediately.  The triggered ``value`` is delivered back into
    the yielding generator by the process runner.
    """

    __slots__ = ("sim", "_callbacks", "triggered", "value")

    def __init__(self, sim):
        self.sim = sim
        self._callbacks = []
        self.triggered = False
        self.value = None

    def subscribe(self, callback):
        """Register ``callback(value)`` to run when the waitable fires."""
        if self.triggered:
            callback(self.value)
        else:
            self._callbacks.append(callback)

    def trigger(self, value=None):
        """Fire the waitable, delivering ``value`` to all subscribers."""
        if self.triggered:
            return
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)


class Timeout(Waitable):
    """A waitable that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay):
        if delay < 0 or math.isnan(delay):
            raise SchedulingError(f"timeout delay must be >= 0, got {delay!r}")
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, self.trigger)


class Event(Waitable):
    """A waitable fired explicitly by some other actor.

    Unlike :class:`Timeout` there is no implicit schedule; call
    :meth:`Waitable.trigger` (optionally via :meth:`succeed`) when the
    condition the event models has occurred.
    """

    def succeed(self, value=None):
        """Alias for :meth:`Waitable.trigger` that reads better at call sites."""
        self.trigger(value)


class Simulator:
    """A deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(2.5, lambda _: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [2.5]
    """

    def __init__(self, start_time=0.0, tracer=None):
        self.now = float(start_time)
        self._heap = []
        # A plain integer rather than itertools.count so a snapshot can
        # read and restore the counter without burning a value.
        self._next_seq = 0
        self._processes = []
        self._cancelled = set()
        # Snapshot support (repro.snapshot): objects registered here are
        # walked by Snapshot.capture in registration order; the builder
        # reference names the callable that can rebuild this stack.
        self._snapshottables = {}
        self.snapshot_builder = None
        # Tracing (repro.obs): explicit tracer, else the process-wide
        # installed one (the null tracer unless e.g. the CLI's --trace
        # installed a recorder).  The gate is None when the "sim"
        # category is off, so the per-event cost of disabled tracing is
        # one attribute load and one branch.
        self.tracer = tracer if tracer is not None else current_tracer()
        self._trace = self.tracer.gate("sim")
        # Bounded-run marker: set while `run(until=...)` (or an
        # equivalent driver loop) is in charge, so periodic callbacks
        # that batch work ahead of the clock (see OnlinePowerMonitor's
        # fused sampling) know how far they may safely run.
        self._fuse_until = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay, callback):
        """Run ``callback(sim_time)`` after ``delay`` simulated seconds."""
        # `delay != delay` is the NaN test without a math.isnan call;
        # this runs tens of thousands of times per simulated minute.
        if delay < 0 or delay != delay:
            raise SchedulingError(f"cannot schedule {delay!r}s in the past")
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = (self.now + delay, seq, callback)
        heapq.heappush(self._heap, entry)
        return entry

    #: Absolute times within this relative tolerance of ``now`` count as
    #: "now": accumulated float error in ``when`` computed as a sum of
    #: intervals can land a few ulps before the clock.
    SCHEDULE_AT_EPSILON = 1e-9

    def schedule_at(self, when, callback):
        """Run ``callback(sim_time)`` at absolute simulated time ``when``."""
        delay = when - self.now
        if delay < 0 and -delay <= self.SCHEDULE_AT_EPSILON * max(1.0, abs(self.now)):
            delay = 0.0
        return self.schedule(delay, callback)

    def cancel(self, entry):
        """Cancel a pending entry returned by :meth:`schedule`.

        The cancellation is a lazy tombstone: the heap entry stays in
        place and is discarded, without firing, when it reaches the top
        of the queue.  Cancelling an entry that already fired (or was
        already cancelled) is a no-op.  Periodic samplers use this so
        that stopping them leaves no live callback in the heap.
        """
        self._cancelled.add(entry[1])
        trace = self._trace
        if trace is not None:
            trace.instant(self.now, "sim", "cancel", track="engine",
                          args={"seq": entry[1], "due": entry[0]})

    def timeout(self, delay):
        """Return a :class:`Timeout` waitable firing ``delay`` seconds from now."""
        return Timeout(self, delay)

    def event(self):
        """Return a fresh, untriggered :class:`Event`."""
        return Event(self)

    # ------------------------------------------------------------------
    # process management (see repro.sim.process)
    # ------------------------------------------------------------------
    def spawn(self, generator, name=None):
        """Start a generator-based process; returns its :class:`Process`."""
        from repro.sim.process import Process

        process = Process(self, generator, name=name)
        self._processes.append(process)
        return process

    @property
    def processes(self):
        """All processes ever spawned, in spawn order."""
        return tuple(self._processes)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self):
        """Execute the single next live event; returns False if none remain.

        Cancelled entries surfacing at the top of the heap are discarded
        without firing and without advancing the clock.
        """
        heap = self._heap
        cancelled = self._cancelled
        trace = self._trace
        while heap:
            when, seq, callback = heapq.heappop(heap)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                if trace is not None:
                    trace.instant(self.now, "sim", "tombstone",
                                  track="engine", args={"seq": seq})
                continue
            if when < self.now:
                raise ProcessError("event heap corrupted: time ran backwards")
            self.now = when
            if trace is not None:
                trace.instant(when, "sim", "dispatch", track="engine",
                              args={"seq": seq})
            callback(when)
            return True
        return False

    def run(self, until=None):
        """Run until the event queue drains or the clock reaches ``until``.

        When stopped by ``until`` the clock is advanced exactly to
        ``until`` even if no event falls on that instant, so power
        integration up to the horizon is exact.
        """
        if until is None:
            while self.step():
                pass
            return self.now
        if until < self.now:
            raise SchedulingError(f"cannot run until {until} < now {self.now}")
        previous = self._fuse_until
        self._fuse_until = until
        try:
            if self._trace is not None:
                while self._heap and self._heap[0][0] <= until:
                    if not self.step():
                        break
            else:
                # Traceless inner loop: the same dispatch as step(),
                # inlined — this is the branch-advance hot path.
                heap = self._heap
                cancelled = self._cancelled
                pop = heapq.heappop
                while heap and heap[0][0] <= until:
                    when, seq, callback = pop(heap)
                    if cancelled and seq in cancelled:
                        cancelled.discard(seq)
                        continue
                    if when < self.now:
                        raise ProcessError(
                            "event heap corrupted: time ran backwards"
                        )
                    self.now = when
                    callback(when)
        finally:
            self._fuse_until = previous
        self.now = until
        return self.now

    def peek(self):
        """Time of the next live scheduled event, or ``None`` if none remain."""
        heap = self._heap
        cancelled = self._cancelled
        while heap and cancelled and heap[0][1] in cancelled:
            cancelled.discard(heapq.heappop(heap)[1])
        return heap[0][0] if heap else None

    # ------------------------------------------------------------------
    # state capture (see repro.snapshot)
    # ------------------------------------------------------------------
    def register_snapshottable(self, key, obj):
        """Register an object implementing ``__snapshot__``/``__restore__``.

        ``Snapshot.capture`` walks registered objects in registration
        order; each must claim every pending heap entry it owns, so a
        capture with an unclaimed live event fails loudly instead of
        silently dropping it.
        """
        if key in self._snapshottables:
            raise SchedulingError(f"duplicate snapshottable key {key!r}")
        if not hasattr(obj, "__snapshot__") or not hasattr(obj, "__restore__"):
            raise SchedulingError(
                f"{key!r} does not implement __snapshot__/__restore__"
            )
        self._snapshottables[key] = obj
        return obj

    @property
    def snapshottables(self):
        """Registered ``{key: object}`` mapping, in registration order."""
        return dict(self._snapshottables)

    def live_entries(self):
        """Pending ``(when, seq, callback)`` entries, tombstones excluded."""
        cancelled = self._cancelled
        return sorted(e for e in self._heap if e[1] not in cancelled)

    def restore_entry(self, when, seq, callback):
        """Re-push a captured heap entry with its original stamps.

        Used only by snapshot restore: the original ``(when, seq)`` pair
        is preserved so same-instant FIFO ties break exactly as they
        would have in the uninterrupted run.  The sequence counter is
        not consumed.
        """
        entry = (when, seq, callback)
        heapq.heappush(self._heap, entry)
        return entry
