"""Quantum-based CPU scheduling.

The default CPU model serializes whole compute bursts FIFO, which is
accurate for the paper's single-application experiments but coarse for
the concurrent ones: Linux 2.2 timeslices runnable processes at quantum
granularity, so the composite application's recognition bursts and the
video player's decode bursts interleave rather than queue behind each
other.  :class:`QuantumScheduler` provides that behaviour — work is
executed in quantum-sized slices granted FIFO, which for multiple
runnable processes is exactly round-robin.
"""

from __future__ import annotations

from repro.sim.resources import Resource

__all__ = ["QuantumScheduler"]


class QuantumScheduler:
    """Round-robin CPU time-slicing built on a FIFO resource.

    Parameters
    ----------
    sim:
        The driving simulator.
    quantum:
        Timeslice length in seconds (Linux 2.2 default ~= 0.05-0.2 s
        depending on HZ and nice level; 0.05 by default here).
    """

    def __init__(self, sim, quantum=0.05, name="cpu-rr"):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.sim = sim
        self.quantum = quantum
        self.name = name
        self._resource = Resource(sim, capacity=1, name=name)
        self.slices_granted = 0
        self.preemptions = 0

    @property
    def queued(self):
        """Processes waiting for a slice."""
        return self._resource.queued

    @property
    def busy(self):
        """True while a slice is executing."""
        return self._resource.in_use > 0

    def run(self, duration, owner=None, on_slice_start=None, on_slice_end=None):
        """Generator: execute ``duration`` seconds of work in slices.

        ``on_slice_start``/``on_slice_end`` run around every slice —
        the machine layer uses them to flip CPU power state and
        attribution, so energy accounting stays exact across
        preemptions.
        """
        if duration < 0:
            raise ValueError(f"negative work duration {duration}")
        remaining = duration
        while remaining > 1e-12:
            grant = self._resource.acquire(owner=owner)
            yield grant
            slice_length = min(self.quantum, remaining)
            if on_slice_start is not None:
                on_slice_start()
            try:
                yield self.sim.timeout(slice_length)
            finally:
                if on_slice_end is not None:
                    on_slice_end()
                self._resource.release(grant)
            self.slices_granted += 1
            remaining -= slice_length
            if remaining > 1e-12 and self._resource.in_use > 0:
                # The release handed the CPU to a waiter: this slice
                # boundary preempted us (we re-queue behind them —
                # that's the round-robin).
                self.preemptions += 1
