"""Terminal plotting: ASCII line charts for traces.

Benchmarks and the CLI render Figure 19-style supply/demand curves and
fidelity staircases directly in the terminal — no plotting stack
required, deterministic output, diffable in tests.
"""

from __future__ import annotations

__all__ = ["ascii_chart", "ascii_staircase"]


def _scale(value, lo, hi, size):
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(size - 1, max(0, int(round(position * (size - 1)))))


def ascii_chart(series, width=64, height=12, labels=None, title=None):
    """Plot one or more ``(times, values)`` series on a shared canvas.

    Each series gets a marker character (``*``, ``+``, ``o``, ``x``).
    Returns the chart as a string with a y-axis scale and x-range
    footer.
    """
    series = list(series)
    if not series or any(len(t) == 0 for t, _v in series):
        raise ValueError("need at least one non-empty series")
    if width < 8 or height < 3:
        raise ValueError(f"canvas too small: {width}x{height}")
    markers = "*+ox#@"
    all_times = [t for times, _ in series for t in times]
    all_values = [v for _, values in series for v in values]
    t_lo, t_hi = min(all_times), max(all_times)
    v_lo, v_hi = min(all_values), max(all_values)
    if v_hi == v_lo:
        v_hi = v_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (times, values) in enumerate(series):
        marker = markers[index % len(markers)]
        for t, v in zip(times, values):
            col = _scale(t, t_lo, t_hi, width)
            row = height - 1 - _scale(v, v_lo, v_hi, height)
            canvas[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            axis = f"{v_hi:10.0f} |"
        elif row_index == height - 1:
            axis = f"{v_lo:10.0f} |"
        else:
            axis = " " * 10 + " |"
        lines.append(axis + "".join(row))
    lines.append(" " * 11 + "+" + "-" * (width - 1))
    footer = f"{' ' * 12}t = {t_lo:.0f} .. {t_hi:.0f} s"
    if labels:
        legend = "   ".join(
            f"{markers[i % len(markers)]} {label}"
            for i, label in enumerate(labels)
        )
        footer += f"    [{legend}]"
    lines.append(footer)
    return "\n".join(lines)


def ascii_staircase(times, levels, level_names, width=64, title=None):
    """Render a fidelity staircase: one row per level, marks over time.

    ``levels`` holds level *names*; rows are printed highest fidelity
    first, matching the paper's per-application fidelity graphs.
    """
    if len(times) != len(levels):
        raise ValueError("times and levels must align")
    if not times:
        raise ValueError("empty staircase")
    t_lo, t_hi = min(times), max(times)
    rows = {name: [" "] * width for name in level_names}
    # Fill forward: each level holds until the next transition.
    for index, (t, level) in enumerate(zip(times, levels)):
        if level not in rows:
            raise ValueError(f"unknown level {level!r}")
        start_col = _scale(t, t_lo, t_hi, width)
        end_time = times[index + 1] if index + 1 < len(times) else t_hi
        end_col = _scale(end_time, t_lo, t_hi, width)
        for col in range(start_col, max(start_col + 1, end_col + 1)):
            rows[level][col] = "#"
    lines = []
    if title:
        lines.append(title)
    name_width = max(len(n) for n in level_names)
    for name in reversed(list(level_names)):  # highest fidelity on top
        lines.append(f"{name:>{name_width}} |" + "".join(rows[name]))
    lines.append(" " * (name_width + 1) + "+" + "-" * (width - 1))
    lines.append(f"{' ' * (name_width + 2)}t = {t_lo:.0f} .. {t_hi:.0f} s")
    return "\n".join(lines)
