"""CSV export of experiment results and traces.

Benchmarks print paper-style tables; this module writes the same data
as machine-readable CSV so downstream users can re-plot the figures
with their tool of choice.
"""

from __future__ import annotations

import csv
import io

__all__ = ["energy_table_csv", "timeline_csv", "write_csv"]


def energy_table_csv(energies_by_config, object_names=None):
    """Render a ``{config: {object: value}}`` table as CSV text."""
    if not energies_by_config:
        raise ValueError("empty table")
    first = next(iter(energies_by_config.values()))
    objects = list(object_names) if object_names else list(first)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["config"] + objects)
    for config, row in energies_by_config.items():
        writer.writerow([config] + [row.get(obj, "") for obj in objects])
    return buffer.getvalue()


def timeline_csv(timeline, categories=None):
    """Render a :class:`~repro.sim.Timeline` as CSV text.

    ``categories`` filters which record categories are exported; by
    default everything is.  Tuple values (the fidelity records) are
    flattened into separate columns.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time", "category", "label", "value", "extra"])
    for record in timeline:
        if categories is not None and record.category not in categories:
            continue
        value, extra = record.value, ""
        if isinstance(value, tuple):
            value, *rest = value
            extra = ";".join(str(r) for r in rest)
        writer.writerow([record.time, record.category, record.label, value, extra])
    return buffer.getvalue()


def write_csv(path, text):
    """Write CSV text to a file, returning the path."""
    with open(path, "w", newline="") as handle:
        handle.write(text)
    return path
