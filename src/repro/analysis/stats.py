"""Summary statistics for experiment trials.

The paper reports each value as the mean of five (or ten) trials with
90 % confidence intervals; these helpers reproduce that reporting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

try:  # scipy gives exact small-sample t quantiles when available
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - scipy is an install-time given
    _scipy_stats = None

__all__ = ["TrialStats", "summarize", "t_quantile"]

# Two-sided 90% t quantiles by degrees of freedom (fallback table).
_T90 = {
    1: 6.314, 2: 2.920, 3: 2.353, 4: 2.132, 5: 2.015, 6: 1.943,
    7: 1.895, 8: 1.860, 9: 1.833, 10: 1.812, 15: 1.753, 20: 1.725,
    30: 1.697, 60: 1.671,
}


def t_quantile(dof, confidence=0.90):
    """Two-sided Student-t quantile for a confidence interval."""
    if dof < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {dof}")
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    if confidence != 0.90:
        raise ValueError("fallback table only covers 90% confidence")
    keys = sorted(_T90)
    for key in keys:
        if dof <= key:
            return _T90[key]
    return 1.645


@dataclass(frozen=True)
class TrialStats:
    """Mean, sample standard deviation and CI half-width of trials."""

    mean: float
    stdev: float
    ci90: float
    n: int

    @property
    def low(self):
        return self.mean - self.ci90

    @property
    def high(self):
        return self.mean + self.ci90

    def __format__(self, spec):
        spec = spec or ".1f"
        return f"{self.mean:{spec}} ± {self.ci90:{spec}}"


def summarize(values, confidence=0.90):
    """Summarize trial values the way the paper's error bars do."""
    values = list(values)
    if not values:
        raise ValueError("cannot summarize zero trials")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return TrialStats(mean, 0.0, 0.0, 1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stdev = math.sqrt(variance)
    half = t_quantile(n - 1, confidence) * stdev / math.sqrt(n)
    return TrialStats(mean, stdev, half, n)
