"""The linear think-time energy model (paper Sections 3.5–3.6).

The paper expects ``E_t = E_0 + t * P_B``: energy at think time ``t``
is the zero-think-time energy plus think time multiplied by the
client's background power, and Figures 11 and 14 confirm the linear
model fits well.  This module fits the model by least squares and
reports the fit quality so the reproduction can make the same claim.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LinearFit", "fit_linear"]


@dataclass(frozen=True)
class LinearFit:
    """``energy = intercept + slope * think_time``."""

    intercept: float   # E_0: energy at zero think time (J)
    slope: float       # P_B: background power during think time (W)
    r_squared: float

    def predict(self, think_time):
        """Model energy at a think time."""
        return self.intercept + self.slope * think_time


def fit_linear(think_times, energies):
    """Least-squares fit of energy vs think time."""
    xs = [float(x) for x in think_times]
    ys = [float(y) for y in energies]
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ValueError("need at least two points for a linear fit")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("think times are all identical")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum(
        (y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys)
    )
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(intercept, slope, r_squared)
