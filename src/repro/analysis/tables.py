"""ASCII table rendering for benchmark output.

Benchmarks print the same rows/series the paper's figures report; this
keeps the formatting in one place.
"""

from __future__ import annotations

__all__ = ["render_table"]


def render_table(headers, rows, title=None):
    """Render a simple aligned table.

    ``rows`` is a sequence of sequences; cells are stringified with
    ``str``.  Numeric formatting is the caller's job.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match headers {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
