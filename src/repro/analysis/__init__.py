"""Analysis helpers: statistics, linear models, normalization, tables."""

from repro.analysis.ascii_plot import ascii_chart, ascii_staircase
from repro.analysis.export import energy_table_csv, timeline_csv, write_csv
from repro.analysis.linear import LinearFit, fit_linear
from repro.analysis.normalize import (
    Range,
    normalize_to_baseline,
    range_across_objects,
)
from repro.analysis.stats import TrialStats, summarize, t_quantile
from repro.analysis.tables import render_table

__all__ = [
    "TrialStats",
    "summarize",
    "t_quantile",
    "LinearFit",
    "fit_linear",
    "Range",
    "normalize_to_baseline",
    "range_across_objects",
    "render_table",
    "ascii_chart",
    "ascii_staircase",
    "energy_table_csv",
    "timeline_csv",
    "write_csv",
]
