"""Normalized summary tables (paper Figure 16 / Figure 18 format).

Figure 16 normalizes every measurement to the baseline (full fidelity,
no power management) of the same data object, then reports min–max
ranges across the four objects per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Range", "normalize_to_baseline", "range_across_objects"]


@dataclass(frozen=True)
class Range:
    """A min–max band across data objects (one Figure 16 cell)."""

    low: float
    high: float

    def __format__(self, spec):
        spec = spec or ".2f"
        return f"{self.low:{spec}}-{self.high:{spec}}"

    def contains(self, value):
        return self.low <= value <= self.high

    def overlaps(self, other):
        return self.low <= other.high and other.low <= self.high


def normalize_to_baseline(energies_by_config, baseline_config="baseline"):
    """Normalize per-object energies to the object's baseline.

    Parameters
    ----------
    energies_by_config:
        ``{config: {object_name: joules}}``.
    baseline_config:
        The configuration used as 1.00.

    Returns ``{config: {object_name: fraction}}``.
    """
    if baseline_config not in energies_by_config:
        raise KeyError(f"missing baseline config {baseline_config!r}")
    baselines = energies_by_config[baseline_config]
    normalized = {}
    for config, per_object in energies_by_config.items():
        row = {}
        for obj, joules in per_object.items():
            base = baselines.get(obj)
            if base is None or base <= 0:
                raise ValueError(f"no positive baseline for object {obj!r}")
            row[obj] = joules / base
        normalized[config] = row
    return normalized


def range_across_objects(normalized_row):
    """Collapse per-object fractions into a Figure 16 min–max cell."""
    values = list(normalized_row.values())
    if not values:
        raise ValueError("empty normalized row")
    return Range(min(values), max(values))
