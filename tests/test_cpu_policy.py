"""Tests for the CPU idle-policy states (halt vs poll) added for the
hardware power-management dimension the paper cites (CPU slowing /
idle halt; Weiser et al., Lorch & Smith)."""

import pytest

from repro.hardware import Cpu, PowerManager, build_machine
from repro.hardware import thinkpad560x as tp
from repro.sim import Simulator


class TestCpuStates:
    def test_halt_draws_nothing_extra(self):
        cpu = Cpu(9.0, poll_extra_watts=0.8)
        assert cpu.state == Cpu.HALT
        assert cpu.power == 0.0

    def test_poll_draws_small_extra(self):
        cpu = Cpu(9.0, poll_extra_watts=0.8)
        cpu.set_resting_state(Cpu.POLL)
        assert cpu.power == pytest.approx(0.8)

    def test_busy_draws_full_extra(self):
        cpu = Cpu(9.0, poll_extra_watts=0.8)
        cpu.busy()
        assert cpu.power == pytest.approx(9.0)

    def test_idle_returns_to_resting_state(self):
        cpu = Cpu(9.0, poll_extra_watts=0.8)
        cpu.set_resting_state(Cpu.POLL)
        cpu.busy()
        cpu.idle()
        assert cpu.state == Cpu.POLL

    def test_generic_idle_alias_resolves_to_policy(self):
        cpu = Cpu(9.0, poll_extra_watts=0.8)
        cpu.set_resting_state(Cpu.POLL)
        cpu.busy()
        cpu.set_state("idle")
        assert cpu.state == Cpu.POLL

    def test_resting_state_change_applies_when_idle(self):
        cpu = Cpu(9.0, poll_extra_watts=0.8)
        cpu.set_resting_state(Cpu.POLL)
        assert cpu.state == Cpu.POLL
        cpu.set_resting_state(Cpu.HALT)
        assert cpu.state == Cpu.HALT

    def test_resting_state_change_deferred_while_busy(self):
        cpu = Cpu(9.0, poll_extra_watts=0.8)
        cpu.busy()
        cpu.set_resting_state(Cpu.POLL)
        assert cpu.state == Cpu.BUSY
        cpu.idle()
        assert cpu.state == Cpu.POLL

    def test_invalid_resting_state_rejected(self):
        with pytest.raises(ValueError):
            Cpu(9.0).set_resting_state(Cpu.BUSY)


class TestPowerManagerCpuPolicy:
    def test_baseline_polls(self):
        sim = Simulator()
        machine = build_machine(sim)
        PowerManager(machine, enabled=False).apply_initial_states()
        assert machine["cpu"].state == Cpu.POLL
        assert machine["cpu"].power == pytest.approx(tp.CPU_POLL_EXTRA_W)

    def test_pm_halts(self):
        sim = Simulator()
        machine = build_machine(sim)
        PowerManager(machine, enabled=True).apply_initial_states()
        assert machine["cpu"].state == Cpu.HALT

    def test_compute_restores_policy_state(self):
        sim = Simulator()
        machine = build_machine(sim)
        PowerManager(machine, enabled=False).apply_initial_states()

        def burst():
            yield from machine.compute(1.0, "app")

        sim.spawn(burst())
        sim.run()
        assert machine["cpu"].state == Cpu.POLL
