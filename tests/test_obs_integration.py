"""Integration tests: tracing instrumented through sim, core, PowerScope,
and the fleet, with the event↔energy join resolving end to end."""

import pytest

from repro.fleet import CampaignSpec, FleetRunner, Task
from repro.hardware import PowerComponent
from repro.hardware.machine import Machine
from repro.obs import MetricsRegistry, Tracer, current_tracer, installed
from repro.obs.export import join_power, power_spans, validate_chrome_trace, chrome_trace
from repro.obs.tracer import NULL_TRACER
from repro.powerscope import Multimeter, SystemMonitor
from repro.sim import Simulator


class Supply:
    def __init__(self):
        self.drained = 0.0

    def drain(self, joules):
        self.drained += joules


def _machine(sim, metrics=None):
    machine = Machine(sim, supply=Supply(), voltage=16.0, metrics=metrics)
    machine.attach(PowerComponent("cpu", {"idle": 1.0, "busy": 4.0}, "idle"))
    return machine


class TestSimTracing:
    def test_dispatch_cancel_tombstone_events(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        entry = sim.schedule(1.0, lambda _t: None)
        sim.schedule(2.0, lambda _t: None)
        sim.cancel(entry)
        sim.run()
        names = [e.name for e in tracer.events if e.cat == "sim"]
        assert "cancel" in names
        assert "tombstone" in names
        assert "dispatch" in names

    def test_uninstalled_tracer_records_nothing(self):
        assert current_tracer() is NULL_TRACER
        sim = Simulator()
        assert sim.tracer is NULL_TRACER
        assert sim._trace is None
        sim.schedule(1.0, lambda _t: None)
        sim.run()  # no tracer anywhere to receive events

    def test_installed_tracer_reaches_inner_simulators(self):
        tracer = Tracer()
        with installed(tracer):
            sim = Simulator()
            assert sim.tracer is tracer
        assert Simulator().tracer is NULL_TRACER


class TestMachineTracing:
    def test_journal_spans_carry_sid_watts_joules(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        machine = _machine(sim, metrics=MetricsRegistry())
        cpu = machine["cpu"]
        sim.now = 1.0
        cpu.set_state("busy")
        sim.now = 3.0
        machine.advance()
        tracer.flush()
        spans = power_spans(tracer.events)
        assert spans, "no power spans emitted"
        sids = sorted(spans)
        assert sids == list(range(sids[0], sids[0] + len(sids)))
        total = sum(s["joules"] for s in spans.values())
        assert total == pytest.approx(machine.energy_total)

    def test_flush_hook_emits_open_segment_exactly_once(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        machine = _machine(sim, metrics=MetricsRegistry())
        sim.now = 2.0
        machine.advance()
        tracer.flush()
        tracer.flush()
        spans = [e for e in tracer.events
                 if e.cat == "power" and e.name == "span"]
        assert len(spans) == 1

    def test_power_span_id_joins_forward_and_backward(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        machine = _machine(sim, metrics=MetricsRegistry())
        # Before any time passes the journal is empty: forward reference.
        first = machine.power_span_id()
        sim.now = 1.0
        machine.advance()
        assert machine.journal[-1].sid == first
        assert machine.power_span_id() == first

    def test_metrics_count_segments(self):
        registry = MetricsRegistry()
        sim = Simulator()
        machine = _machine(sim, metrics=registry)
        sim.now = 1.0
        machine["cpu"].set_state("busy")
        sim.now = 2.0
        machine.finish()
        snap = registry.snapshot()
        assert snap["counters"]["machine.segments"] >= 2
        assert snap["gauges"]["machine.energy_j"] == pytest.approx(
            machine.energy_total
        )


class TestGoalRunTracing:
    @pytest.fixture(scope="class")
    def traced_run(self):
        from repro.experiments import run_goal_experiment

        tracer = Tracer()
        with installed(tracer):
            result = run_goal_experiment(120.0, initial_energy=4000.0)
            tracer.flush()
        return tracer, result

    def test_core_events_join_to_power_spans(self, traced_run):
        tracer, _result = traced_run
        joined = join_power(tracer.events)
        core = [j for j in joined if j["event"]["cat"] == "core"]
        assert core, "no core events carry power_span"
        unresolved = [j for j in core if j["span"] is None]
        assert not unresolved
        # Every fidelity transition and upcall references a span.
        names = {j["event"]["name"] for j in core}
        assert "fidelity" in names

    def test_every_category_instrumented(self, traced_run):
        tracer, _result = traced_run
        cats = {e.cat for e in tracer.events}
        assert {"sim", "power", "core", "powerscope"} <= cats

    def test_decision_stream_and_supply_demand_counters(self, traced_run):
        tracer, _result = traced_run
        decisions = [e for e in tracer.events
                     if e.cat == "core" and e.name.startswith("decision.")]
        assert decisions
        assert {e.name for e in decisions} <= {
            "decision.hold", "decision.degrade", "decision.upgrade",
        }
        counters = {e.name for e in tracer.events if e.ph == "C"}
        assert {"supply_j", "demand_j", "watts"} <= counters

    def test_chrome_trace_valid_with_per_component_tracks(self, traced_run):
        tracer, _result = traced_run
        trace = chrome_trace(tracer.events)
        assert not validate_chrome_trace(trace)
        thread_names = {e["args"]["name"]
                        for e in trace["traceEvents"]
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"engine", "machine", "goal"} <= thread_names

    def test_category_restriction_excludes_other_subsystems(self):
        from repro.experiments import run_goal_experiment

        tracer = Tracer(categories={"core"})
        with installed(tracer):
            run_goal_experiment(60.0, initial_energy=4000.0)
            tracer.flush()
        assert {e.cat for e in tracer.events} == {"core"}


class TestMultimeterTracing:
    def test_meter_lifecycle_and_profile_fold_events(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        machine = _machine(sim, metrics=MetricsRegistry())
        monitor = SystemMonitor(machine, seed=0)
        meter = Multimeter(machine, rate_hz=100.0, monitor=monitor)
        meter.start()
        sim.now = 0.5
        machine.advance()
        meter.stop()
        profile = meter.profile()
        names = [e.name for e in tracer.events if e.cat == "powerscope"]
        assert names.count("meter.start") == 1
        assert names.count("meter.stop") == 1
        fold = next(e for e in tracer.events if e.name == "profile.fold")
        assert fold.args["samples"] == profile.sample_count
        assert fold.args["energy_j"] == pytest.approx(profile.total_energy)


class TestFleetTracing:
    def _spec(self):
        tasks = [
            Task(id=f"t{k}", fn="repro.fleet.library:seeded_value",
                 params={"seed": k})
            for k in range(3)
        ]
        return CampaignSpec(name="traced", tasks=tasks)

    def test_serial_run_emits_campaign_and_task_spans(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        runner = FleetRunner(jobs=1, tracer=tracer, metrics=registry)
        result = runner.run(self._spec())
        assert result.ok
        spans = [e for e in tracer.events if e.ph == "X"]
        assert sum(1 for e in spans if e.name == "task") == 3
        campaign = next(e for e in spans if e.name == "campaign")
        assert campaign.args["name"] == "traced"
        assert campaign.args["succeeded"] == 3
        assert registry.snapshot()["counters"]["fleet.tasks_ok"] == 3

    def test_cached_rerun_emits_cached_instants(self, tmp_path):
        tracer = Tracer()
        runner = FleetRunner(jobs=1, cache=str(tmp_path), tracer=tracer,
                             metrics=MetricsRegistry())
        runner.run(self._spec())
        before = len([e for e in tracer.events if e.name == "task.cached"])
        runner.run(self._spec())
        after = len([e for e in tracer.events if e.name == "task.cached"])
        assert before == 0 and after == 3

    def test_untraced_runner_records_nothing(self):
        runner = FleetRunner(jobs=1, metrics=MetricsRegistry())
        assert runner.tracer is NULL_TRACER
        assert runner._trace is None
        assert runner.run(self._spec()).ok
