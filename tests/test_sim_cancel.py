"""Event cancellation: lazy tombstones in the simulator heap."""

from repro.sim import Simulator


class TestCancel:
    def test_cancelled_entry_never_fires(self):
        sim = Simulator()
        fired = []
        entry = sim.schedule(1.0, lambda t: fired.append(t))
        sim.schedule(2.0, lambda t: fired.append(t))
        sim.cancel(entry)
        sim.run()
        assert fired == [2.0]

    def test_cancel_does_not_advance_clock(self):
        sim = Simulator()
        entry = sim.schedule(5.0, lambda t: None)
        sim.cancel(entry)
        sim.run()
        # The cancelled event is discarded without moving time to t=5.
        assert sim.now == 0.0

    def test_step_skips_cancelled_and_returns_false_when_drained(self):
        sim = Simulator()
        fired = []
        first = sim.schedule(1.0, lambda t: fired.append("first"))
        sim.schedule(2.0, lambda t: fired.append("second"))
        sim.cancel(first)
        assert sim.step() is True       # fires "second", skipping "first"
        assert fired == ["second"]
        assert sim.now == 2.0
        assert sim.step() is False

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        entry = sim.schedule(1.0, lambda t: fired.append(t))
        sim.run()
        sim.cancel(entry)  # too late: already fired
        later = sim.schedule(1.0, lambda t: fired.append(t))
        sim.run()
        assert fired == [1.0, 2.0]

    def test_double_cancel_is_noop(self):
        sim = Simulator()
        entry = sim.schedule(1.0, lambda t: None)
        sim.cancel(entry)
        sim.cancel(entry)
        sim.schedule(3.0, lambda t: None)
        sim.run()
        assert sim.now == 3.0

    def test_peek_skips_cancelled_heads(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda t: None)
        second = sim.schedule(2.0, lambda t: None)
        sim.schedule(3.0, lambda t: None)
        sim.cancel(first)
        sim.cancel(second)
        assert sim.peek() == 3.0

    def test_peek_returns_none_when_only_cancelled_remain(self):
        sim = Simulator()
        entry = sim.schedule(1.0, lambda t: None)
        sim.cancel(entry)
        assert sim.peek() is None

    def test_run_until_with_cancelled_events_reaches_horizon(self):
        sim = Simulator()
        fired = []
        entry = sim.schedule(1.0, lambda t: fired.append(t))
        sim.cancel(entry)
        sim.run(until=4.0)
        assert fired == []
        assert sim.now == 4.0

    def test_periodic_chain_stops_cleanly_when_cancelled(self):
        """The sampler pattern: a self-rescheduling tick, cancelled once."""
        sim = Simulator()
        ticks = []
        entry_box = []

        def tick(t):
            ticks.append(t)
            entry_box.append(sim.schedule(1.0, tick))

        entry_box.append(sim.schedule(1.0, tick))
        sim.run(until=3.5)
        sim.cancel(entry_box[-1])
        sim.run()  # terminates: no live events remain
        assert ticks == [1.0, 2.0, 3.0]
