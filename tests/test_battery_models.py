"""Tests for the non-ideal battery models."""

import pytest

from repro.hardware import (
    Machine,
    PeukertBattery,
    PowerComponent,
    RecoveryBattery,
    SupplyError,
    VoltageCurve,
)
from repro.sim import Simulator


class TestPeukertBattery:
    def test_ideal_exponent_behaves_like_ideal_battery(self):
        battery = PeukertBattery(100.0, rated_power_w=10.0, exponent=1.0)
        battery.note_power(30.0)
        battery.drain(10.0)
        assert battery.residual == pytest.approx(90.0)

    def test_heavy_draw_wastes_capacity(self):
        battery = PeukertBattery(100.0, rated_power_w=10.0, exponent=1.2)
        battery.note_power(40.0)  # 4x rated
        battery.drain(10.0)
        # Effective drain = 10 * 4^0.2 > 10.
        assert battery.residual < 90.0

    def test_light_draw_approaches_ideal_from_below(self):
        battery = PeukertBattery(100.0, rated_power_w=10.0, exponent=1.2)
        battery.note_power(5.0)  # half rated
        battery.drain(10.0)
        assert battery.residual > 90.0  # less than nominal drain

    def test_validation(self):
        with pytest.raises(SupplyError):
            PeukertBattery(0.0, 10.0)
        with pytest.raises(SupplyError):
            PeukertBattery(10.0, 0.0)
        with pytest.raises(SupplyError):
            PeukertBattery(10.0, 10.0, exponent=0.9)
        battery = PeukertBattery(10.0, 10.0)
        with pytest.raises(SupplyError):
            battery.note_power(-1.0)
        with pytest.raises(SupplyError):
            battery.drain(-1.0)

    def test_machine_feeds_power_to_battery(self):
        """Machine.advance must notify the supply of the draw level."""
        sim = Simulator()
        battery = PeukertBattery(1000.0, rated_power_w=5.0, exponent=1.3)
        machine = Machine(sim, battery)
        machine.attach(PowerComponent("load", {"on": 20.0}, "on"))  # 4x rated
        sim.run(until=10.0)
        machine.advance()
        # 200 J nominal, inflated by Peukert: 200 * 4^0.3 ≈ 303 J.
        assert battery.drawn == pytest.approx(200.0 * 4 ** 0.3, rel=0.01)

    def test_exhaustion_flag(self):
        battery = PeukertBattery(10.0, rated_power_w=10.0)
        battery.drain(20.0)
        assert battery.exhausted
        assert battery.fraction_remaining == 0.0


class TestRecoveryBattery:
    def test_recovery_during_light_load(self):
        battery = RecoveryBattery(
            100.0, recovery_fraction=0.1, idle_threshold_w=6.0,
            recovery_rate_w=1.0,
        )
        battery.note_power(20.0)
        battery.drain(50.0)           # budget = 5 J
        battery.note_power(3.0)       # below threshold
        recovered = battery.recover(dt=10.0)
        assert recovered == pytest.approx(5.0)  # capped by budget
        assert battery.residual == pytest.approx(55.0)

    def test_no_recovery_under_heavy_load(self):
        battery = RecoveryBattery(100.0, recovery_fraction=0.1)
        battery.drain(50.0)
        battery.note_power(20.0)  # above threshold
        assert battery.recover(dt=100.0) == 0.0

    def test_recovery_rate_limits_restoration(self):
        battery = RecoveryBattery(
            100.0, recovery_fraction=0.5, recovery_rate_w=0.5
        )
        battery.drain(50.0)
        battery.note_power(0.0)
        assert battery.recover(dt=2.0) == pytest.approx(1.0)  # 0.5 W * 2 s

    def test_total_recovery_bounded_by_fraction(self):
        battery = RecoveryBattery(
            100.0, recovery_fraction=0.1, recovery_rate_w=100.0
        )
        battery.drain(30.0)
        battery.note_power(0.0)
        battery.recover(dt=100.0)
        battery.recover(dt=100.0)
        assert battery.recovered <= 3.0 + 1e-9

    def test_validation(self):
        with pytest.raises(SupplyError):
            RecoveryBattery(0.0)
        with pytest.raises(SupplyError):
            RecoveryBattery(10.0, recovery_fraction=1.5)
        battery = RecoveryBattery(10.0)
        with pytest.raises(SupplyError):
            battery.recover(-1.0)

    def test_machine_drives_recovery(self):
        sim = Simulator()
        battery = RecoveryBattery(
            1000.0, recovery_fraction=0.2, idle_threshold_w=6.0,
            recovery_rate_w=0.5,
        )
        machine = Machine(sim, battery)
        load = machine.attach(
            PowerComponent("load", {"heavy": 20.0, "light": 2.0}, "heavy")
        )
        sim.run(until=10.0)           # 200 J drained at 20 W
        load.set_state("light")
        sim.run(until=30.0)           # light: recovery applies
        machine.advance()
        assert battery.recovered > 0.0


class TestVoltageCurve:
    def test_monotone_nonincreasing_discharge(self):
        curve = VoltageCurve()
        socs = [i / 100 for i in range(101)]
        volts = [curve.voltage(s) for s in socs]
        for lower, higher in zip(volts, volts[1:]):
            assert higher >= lower - 1e-9

    def test_endpoints(self):
        curve = VoltageCurve(v_full=12.6, v_nominal=11.1, v_empty=9.0)
        assert curve.voltage(1.0) == pytest.approx(12.6)
        assert curve.voltage(0.0) == pytest.approx(9.0)

    def test_plateau_is_flat_ish(self):
        curve = VoltageCurve()
        mid_range = curve.voltage(0.8) - curve.voltage(0.3)
        top_drop = curve.voltage(1.0) - curve.voltage(0.9)
        assert mid_range < top_drop * 2

    def test_inverse_lookup_round_trips(self):
        curve = VoltageCurve()
        for soc in (0.05, 0.2, 0.5, 0.8, 0.95):
            volts = curve.voltage(soc)
            assert curve.soc_from_voltage(volts) == pytest.approx(soc, abs=0.02)

    def test_inverse_lookup_clamps(self):
        curve = VoltageCurve()
        assert curve.soc_from_voltage(99.0) == 1.0
        assert curve.soc_from_voltage(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(SupplyError):
            VoltageCurve(v_full=9.0, v_nominal=11.0, v_empty=12.0)
        with pytest.raises(SupplyError):
            VoltageCurve().voltage(1.5)


class TestGoalAdaptationOnNonIdealBattery:
    def test_goal_met_despite_peukert_losses(self):
        """Adaptation absorbs the Peukert penalty: the controller sees
        the higher effective drain through its power samples and
        degrades deeper, still meeting the goal."""
        from repro.experiments import (
            derive_goals,
            fidelity_runtime_bounds,
            run_goal_experiment,
        )
        from repro.hardware import PeukertBattery

        energy = 5_000.0
        t_hi, t_lo = fidelity_runtime_bounds(energy)
        goal = derive_goals(t_hi, t_lo, count=3)[0]
        result = run_goal_experiment(
            goal,
            initial_energy=energy,
            supply=PeukertBattery(energy, rated_power_w=14.0, exponent=1.03),
        )
        assert result.goal_met
