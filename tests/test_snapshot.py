"""Unit tests for the snapshot subsystem: protocol, store, lookahead."""

import json
import os

import pytest

from repro.hardware.battery import Battery, SupplyError
from repro.sim import Simulator
from repro.snapshot import Snapshot, SnapshotError, SnapshotStore, snapshot_key
from repro.snapshot.scenario import (
    DEFAULT_GOAL_SECONDS,
    PulsedApp,
    build_pulse_scenario,
)


# ----------------------------------------------------------------------
# capture preconditions
# ----------------------------------------------------------------------
def test_capture_requires_builder():
    sim = Simulator()
    with pytest.raises(SnapshotError, match="snapshot_builder"):
        Snapshot.capture(sim)


def test_capture_rejects_unclaimed_events():
    """A live event no snapshottable claims must fail the capture —
    silently dropping it would fork a stack missing a future."""
    scenario = build_pulse_scenario().start()
    scenario.run(until=10.0)

    def rogue(_time):
        pass

    scenario.sim.schedule(5.0, rogue)
    with pytest.raises(SnapshotError, match="rogue"):
        Snapshot.capture(scenario.sim)


def test_capture_skips_fired_entries():
    """A stale handle to an already-fired event must not smuggle the
    dead event into the branch (it would fire twice there)."""
    scenario = build_pulse_scenario().start()
    scenario.run(until=60.0)
    snapshot = Snapshot.capture(scenario.sim)
    seqs = [seq for _when, seq, _key, _kind in snapshot.payload["events"]]
    live = {seq for _when, seq, _cb in scenario.sim.live_entries()}
    assert set(seqs) <= live
    assert len(seqs) == len(set(seqs))


def test_restore_rejects_version_skew():
    scenario = build_pulse_scenario().start()
    scenario.run(until=5.0)
    snapshot = Snapshot.capture(scenario.sim)
    snapshot.payload["version"] = 999
    with pytest.raises(SnapshotError, match="version"):
        snapshot.restore()


# ----------------------------------------------------------------------
# on-disk store
# ----------------------------------------------------------------------
def _snap(at=30.0):
    scenario = build_pulse_scenario().start()
    scenario.run(until=at)
    return Snapshot.capture(scenario.sim)


def test_snapshot_key_identity():
    key = snapshot_key("mod.build", {"a": 1}, 10.0)
    assert key == snapshot_key("mod.build", {"a": 1}, 10.0)
    assert key != snapshot_key("mod.build", {"a": 2}, 10.0)
    assert key != snapshot_key("mod.build", {"a": 1}, 20.0)
    assert key != snapshot_key("mod.other", {"a": 1}, 10.0)


def test_store_roundtrip(tmp_path):
    store = SnapshotStore(tmp_path)
    snapshot = _snap()
    key = snapshot_key(snapshot.builder, snapshot.params, snapshot.time)
    store.put(key, snapshot)
    assert key in store
    assert store.keys() == [key]
    loaded = store.require(key)
    from repro.fleet.spec import canonical_json

    assert canonical_json(loaded.payload) == canonical_json(snapshot.payload)


def test_store_miss_returns_none(tmp_path):
    store = SnapshotStore(tmp_path)
    assert store.get("deadbeef") is None
    with pytest.raises(SnapshotError, match="deadbeef"):
        store.require("deadbeef")


def test_store_corrupt_record_is_a_miss(tmp_path):
    store = SnapshotStore(tmp_path)
    key = "a" * 64
    with open(store.path(key), "w", encoding="utf-8") as fh:
        fh.write("{not json")
    assert store.get(key) is None
    assert not os.path.exists(store.path(key)), "corrupt record kept"


def test_store_digest_mismatch_is_a_miss(tmp_path):
    store = SnapshotStore(tmp_path)
    snapshot = _snap()
    key = "b" * 64
    store.put(key, snapshot)
    with open(store.path(key), encoding="utf-8") as fh:
        record = json.load(fh)
    record["payload"]["sim"]["now"] = 999.0  # tamper without re-digesting
    with open(store.path(key), "w", encoding="utf-8") as fh:
        json.dump(record, fh)
    assert store.get(key) is None


def test_store_version_skew_is_a_miss(tmp_path):
    store = SnapshotStore(tmp_path)
    key = "c" * 64
    store.put(key, _snap())
    with open(store.path(key), encoding="utf-8") as fh:
        record = json.load(fh)
    record["store_version"] = 0
    with open(store.path(key), "w", encoding="utf-8") as fh:
        json.dump(record, fh)
    assert store.get(key) is None
    assert len(store) == 0


# ----------------------------------------------------------------------
# battery + scenario pieces
# ----------------------------------------------------------------------
def test_battery_charge_grows_capacity():
    battery = Battery(100.0)
    battery.drain(90.0)
    battery.charge(50.0)
    assert battery.capacity == 150.0
    assert battery.residual == 60.0
    with pytest.raises(SupplyError):
        battery.charge(-1.0)


def test_scenario_extend_moves_goal_and_battery():
    scenario = build_pulse_scenario().start()
    scenario.run(until=10.0)
    goal_before = scenario.controller.goal_time
    capacity_before = scenario.battery.capacity
    scenario.extend(30.0, 200.0)
    assert scenario.controller.goal_time == goal_before + 30.0
    assert scenario.battery.capacity == capacity_before + 200.0


def test_pulsed_app_rejects_bad_duty():
    sim = Simulator()
    with pytest.raises(ValueError, match="duty"):
        PulsedApp(sim, None, "x", None, [("on", 1.0)], 1,
                  period=4.0, duty=1.5)


def test_builder_records_identity_params():
    scenario = build_pulse_scenario(goal_seconds=100.0)
    builder, params = scenario.sim.snapshot_builder
    assert builder.endswith("build_pulse_scenario")
    assert params["goal_seconds"] == 100.0
    # runtime environment is not identity
    assert "tracer" not in params and "metrics" not in params


# ----------------------------------------------------------------------
# lookahead
# ----------------------------------------------------------------------
def test_whatif_evaluator_rejects_bad_horizon():
    from repro.snapshot.lookahead import WhatIfEvaluator

    with pytest.raises(ValueError, match="horizon"):
        WhatIfEvaluator(Simulator(), horizon=0.0)


def test_lookahead_runs_and_counts_branches():
    scenario = build_pulse_scenario(lookahead=True).start().run()
    summary = scenario.summary()
    look = summary["lookahead"]
    assert look["evaluations"] > 0
    assert look["branches_run"] == 2 * look["evaluations"]
    assert 0 <= look["overrides"] <= look["evaluations"]
    assert look["horizon_s"] == 12.0


def test_lookahead_branches_are_invisible_to_parent_spine():
    from repro.obs import Tracer
    from repro.obs.diff import decision_spine

    tracer = Tracer()
    scenario = build_pulse_scenario(lookahead=True, tracer=tracer)
    scenario.start().run(until=60.0)
    tracer.flush()
    events = list(tracer.events)
    branch = [e for e in events if e.cat == "branch"]
    assert branch, "no branch verdicts traced"
    assert all(e.track == "branch" for e in branch)
    # the spine reads only core decisions; branch events never join it
    spine = decision_spine(events)
    assert len(spine) == len(decision_spine(
        [e for e in events if e.cat == "core"]))


def test_branch_spans_carry_branch_id_and_fold_separately():
    """A fork run under a *real* tracer stamps its power spans with its
    branch id, and ``power_spans`` folds trunk and branch separately —
    the belt-and-braces guarantee behind the lookahead signature."""
    from repro.obs import Tracer
    from repro.obs.export import power_spans

    tracer = Tracer(categories={"core", "power"})
    parent = build_pulse_scenario(tracer=tracer).start()
    parent.run(until=20.0)
    snapshot = Snapshot.capture(parent.sim)
    fork = snapshot.fork(tracer=tracer)
    fork.machine.branch_id = "did9.degrade"
    fork.run(until=30.0)
    parent.run(until=30.0)
    tracer.flush()
    events = [e.to_dict() for e in tracer.events]
    stamped = [e for e in events
               if e.get("name") == "span"
               and e.get("args", {}).get("branch") == "did9.degrade"]
    assert stamped, "forked machine emitted no branch-stamped spans"
    trunk = power_spans(events)
    branch = power_spans(events, branch="did9.degrade")
    assert len(branch) == len(stamped), "branch fold missed spans"
    # The trunk fold is exactly the fold of the unstamped spans: a
    # branch span can never leak into trunk energy.
    unstamped = [e for e in events if e not in stamped]
    assert trunk == power_spans(unstamped)
    assert all("branch" not in (e.get("args") or {})
               for e in unstamped if e.get("name") == "span"
               and e.get("cat") == "power")


def test_trunk_spans_unchanged_by_traced_branch():
    """Folding the trunk from a trace polluted by a traced branch gives
    the same spans as a run that never forked at all."""
    from repro.obs import Tracer
    from repro.obs.export import power_spans

    def run(with_fork):
        tracer = Tracer(categories={"core", "power"})
        parent = build_pulse_scenario(tracer=tracer).start()
        parent.run(until=20.0)
        if with_fork:
            snapshot = Snapshot.capture(parent.sim)
            fork = snapshot.fork(tracer=tracer)
            fork.machine.branch_id = "b"
            fork.run(until=26.0)
        parent.run(until=30.0)
        tracer.flush()
        return power_spans([e.to_dict() for e in tracer.events])

    assert run(with_fork=True) == run(with_fork=False)


def test_lookahead_changes_the_decision_spine():
    """The whole point: vetoing transient-driven adaptations must
    actually alter behaviour vs the plain hysteresis policy."""
    base = build_pulse_scenario().start().run().summary()
    look = build_pulse_scenario(lookahead=True).start().run().summary()
    assert base["goal_met"] and look["goal_met"]
    assert look["adaptations"] != base["adaptations"]


def test_lookahead_survives_snapshot_roundtrip():
    from repro.fleet.spec import canonical_json

    parent = build_pulse_scenario(lookahead=True).start()
    parent.run(until=DEFAULT_GOAL_SECONDS / 2)
    snapshot = Snapshot.capture(parent.sim)
    fork = snapshot.fork().run()
    parent.run()
    assert canonical_json(fork.summary()) == canonical_json(parent.summary())
