"""Copy-on-write snapshot isolation properties.

The machine journal and the viceroy upcall log travel on the snapshot
shared-structure channel: a capture holds the sealed prefix by
reference instead of copying it, and a restored branch adopts those
references.  These tests pin the contract that makes that safe —
mutating a fork never bleeds into the parent, mutating the parent
never bleeds into an already-taken snapshot, and the materialized
payload stays byte-identical to a non-sharing capture.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.spec import canonical_json
from repro.hardware.machine import _segment_row
from repro.snapshot import Snapshot
from repro.snapshot.scenario import DEFAULT_GOAL_SECONDS, build_pulse_scenario


def _journal_rows(machine):
    """The full journal in wire format — equality means byte-equality."""
    return [_segment_row(s) for s in machine._journal]


def _upcall_rows(viceroy):
    return [[u.time, u.kind, u.application, u.new_level] for u in viceroy.upcalls]


# ----------------------------------------------------------------------
# fork mutation must never reach the parent
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(
    capture_t=st.floats(min_value=15.0, max_value=150.0),
    branch_run=st.floats(min_value=5.0, max_value=60.0),
)
def test_fork_mutation_never_touches_parent(capture_t, branch_run):
    parent = build_pulse_scenario().start()
    parent.run(until=capture_t)
    snapshot = Snapshot.capture(parent.sim)

    before_journal = _journal_rows(parent.machine)
    before_upcalls = _upcall_rows(parent.viceroy)
    before_energy = parent.machine.energy_total
    before_folds = (parent.machine._fold_index,
                    parent.machine._folded_journal_energy)

    branch = snapshot.fork()
    branch.run(until=capture_t + branch_run)
    # the branch really did diverge: it integrated energy of its own
    assert branch.machine.energy_total > before_energy

    assert _journal_rows(parent.machine) == before_journal
    assert _upcall_rows(parent.viceroy) == before_upcalls
    assert parent.machine.energy_total == before_energy
    assert (parent.machine._fold_index,
            parent.machine._folded_journal_energy) == before_folds


def test_fork_mutation_never_changes_parent_outcome():
    """Beyond raw state: the parent's completed run is bit-identical to
    a twin that never forked at all."""
    control = build_pulse_scenario().start().run()
    parent = build_pulse_scenario().start()
    parent.run(until=DEFAULT_GOAL_SECONDS / 3)
    snapshot = Snapshot.capture(parent.sim)
    snapshot.fork().run()
    parent.run()
    assert canonical_json(parent.summary()) == canonical_json(control.summary())


# ----------------------------------------------------------------------
# parent mutation must never reach a taken snapshot
# ----------------------------------------------------------------------
def test_parent_mutation_never_touches_snapshot_payload():
    """The payload materializes lazily from structures the live parent
    keeps appending to; materializing *after* the parent ran to
    completion must still yield the rows from capture time."""
    parent = build_pulse_scenario().start()
    parent.run(until=60.0)
    snapshot = Snapshot.capture(parent.sim)
    parent.run()  # seals more blocks, grows the shared flat list

    control = build_pulse_scenario().start()
    control.run(until=60.0)
    reference = Snapshot.capture(control.sim).payload

    assert canonical_json(snapshot.payload) == canonical_json(reference)


def test_parent_mutation_never_touches_restored_branch():
    parent = build_pulse_scenario().start()
    parent.run(until=60.0)
    snapshot = Snapshot.capture(parent.sim)
    branch = snapshot.fork()
    branch_rows = _journal_rows(branch.machine)
    branch_upcalls = _upcall_rows(branch.viceroy)

    parent.run()  # parent seals past the branch's adopted prefix

    assert _journal_rows(branch.machine) == branch_rows
    assert _upcall_rows(branch.viceroy) == branch_upcalls
    branch.run()
    assert branch.summary()["goal_met"] in (True, False)  # branch still runs


# ----------------------------------------------------------------------
# deep fork chains
# ----------------------------------------------------------------------
def test_three_deep_fork_chain_isolation():
    """Fork a fork of a fork; every ancestor's journal stays frozen
    while descendants run, and the deepest branch's outcome matches an
    uninterrupted straight-line run."""
    control = build_pulse_scenario().start().run()

    g0 = build_pulse_scenario().start()
    g0.run(until=40.0)
    s0 = Snapshot.capture(g0.sim)
    g0_rows = _journal_rows(g0.machine)

    g1 = s0.fork()
    g1.run(until=80.0)
    s1 = Snapshot.capture(g1.sim)
    g1_rows = _journal_rows(g1.machine)

    g2 = s1.fork()
    g2.run(until=120.0)
    s2 = Snapshot.capture(g2.sim)
    g2_rows = _journal_rows(g2.machine)

    g3 = s2.fork()
    g3.run()

    assert _journal_rows(g0.machine) == g0_rows
    assert _journal_rows(g1.machine) == g1_rows
    assert _journal_rows(g2.machine) == g2_rows
    assert canonical_json(g3.summary()) == canonical_json(control.summary())


def test_sealed_blocks_shared_by_reference_across_captures():
    """The COW point itself: a later capture reuses the earlier
    capture's sealed blocks by identity instead of re-serializing."""
    scenario = build_pulse_scenario().start()
    scenario.run(until=60.0)
    s1 = Snapshot.capture(scenario.sim)
    scenario.run(until=120.0)
    s2 = Snapshot.capture(scenario.sim)

    blocks1 = s1._shared["machine/journal"].blocks
    blocks2 = s2._shared["machine/journal"].blocks
    assert len(blocks2) > len(blocks1)
    for early, late in zip(blocks1, blocks2):
        assert early is late


def test_branch_seal_does_not_corrupt_parent():
    """A restored branch adopts the parent's flat sealed list without
    owning it; the branch's own first seal must copy, not append into
    the parent's list."""
    parent = build_pulse_scenario().start()
    parent.run(until=60.0)
    snapshot = Snapshot.capture(parent.sim)

    branch = snapshot.fork()
    branch.run(until=120.0)
    Snapshot.capture(branch.sim)  # forces the branch to seal

    control = build_pulse_scenario().start().run()
    parent.run()
    assert canonical_json(parent.summary()) == canonical_json(control.summary())


# ----------------------------------------------------------------------
# pooled restores
# ----------------------------------------------------------------------
def test_pooled_fork_matches_fresh_fork():
    """Restoring into a reused scenario object (the lookahead branch
    pool) is indistinguishable from building a fresh stack."""
    parent = build_pulse_scenario().start()
    parent.run(until=DEFAULT_GOAL_SECONDS / 2)
    snapshot = Snapshot.capture(parent.sim)

    fresh = snapshot.fork()
    fresh.run()
    pooled_target = snapshot.fork()
    reused = snapshot.fork(reuse=pooled_target)
    reused.run()
    assert canonical_json(reused.summary()) == canonical_json(fresh.summary())
