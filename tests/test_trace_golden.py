"""Golden-trace regression suite: controller drift is a test failure.

Each scenario's canonical decision spine lives under ``tests/goldens/``
(see ``tests/golden_scenarios.py`` for the pinned parameters).  The
tests re-run the scenario and diff the fresh spine against the golden
with :func:`repro.obs.diff.diff_spines`; *any* divergence window fails
with the rendered diff, so a changed threshold, cadence, or priority
order surfaces as "decision 83: A=hold vs B=degrade>video:premiere-b",
not as a silently shifted plot.  Intentional behaviour changes are
re-blessed with ``python scripts/regen_goldens.py``.
"""

import os

import pytest

from repro.obs.diff import diff_spines, read_spine_jsonl
from tests.golden_scenarios import SCENARIOS, golden_path, run_scenario

REBLESS_HINT = (
    "\n\nIf this behaviour change is intentional, re-bless the goldens "
    "with: PYTHONPATH=src python scripts/regen_goldens.py"
)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_matches_golden(name):
    path = golden_path(name)
    assert os.path.exists(path), (
        f"missing golden {path}; generate it with scripts/regen_goldens.py"
    )
    golden = read_spine_jsonl(path)
    spine = run_scenario(name)
    diff = diff_spines(golden, spine,
                       label_a=f"golden:{name}", label_b="this run")
    assert diff.identical, "\n" + diff.render() + REBLESS_HINT


def test_golden_has_real_adaptation():
    """The goldens must exercise the controller, not just record holds."""
    for name in SCENARIOS:
        spine = read_spine_jsonl(golden_path(name))
        actions = {entry.action for entry in spine}
        upcalls = sum(len(entry.upcalls) for entry in spine)
        assert "degrade" in actions, f"{name}: no degrade decisions"
        assert upcalls > 0, f"{name}: no upcalls delivered"


def test_perturbed_threshold_fails_golden(monkeypatch):
    """A 10% shift in the degrade threshold must produce divergence.

    This is the suite's own regression test: it proves the goldens are
    sensitive to exactly the kind of controller drift they exist to
    catch, rather than vacuously passing.
    """
    from repro.core.hysteresis import AdaptationTrigger

    original = AdaptationTrigger.decide

    def perturbed(self, predicted_demand, residual):
        return original(self, predicted_demand, residual * 0.9)

    monkeypatch.setattr(AdaptationTrigger, "decide", perturbed)
    golden = read_spine_jsonl(golden_path("goal-default"))
    spine = run_scenario("goal-default")
    diff = diff_spines(golden, spine)
    assert not diff.identical, (
        "perturbing the controller threshold did not change the "
        "decision spine — the goldens would not catch real drift"
    )
    assert diff.first_divergence is not None
    assert diff.divergent_decisions > 0


def test_campaign_matches_golden():
    """The fleet's outcome spine — ordering, statuses, retry counts —
    must match the committed campaign golden exactly."""
    import json

    from tests.golden_scenarios import CAMPAIGN_GOLDEN, run_campaign_scenario

    path = os.path.join(os.path.dirname(golden_path("x")),
                        f"{CAMPAIGN_GOLDEN}.json")
    assert os.path.exists(path), (
        f"missing golden {path}; generate it with "
        f"scripts/regen_goldens.py --campaign"
    )
    with open(path, encoding="utf-8") as handle:
        golden = json.load(handle)
    record = run_campaign_scenario()
    assert record == golden, (
        f"campaign outcome drifted from golden:\n"
        f"  golden: {golden}\n  actual: {record}" + REBLESS_HINT
    )


def test_campaign_golden_exercises_retries():
    """The campaign golden must cover all three outcome shapes."""
    import json

    from tests.golden_scenarios import CAMPAIGN_GOLDEN

    path = os.path.join(os.path.dirname(golden_path("x")),
                        f"{CAMPAIGN_GOLDEN}.json")
    with open(path, encoding="utf-8") as handle:
        golden = json.load(handle)
    statuses = {r["status"] for r in golden}
    assert "ok" in statuses and "failed" in statuses
    assert any(r["status"] == "ok" and r["attempts"] > 1 for r in golden), (
        "no task recovered via retry — the golden does not pin the "
        "retry path"
    )
