"""Tests for the figure-data export layer."""

import csv
import io
import os

import pytest

from repro.cli import main
from repro.experiments import FIGURES, export_figures
from repro.experiments.figures import figure_11, figure_15, figure_19


class TestFigureBundles:
    def test_registry_covers_the_data_figures(self):
        assert {"fig06", "fig08", "fig10", "fig11", "fig13", "fig14",
                "fig15", "fig18", "fig19"} <= set(FIGURES)

    def test_figure11_csv_is_well_formed(self):
        bundles = figure_11()
        text = bundles["fig11_map_thinktime"]
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == [
            "config", "think_s", "energy_j",
            "fit_intercept", "fit_slope", "fit_r2",
        ]
        # 3 configs x 4 think times.
        assert len(rows) == 1 + 12
        for row in rows[1:]:
            assert float(row[5]) > 0.99  # R^2 of the linear model

    def test_figure15_contains_three_configs(self):
        text = figure_15()["fig15_concurrency"]
        rows = list(csv.reader(io.StringIO(text)))
        configs = {row[0] for row in rows[1:]}
        assert configs == {"baseline", "hw-only", "lowest-fidelity"}
        for row in rows[1:]:
            assert float(row[2]) > float(row[1])  # concurrent > alone

    def test_figure19_traces_have_both_series(self):
        bundles = figure_19(initial_energy=3_000.0)
        assert set(bundles) == {"fig19_trace_short", "fig19_trace_long"}
        for text in bundles.values():
            assert "supply" in text and "demand" in text
            assert "video" in text  # fidelity records

    def test_export_writes_files(self, tmp_path):
        written = export_figures(str(tmp_path), figures=["fig06"])
        assert len(written) == 1
        assert os.path.exists(written[0])
        content = open(written[0]).read()
        assert content.startswith("config,")

    def test_export_rejects_unknown_figure(self, tmp_path):
        with pytest.raises(KeyError):
            export_figures(str(tmp_path), figures=["fig99"])

    def test_cli_export_figures(self, tmp_path, capsys):
        code = main([
            "export-figures", str(tmp_path), "--figures", "fig13",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig13_web.csv" in out
        assert (tmp_path / "fig13_web.csv").exists()
