"""Unit and integration tests for the composite machine model."""

import pytest

from repro.hardware import (
    Battery,
    Disk,
    Display,
    ExternalSupply,
    HardwareError,
    Machine,
    PowerComponent,
    PowerManager,
    SupplyError,
    WaveLan,
    build_machine,
)
from repro.hardware import thinkpad560x as tp
from repro.sim import Simulator, Timeline


def simple_machine(sim, supply=None):
    machine = Machine(sim, supply=supply or ExternalSupply())
    machine.attach(PowerComponent("base", {"on": 2.0}, "on"))
    return machine


class TestMachinePower:
    def test_power_sums_components(self):
        sim = Simulator()
        machine = simple_machine(sim)
        machine.attach(PowerComponent("lamp", {"on": 3.0, "off": 0.0}, "on"))
        assert machine.power == pytest.approx(5.0)

    def test_correction_term_added(self):
        sim = Simulator()
        machine = Machine(sim, ExternalSupply(), correction=lambda m: 0.5)
        machine.attach(PowerComponent("base", {"on": 2.0}, "on"))
        assert machine.power == pytest.approx(2.5)

    def test_current_is_power_over_voltage(self):
        sim = Simulator()
        machine = Machine(sim, ExternalSupply(), voltage=16.0)
        machine.attach(PowerComponent("base", {"on": 8.0}, "on"))
        assert machine.current == pytest.approx(0.5)

    def test_duplicate_component_rejected(self):
        sim = Simulator()
        machine = simple_machine(sim)
        with pytest.raises(HardwareError):
            machine.attach(PowerComponent("base", {"on": 1.0}, "on"))

    def test_component_lookup(self):
        sim = Simulator()
        machine = simple_machine(sim)
        assert machine["base"].name == "base"
        assert "base" in machine
        assert "ghost" not in machine


class TestEnergyIntegration:
    def test_constant_power_integrates_exactly(self):
        sim = Simulator()
        machine = simple_machine(sim)
        sim.run(until=10.0)
        assert machine.finish() == pytest.approx(20.0)  # 2 W * 10 s

    def test_state_change_integrates_piecewise(self):
        sim = Simulator()
        machine = simple_machine(sim)
        lamp = machine.attach(PowerComponent("lamp", {"on": 3.0, "off": 0.0}, "on"))
        sim.schedule(4.0, lambda t: lamp.set_state("off"))
        sim.run(until=10.0)
        # 5 W * 4 s + 2 W * 6 s = 32 J
        assert machine.finish() == pytest.approx(32.0)

    def test_supply_is_drained(self):
        sim = Simulator()
        battery = Battery(100.0)
        machine = simple_machine(sim, supply=battery)
        sim.run(until=10.0)
        machine.finish()
        assert battery.residual == pytest.approx(80.0)

    def test_energy_by_component_tracks_split(self):
        sim = Simulator()
        machine = simple_machine(sim)
        machine.attach(PowerComponent("lamp", {"on": 3.0}, "on"))
        sim.run(until=2.0)
        machine.finish()
        assert machine.energy_by_component["base"] == pytest.approx(4.0)
        assert machine.energy_by_component["lamp"] == pytest.approx(6.0)

    def test_correction_energy_has_own_row(self):
        sim = Simulator()
        machine = Machine(sim, ExternalSupply(), correction=lambda m: 1.0)
        machine.attach(PowerComponent("base", {"on": 2.0}, "on"))
        sim.run(until=3.0)
        machine.finish()
        assert machine.energy_by_component["(superlinear)"] == pytest.approx(3.0)

    def test_advance_is_idempotent_at_same_instant(self):
        sim = Simulator()
        machine = simple_machine(sim)
        sim.run(until=5.0)
        machine.advance()
        machine.advance()
        assert machine.energy_total == pytest.approx(10.0)


class TestAttribution:
    def test_idle_by_default(self):
        sim = Simulator()
        machine = simple_machine(sim)
        sim.run(until=10.0)
        report = machine.energy_report()
        assert report == {"Idle": pytest.approx(20.0)}

    def test_context_attributes_whole_machine_power(self):
        sim = Simulator()
        machine = simple_machine(sim)
        sim.run(until=2.0)
        token = machine.push_context("app", "render")
        sim.run(until=5.0)
        machine.pop_context(token)
        sim.run(until=6.0)
        report = machine.energy_report()
        assert report["app"] == pytest.approx(6.0)   # 2 W * 3 s
        assert report["Idle"] == pytest.approx(6.0)  # 2 W * (2 + 1) s
        assert machine.energy_by_procedure[("app", "render")] == pytest.approx(6.0)

    def test_nested_contexts_restore_outer(self):
        sim = Simulator()
        machine = simple_machine(sim)
        outer = machine.push_context("outer")
        sim.run(until=1.0)
        inner = machine.push_context("inner")
        sim.run(until=2.0)
        machine.pop_context(inner)
        sim.run(until=3.0)
        machine.pop_context(outer)
        report = machine.energy_report()
        assert report["outer"] == pytest.approx(4.0)
        assert report["inner"] == pytest.approx(2.0)

    def test_pop_with_bad_token_raises(self):
        sim = Simulator()
        machine = simple_machine(sim)
        with pytest.raises(HardwareError):
            machine.pop_context(999)

    def test_overlay_splits_energy(self):
        sim = Simulator()
        machine = simple_machine(sim)
        handle = machine.add_overlay(0.25, "Interrupts-WaveLAN")
        sim.run(until=4.0)
        machine.remove_overlay(handle)
        report = machine.energy_report()
        assert report["Interrupts-WaveLAN"] == pytest.approx(2.0)  # 25% of 8 J
        assert report["Idle"] == pytest.approx(6.0)

    def test_overlay_fraction_bounds_checked(self):
        sim = Simulator()
        machine = simple_machine(sim)
        with pytest.raises(HardwareError):
            machine.add_overlay(1.5, "x")
        with pytest.raises(HardwareError):
            machine.add_overlay(-0.1, "x")

    def test_remove_unknown_overlay_raises(self):
        sim = Simulator()
        machine = simple_machine(sim)
        with pytest.raises(HardwareError):
            machine.remove_overlay(42)

    def test_attribution_conserves_energy(self):
        sim = Simulator()
        machine = simple_machine(sim)
        machine.add_overlay(0.3, "ints")
        token = machine.push_context("app")
        sim.run(until=7.0)
        machine.pop_context(token)
        report = machine.energy_report()
        assert sum(report.values()) == pytest.approx(machine.energy_total)


class TestCompute:
    def test_compute_marks_cpu_busy_and_attributes(self):
        sim = Simulator()
        machine = build_machine(sim)

        def app():
            yield from machine.compute(2.0, "myapp", "decode")

        sim.spawn(app())
        sim.run(until=10.0)
        report = machine.energy_report()
        assert report["myapp"] > 0
        # CPU extra energy = 7.1 W * 2 s
        assert machine.energy_by_component["cpu"] == pytest.approx(
            tp.CPU_BUSY_EXTRA_W * 2.0
        )

    def test_concurrent_computes_serialize(self):
        sim = Simulator()
        machine = build_machine(sim)
        spans = []

        def app(tag):
            yield from machine.compute(2.0, tag)
            spans.append((tag, sim.now))

        sim.spawn(app("a"))
        sim.spawn(app("b"))
        sim.run()
        assert spans == [("a", 2.0), ("b", 4.0)]


class TestThinkpadCalibration:
    def test_full_on_total_matches_figure4(self):
        sim = Simulator()
        machine = build_machine(sim)
        # Bright display, disk and network idle, CPU idle.
        assert machine.power == pytest.approx(tp.FULL_ON_TOTAL_W, abs=0.02)

    def test_background_power_matches_paper(self):
        sim = Simulator()
        machine = build_machine(sim)
        machine["display"].dim()
        machine["disk"].standby()
        machine["wavelan"].set_resting_state(WaveLan.STANDBY)
        assert machine.power == pytest.approx(tp.BACKGROUND_W, abs=0.01)

    def test_superlinearity_is_positive(self):
        """Paper: power usage is slightly but consistently superlinear."""
        sim = Simulator()
        machine = build_machine(sim)
        component_sum = sum(c.power for c in machine.components.values())
        assert machine.power > component_sum

    def test_zoned_build(self):
        sim = Simulator()
        machine = build_machine(sim, zoned=(2, 4))
        assert machine["display"].zones == 8

    def test_everything_off_leaves_base_power(self):
        sim = Simulator()
        machine = build_machine(sim)
        machine["display"].off()
        machine["disk"].set_state(Disk.OFF)
        machine["wavelan"].set_resting_state(WaveLan.OFF)
        # Base 3.20 W + 0.11 W correction: the "last row of Figure 4".
        assert machine.power == pytest.approx(tp.BASE_W + 0.11, abs=0.01)


class TestBattery:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SupplyError):
            Battery(0.0)

    def test_drain_and_residual(self):
        battery = Battery(100.0)
        battery.drain(30.0)
        assert battery.residual == pytest.approx(70.0)
        assert battery.fraction_remaining == pytest.approx(0.7)
        assert not battery.exhausted

    def test_drain_clamps_at_empty(self):
        battery = Battery(10.0)
        battery.drain(25.0)
        assert battery.residual == 0.0
        assert battery.exhausted

    def test_negative_drain_rejected(self):
        with pytest.raises(SupplyError):
            Battery(10.0).drain(-1.0)

    def test_external_supply_never_exhausts(self):
        supply = ExternalSupply()
        supply.drain(1e9)
        assert not supply.exhausted
        assert supply.residual == float("inf")
        assert supply.drawn == pytest.approx(1e9)


class TestPowerManager:
    def test_disabled_keeps_everything_on(self):
        sim = Simulator()
        machine = build_machine(sim)
        pm = PowerManager(machine, enabled=False)
        pm.apply_initial_states()
        assert machine["display"].state == Display.BRIGHT
        assert machine["disk"].state == Disk.IDLE
        assert machine["wavelan"].resting_state == WaveLan.IDLE

    def test_enabled_puts_nic_in_standby(self):
        sim = Simulator()
        machine = build_machine(sim)
        pm = PowerManager(machine, enabled=True)
        pm.apply_initial_states()
        assert machine["wavelan"].state == WaveLan.STANDBY

    def test_enabled_starts_disk_in_standby(self):
        """Paper §3.3.2: the disk stays in standby the whole experiment."""
        sim = Simulator()
        machine = build_machine(sim)
        pm = PowerManager(machine, enabled=True, disk_spindown_timeout=10.0)
        pm.apply_initial_states()
        assert machine["disk"].state == Disk.STANDBY

    def test_activity_spins_down_again_after_timeout(self):
        sim = Simulator()
        machine = build_machine(sim)
        pm = PowerManager(machine, enabled=True, disk_spindown_timeout=10.0)
        pm.apply_initial_states()

        def access():
            machine["disk"].set_state(Disk.IDLE)  # spin-up side effect
            pm.note_disk_activity()

        sim.schedule(5.0, lambda t: access())
        sim.run(until=14.0)
        assert machine["disk"].state == Disk.IDLE  # deadline is 15 s
        sim.run(until=16.0)
        assert machine["disk"].state == Disk.STANDBY

    def test_late_activity_defers_earlier_spindown_deadline(self):
        sim = Simulator()
        machine = build_machine(sim)
        pm = PowerManager(machine, enabled=True, disk_spindown_timeout=10.0)
        pm.apply_initial_states()
        machine["disk"].set_state(Disk.IDLE)
        pm.note_disk_activity()           # deadline 10 s
        sim.schedule(8.0, lambda t: pm.note_disk_activity())  # deadline 18 s
        sim.run(until=12.0)
        assert machine["disk"].state == Disk.IDLE
        sim.run(until=19.0)
        assert machine["disk"].state == Disk.STANDBY

    def test_display_off_policy_for_speech(self):
        sim = Simulator()
        machine = build_machine(sim)
        pm = PowerManager(machine, enabled=True, display_policy="off")
        pm.apply_initial_states()
        assert machine["display"].state == Display.OFF

    def test_invalid_display_policy_rejected(self):
        sim = Simulator()
        machine = build_machine(sim)
        with pytest.raises(ValueError):
            PowerManager(machine, enabled=True, display_policy="sepia")

    def test_timeline_records_state_changes(self):
        sim = Simulator()
        timeline = Timeline()
        machine = build_machine(sim, timeline=timeline)
        machine["display"].dim()
        changes = timeline.category("hardware")
        assert changes and changes[-1].label == "display"
        assert changes[-1].value == Display.DIM
