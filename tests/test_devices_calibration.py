"""Online calibrator convergence: recovery, drift, and observability.

The pulse machine has no superlinear correction, so total draw is an
exact linear combination of per-component wattages — under a noiseless
high-resolution gauge the regression must recover a perturbed table
almost exactly.  The 1% bound here is the ISSUE acceptance criterion;
the fit actually lands around 0.1%.
"""

import pytest

from repro.devices import DeviceProfile
from repro.devices.calibrate import parse_drift
from repro.snapshot.scenario import build_pulse_scenario

#: A deliberately miscalibrated device with a near-ideal gauge: fine
#: resolution, zero noise, 2 Hz readings.  The multipliers are the
#: ground truth the calibrator must recover.
TRUE_MULTIPLIERS = {"platform": 1.15, "codec": 0.85, "radio": 1.2}


def calibrated_device(**overrides):
    kwargs = dict(multipliers=dict(TRUE_MULTIPLIERS),
                  gauge_period=0.5, gauge_resolution_w=0.01,
                  gauge_noise_w=0.0)
    kwargs.update(overrides)
    return DeviceProfile("cal-rig", **kwargs)


def run_learned(seconds, initial_energy=1400.0, **kwargs):
    scenario = build_pulse_scenario(
        goal_seconds=seconds, initial_energy=initial_energy,
        learned_model=True, **kwargs)
    scenario.start()
    scenario.run()
    return scenario


# ----------------------------------------------------------------------
# zero-noise recovery — the acceptance criterion
# ----------------------------------------------------------------------
def test_zero_noise_recovers_perturbed_table_within_one_percent():
    scenario = run_learned(120.0, device=calibrated_device())
    calibrator = scenario.calibrator
    assert calibrator.fits > 0
    errors = calibrator.model.error_vs(TRUE_MULTIPLIERS)
    assert set(errors) == {"platform", "codec", "radio"}
    for name, error in errors.items():
        assert error < 0.01, (
            f"{name}: fitted {calibrator.model.multiplier(name):.4f} vs "
            f"true {TRUE_MULTIPLIERS[name]} ({error:.2%} off)"
        )


def test_learned_table_scales_nominal_wattages():
    scenario = run_learned(120.0, device=calibrated_device())
    model = scenario.calibrator.model
    table = model.table()
    assert table["codec"]["full"] == pytest.approx(
        4.2 * model.multiplier("codec"))
    assert table["platform"]["on"] == pytest.approx(
        5.6 * model.multiplier("platform"))


def test_nominal_device_fits_identity():
    """With no profile at all the fit should land on ~1.0 everywhere."""
    scenario = run_learned(
        120.0, device=DeviceProfile("nominal", gauge_period=0.5,
                                    gauge_resolution_w=0.01))
    identity = {"platform": 1.0, "codec": 1.0, "radio": 1.0}
    for name, error in scenario.calibrator.model.error_vs(identity).items():
        assert error < 0.01, name


def test_summary_reports_convergence():
    scenario = run_learned(120.0, device=calibrated_device())
    summary = scenario.summary()
    calibration = summary["calibration"]
    assert calibration["readings"] > 100
    assert calibration["fits"] > 0
    assert calibration["recent_abs_residual_w"] < 0.05
    assert set(calibration["multipliers"]) == {"platform", "codec", "radio"}


# ----------------------------------------------------------------------
# drift: residual spike, then re-convergence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("drift_at", [40.0, 60.0, 80.0])
def test_drift_spikes_then_reconverges(drift_at):
    """Property over drift instants: wherever the real table jumps, the
    residual spikes right after and the window refit pulls it back
    down; the post-drift model converges on the drifted truth."""
    factor = 1.25
    scenario = run_learned(120.0, device=calibrated_device(),
                           drift=(drift_at, factor))
    calibrator = scenario.calibrator

    pre = [abs(r) for r in calibrator.residuals_between(20.0, drift_at)]
    spike = [abs(r) for r in
             calibrator.residuals_between(drift_at, drift_at + 5.0)]
    tail = [abs(r) for r in calibrator.residuals_between(110.0, 120.0)]
    assert pre and spike and tail

    assert max(spike) > 10 * max(pre), (
        f"drift at t={drift_at} produced no residual spike "
        f"(pre max {max(pre):.4f} W, post max {max(spike):.4f} W)"
    )
    assert max(tail) < max(spike) / 10, (
        f"calibrator did not re-converge after drift at t={drift_at} "
        f"(spike {max(spike):.4f} W, tail {max(tail):.4f} W)"
    )

    drifted_truth = {name: factor * mult
                     for name, mult in TRUE_MULTIPLIERS.items()}
    for name, error in calibrator.model.error_vs(drifted_truth).items():
        assert error < 0.01, (
            f"{name}: post-drift fit {calibrator.model.multiplier(name):.4f}"
            f" vs drifted truth {drifted_truth[name]:.4f}"
        )


def test_parse_drift():
    assert parse_drift("60:1.25") == (60.0, 1.25)
    assert parse_drift((40, 1.5)) == (40.0, 1.5)
    for bad in ("60", "x:y", "-1:1.5", "60:0"):
        with pytest.raises(ValueError):
            parse_drift(bad)


# ----------------------------------------------------------------------
# observability: calibration.* events joinable to power spans
# ----------------------------------------------------------------------
def test_calibration_events_join_power_spans():
    from repro.obs import Tracer, installed
    from repro.obs.export import join_power

    tracer = Tracer(categories={"core", "power", "calibration"})
    with installed(tracer):
        run_learned(60.0, device=calibrated_device(),
                    drift=(30.0, 1.25), tracer=tracer)
    tracer.flush()
    events = list(tracer.events)

    fits = [e for e in events if e.name == "calibration.fit"]
    drifts = [e for e in events if e.name == "calibration.drift"]
    assert len(fits) > 50
    assert len(drifts) == 1
    for event in fits + drifts:
        assert "power_span" in event.args

    joined = join_power(events)
    by_name = {}
    for entry in joined:
        by_name.setdefault(entry["event"].get("name"), []).append(entry)
    assert "calibration.fit" in by_name
    assert "calibration.drift" in by_name
    # The joins resolve: the referenced power spans exist in the trace.
    resolved = [e for e in by_name["calibration.fit"]
                if e["span"] is not None]
    assert resolved, "no calibration.fit event joined a closed power span"


def test_calibration_metrics_are_registered():
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    scenario = build_pulse_scenario(
        goal_seconds=60.0, initial_energy=1400.0, learned_model=True,
        device=calibrated_device(), metrics=metrics)
    scenario.start()
    scenario.run()
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["calibration.readings"] > 0
    assert snapshot["counters"]["calibration.fits"] > 0
    assert "calibration.residual_w" in snapshot["histograms"]
    assert "calibration.last_residual_w" in snapshot["gauges"]


# ----------------------------------------------------------------------
# the controller behind a learned feed still manages the goal
# ----------------------------------------------------------------------
def test_learned_feed_drives_the_controller():
    """The controller's whole power view passes through the learned
    model, and the run still adapts and reaches a terminal state."""
    scenario = run_learned(120.0, initial_energy=1000.0,
                           device=calibrated_device())
    summary = scenario.summary()
    assert summary["survived_seconds"] > 0
    assert scenario.calibrator.readings > 100
    # The monitor is the calibrated feed, not the ground-truth monitor.
    from repro.devices.calibrate import CalibratedPowerFeed
    assert isinstance(scenario.monitor, CalibratedPowerFeed)