"""Fork determinism: a restored branch reproduces the parent's future.

The snapshot contract (``repro.snapshot.state``) is byte-level: a stack
captured at time T and advanced to T' must produce *exactly* the run an
uninterrupted stack produces — same decision spine, same power journal,
same accumulated energy, down to float representation.  These tests
enforce the contract end-to-end on the pulse scenario; the snapshot
CLI's ``roundtrip`` mode runs the same check in CI.
"""

import pytest

from repro.fleet.spec import canonical_json
from repro.obs import Tracer
from repro.obs.diff import decision_spine, diff_spines, diff_traces
from repro.snapshot import Snapshot
from repro.snapshot.scenario import build_pulse_scenario

CAPTURE_AT = 120.0


def _final_payload(scenario):
    return canonical_json(Snapshot.capture(scenario.sim).payload)


@pytest.fixture(scope="module")
def runs():
    """One uninterrupted run and one interrupted-at-T run with a fork."""
    reference = build_pulse_scenario().start().run()
    parent = build_pulse_scenario().start().run(until=CAPTURE_AT)
    snapshot = Snapshot.capture(parent.sim)
    fork = snapshot.fork().run()
    parent.run()
    return reference, parent, fork, snapshot


def test_fork_summary_matches_uninterrupted(runs):
    reference, _parent, fork, _snap = runs
    assert canonical_json(fork.summary()) == canonical_json(
        reference.summary())


def test_fork_full_state_byte_identical(runs):
    """The *entire* final state — journal, accumulators, counters,
    pending events — round-trips identically through the fork."""
    reference, _parent, fork, _snap = runs
    assert _final_payload(fork) == _final_payload(reference)


def test_capture_does_not_perturb_parent(runs):
    """Capturing is side-effect free: the parent, resumed after the
    capture, finishes exactly like the run that was never captured."""
    reference, parent, _fork, _snap = runs
    assert canonical_json(parent.summary()) == canonical_json(
        reference.summary())
    assert _final_payload(parent) == _final_payload(reference)


def test_power_journal_identical(runs):
    reference, _parent, fork, _snap = runs
    ref_machine = Snapshot.capture(reference.sim).payload["states"]["machine"]
    fork_machine = Snapshot.capture(fork.sim).payload["states"]["machine"]
    assert fork_machine["journal"] == ref_machine["journal"]
    assert fork_machine["energy_total"] == ref_machine["energy_total"]
    assert fork_machine["energy_by_process"] == (
        ref_machine["energy_by_process"])


def test_repeated_forks_are_identical(runs):
    """A snapshot is a value: every fork of it lands in the same place."""
    _reference, _parent, _fork, snapshot = runs
    first = snapshot.fork().run()
    second = snapshot.fork().run()
    assert _final_payload(first) == _final_payload(second)


def test_decision_spine_and_trace_diff_clean():
    """`repro diff` of an uninterrupted run vs a fork-stitched run
    reports zero divergence — the satellite's acceptance check."""
    tracer_ref = Tracer(categories={"core"})
    build_pulse_scenario(tracer=tracer_ref).start().run()
    tracer_ref.flush()

    tracer_prefix = Tracer(categories={"core"})
    parent = build_pulse_scenario(tracer=tracer_prefix).start()
    parent.run(until=CAPTURE_AT)
    snapshot = Snapshot.capture(parent.sim)
    tracer_suffix = Tracer(categories={"core"})
    snapshot.fork(tracer=tracer_suffix).run()
    tracer_prefix.flush()
    tracer_suffix.flush()

    stitched = list(tracer_prefix.events) + list(tracer_suffix.events)
    spine_diff = diff_spines(decision_spine(tracer_ref.events),
                             decision_spine(stitched))
    assert spine_diff.identical, "\n" + spine_diff.render()
    trace_diff = diff_traces(list(tracer_ref.events), stitched)
    assert trace_diff.identical, "\n" + trace_diff.render()


def test_snapshot_payload_is_json_pure():
    """The payload must survive a JSON round-trip unchanged — the
    on-disk store and the in-memory fork share one representation."""
    import json

    parent = build_pulse_scenario().start().run(until=CAPTURE_AT)
    snapshot = Snapshot.capture(parent.sim)
    rehydrated = json.loads(json.dumps(snapshot.payload))
    assert canonical_json(rehydrated) == canonical_json(snapshot.payload)
    fork = Snapshot(rehydrated).fork().run()
    reference = build_pulse_scenario().start().run()
    assert _final_payload(fork) == _final_payload(reference)
