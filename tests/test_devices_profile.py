"""Device profiles: deterministic fleets, loaders, and machine scaling."""

import pytest

from repro.devices import (
    DeviceProfile,
    generate_device,
    generate_fleet,
    load_fleet,
    write_fleet,
)
from repro.devices.profile import (
    BATTERY_SCALE_RANGE,
    GAUGE_NOISE_RANGE,
    GAUGE_PERIOD_RANGE,
    GAUGE_RESOLUTION_RANGE,
    MULTIPLIER_RANGE,
)


# ----------------------------------------------------------------------
# the descriptor itself
# ----------------------------------------------------------------------
def test_profile_defaults_are_nominal():
    profile = DeviceProfile("d0")
    assert profile.multiplier("display") == 1.0
    assert profile.scale("display", 4.54) == 4.54
    assert profile.battery_scale == 1.0


def test_profile_round_trips_through_dict():
    profile = DeviceProfile("d0", multipliers={"cpu": 1.1, "disk": 0.9},
                            battery_scale=0.95, gauge_period=0.5,
                            gauge_resolution_w=0.1, gauge_noise_w=0.05)
    clone = DeviceProfile.from_dict(profile.to_dict())
    assert clone.to_dict() == profile.to_dict()


@pytest.mark.parametrize("kwargs", [
    {"device_id": ""},
    {"device_id": "d", "battery_scale": 0.0},
    {"device_id": "d", "gauge_period": 0.0},
    {"device_id": "d", "gauge_resolution_w": 0.0},
    {"device_id": "d", "gauge_noise_w": -0.1},
    {"device_id": "d", "multipliers": {"cpu": 0.0}},
])
def test_profile_validation(kwargs):
    with pytest.raises(ValueError):
        DeviceProfile(**kwargs)


# ----------------------------------------------------------------------
# deterministic generation
# ----------------------------------------------------------------------
def test_generate_fleet_is_byte_stable():
    a = [d.to_dict() for d in generate_fleet(4, 7)]
    b = [d.to_dict() for d in generate_fleet(4, 7)]
    assert a == b
    assert [d["device_id"] for d in a] == ["dev00", "dev01", "dev02",
                                           "dev03"]


def test_generate_fleet_prefix_property():
    """A larger fleet extends a smaller one at the same seed — device
    parameters depend only on (seed, device_id)."""
    small = [d.to_dict() for d in generate_fleet(2, 7)]
    large = [d.to_dict() for d in generate_fleet(6, 7)]
    assert large[:2] == small


def test_different_seeds_differ():
    assert (generate_device(1, "dev00").to_dict()
            != generate_device(2, "dev00").to_dict())


def test_generated_parameters_stay_in_range():
    for device in generate_fleet(16, 3):
        for factor in device.multipliers.values():
            assert MULTIPLIER_RANGE[0] <= factor <= MULTIPLIER_RANGE[1]
        assert (BATTERY_SCALE_RANGE[0] <= device.battery_scale
                <= BATTERY_SCALE_RANGE[1])
        assert (GAUGE_PERIOD_RANGE[0] <= device.gauge_period
                <= GAUGE_PERIOD_RANGE[1])
        assert (GAUGE_RESOLUTION_RANGE[0] <= device.gauge_resolution_w
                <= GAUGE_RESOLUTION_RANGE[1])
        assert (GAUGE_NOISE_RANGE[0] <= device.gauge_noise_w
                <= GAUGE_NOISE_RANGE[1])


# ----------------------------------------------------------------------
# fleet files
# ----------------------------------------------------------------------
def test_fleet_file_round_trip(tmp_path):
    path = tmp_path / "fleet.json"
    fleet = generate_fleet(4, 7)
    write_fleet(fleet, path, fleet_seed=7)
    loaded = load_fleet(path)
    assert [d.to_dict() for d in loaded] == [d.to_dict() for d in fleet]


def test_fleet_file_bytes_are_stable(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    write_fleet(generate_fleet(3, 9), a, fleet_seed=9)
    write_fleet(generate_fleet(3, 9), b, fleet_seed=9)
    assert a.read_bytes() == b.read_bytes()


def test_load_fleet_rejects_wrong_kind(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"kind": "something-else", "version": 1}')
    with pytest.raises(ValueError):
        load_fleet(path)


def test_load_fleet_rejects_duplicate_ids(tmp_path):
    path = tmp_path / "dup.json"
    device = generate_device(1, "dev00")
    write_fleet([device, device], path)
    with pytest.raises(ValueError):
        load_fleet(path)


# ----------------------------------------------------------------------
# machine integration
# ----------------------------------------------------------------------
def test_machine_attach_scales_component_tables():
    from repro.hardware.battery import ExternalSupply
    from repro.hardware.component import PowerComponent
    from repro.hardware.machine import Machine
    from repro.sim import Simulator

    profile = DeviceProfile("d0", multipliers={"widget": 1.5})
    machine = Machine(Simulator(), ExternalSupply(), profile=profile)
    machine.attach(PowerComponent("widget", {"on": 2.0, "off": 0.5}, "on"))
    machine.attach(PowerComponent("other", {"on": 1.0}, "on"))
    assert machine["widget"].states == {"on": 3.0, "off": 0.75}
    assert machine["other"].states == {"on": 1.0}
    assert machine.power == pytest.approx(4.0)


def test_thinkpad_build_accepts_profile():
    from repro.hardware.thinkpad560x import DISPLAY_BRIGHT_W, build_machine
    from repro.sim import Simulator

    profile = DeviceProfile("d0", multipliers={"display": 1.1})
    machine = build_machine(Simulator(), profile=profile)
    assert machine["display"].power == pytest.approx(DISPLAY_BRIGHT_W * 1.1)
    nominal = build_machine(Simulator())
    assert nominal["display"].power == pytest.approx(DISPLAY_BRIGHT_W)


def test_pulse_scenario_device_param_recorded_only_when_set():
    from repro.snapshot.scenario import build_pulse_scenario

    plain = build_pulse_scenario(goal_seconds=60.0, initial_energy=600.0)
    assert "device" not in plain.params
    assert "learned_model" not in plain.params
    assert "drift" not in plain.params

    profile = generate_device(7, "dev00")
    scenario = build_pulse_scenario(goal_seconds=60.0, initial_energy=600.0,
                                    device=profile)
    assert scenario.params["device"] == profile.to_dict()
    # Physical battery scales; the controller's belief does not.
    assert scenario.battery.residual == pytest.approx(
        600.0 * profile.battery_scale)
    assert scenario.controller.supply.initial == pytest.approx(600.0)


def test_pulse_scenario_device_changes_outcome():
    from repro.snapshot.scenario import run_pulse_goal

    nominal = run_pulse_goal(goal_seconds=120.0, initial_energy=1000.0)
    hot = run_pulse_goal(
        goal_seconds=120.0, initial_energy=1000.0,
        device=DeviceProfile("hot", multipliers={"platform": 1.2},
                             battery_scale=0.85),
    )
    assert hot["energy_total_j"] != nominal["energy_total_j"]


def test_learned_model_rejects_lookahead():
    from repro.snapshot.scenario import build_pulse_scenario

    with pytest.raises(ValueError):
        build_pulse_scenario(learned_model=True, lookahead=True)
    with pytest.raises(ValueError):
        build_pulse_scenario(drift="10:1.5", lookahead=True)