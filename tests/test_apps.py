"""Tests for the four adaptive applications."""

import pytest

from repro.apps import CompositeApplication
from repro.experiments.rig import build_rig
from repro.hardware import Display, WaveLan
from repro.workloads import IMAGES, MAPS, UTTERANCES, VIDEO_CLIPS


def short_clip():
    """A few seconds of video keeps unit tests fast."""
    from repro.workloads.videos import VideoClip

    return VideoClip("short", 3.0, 12.0, 16_000)


class TestVideoPlayer:
    def test_plays_all_frames_in_real_time(self):
        rig = build_rig(pm_enabled=True)
        player = rig.apps["video"]
        clip = short_clip()
        proc = rig.sim.spawn(player.play(clip))
        rig.run_until_complete(proc)
        assert player.frames_played == clip.frame_count
        # Paced playback: the experiment lasts about the clip duration.
        assert rig.sim.now == pytest.approx(clip.duration_s, rel=0.1)

    def test_fidelity_config_mapping(self):
        rig = build_rig()
        player = rig.apps["video"]
        assert player.fidelity == "baseline"
        assert player.track == "baseline"
        assert player.window == "full"
        player.set_fidelity("combined")
        assert player.track == "premiere-c"
        assert player.window == "reduced"

    def test_window_rect_shrinks_at_reduced_fidelity(self):
        rig = build_rig()
        player = rig.apps["video"]
        full_area = player.window_rect().area
        player.set_fidelity("reduced-window")
        assert player.window_rect().area == pytest.approx(full_area / 4)

    def test_compression_reduces_bytes_transferred(self):
        clip = short_clip()
        totals = {}
        for level in ("baseline", "premiere-c"):
            rig = build_rig()
            player = rig.apps["video"]
            player.set_fidelity(level)
            proc = rig.sim.spawn(player.play(clip))
            rig.run_until_complete(proc)
            totals[level] = rig.link.bytes_transferred
        assert totals["premiere-c"] < 0.6 * totals["baseline"]

    def test_energy_attribution_has_paper_processes(self):
        """Figure 6 shadings: Idle, Xanim, X, Odyssey, WaveLAN."""
        rig = build_rig()
        player = rig.apps["video"]
        proc = rig.sim.spawn(player.play(short_clip()))
        rig.run_until_complete(proc)
        report = rig.energy_report()
        for process in ("Idle", "xanim", "X", "odyssey", "Interrupts-WaveLAN"):
            assert report.get(process, 0) > 0, f"missing {process}"

    def test_x_energy_unaffected_by_compression(self):
        """Paper: frames are decoded before reaching X, so X cost is
        independent of the lossy-compression level."""
        x_energy = {}
        for level in ("baseline", "premiere-c"):
            rig = build_rig()
            player = rig.apps["video"]
            player.set_fidelity(level)
            proc = rig.sim.spawn(player.play(short_clip()))
            rig.run_until_complete(proc)
            x_energy[level] = rig.energy_report()["X"]
        assert x_energy["premiere-c"] == pytest.approx(
            x_energy["baseline"], rel=0.05
        )

    def test_mid_stream_adaptation_takes_effect(self):
        rig = build_rig()
        player = rig.apps["video"]
        clip = VIDEO_CLIPS[0]
        proc = rig.sim.spawn(player.play(clip, max_seconds=10.0))
        rig.sim.schedule(5.0, lambda t: player.set_fidelity("combined"))
        rig.run_until_complete(proc)
        assert player.fidelity == "combined"
        assert player.frames_played == int(10.0 * clip.fps)

    def test_play_loop_runs_for_duration(self):
        rig = build_rig()
        player = rig.apps["video"]

        def main():
            yield from player.play_loop(short_clip(), duration=7.0)

        proc = rig.sim.spawn(main())
        rig.run_until_complete(proc)
        assert rig.sim.now == pytest.approx(7.0, abs=0.5)
        assert player.items_completed >= 2  # looped at least twice


class TestSpeechRecognizer:
    def test_local_recognition_time_follows_model(self):
        rig = build_rig(pm_enabled=True, display_policy="off")
        recognizer = rig.apps["speech"]
        utt = UTTERANCES[1]
        proc = rig.sim.spawn(recognizer.recognize(utt))
        rig.run_until_complete(proc)
        assert rig.sim.now == pytest.approx(utt.recognition_seconds("full"))

    def test_invalid_mode_rejected(self):
        rig = build_rig()
        from repro.apps import SpeechRecognizer

        with pytest.raises(ValueError):
            SpeechRecognizer(rig.machine, mode="telepathy")

    def test_remote_mode_requires_warden(self):
        rig = build_rig()
        from repro.apps import SpeechRecognizer

        with pytest.raises(ValueError):
            SpeechRecognizer(rig.machine, warden=None, mode="remote")

    def test_remote_ships_waveform(self):
        rig = build_rig(speech_mode="remote", display_policy="off")
        recognizer = rig.apps["speech"]
        utt = UTTERANCES[0]
        proc = rig.sim.spawn(recognizer.recognize(utt))
        rig.run_until_complete(proc)
        assert rig.link.bytes_transferred >= utt.waveform_bytes

    def test_hybrid_ships_five_times_less_data(self):
        moved = {}
        for mode in ("remote", "hybrid"):
            rig = build_rig(speech_mode=mode, display_policy="off")
            recognizer = rig.apps["speech"]
            proc = rig.sim.spawn(recognizer.recognize(UTTERANCES[2]))
            rig.run_until_complete(proc)
            moved[mode] = rig.link.bytes_transferred
        assert moved["hybrid"] < 0.35 * moved["remote"]

    def test_reduced_model_uses_less_energy(self):
        energies = {}
        for model in ("full", "reduced"):
            rig = build_rig(display_policy="off")
            recognizer = rig.apps["speech"]
            recognizer.set_fidelity(model)
            proc = rig.sim.spawn(recognizer.recognize(UTTERANCES[3]))
            energies[model] = rig.run_until_complete(proc)
        assert energies["reduced"] < energies["full"]

    def test_janus_dominates_local_profile(self):
        """Paper: almost all energy in local recognition is Janus."""
        rig = build_rig(display_policy="off")
        recognizer = rig.apps["speech"]
        proc = rig.sim.spawn(recognizer.recognize(UTTERANCES[2]))
        rig.run_until_complete(proc)
        report = rig.energy_report()
        assert report["janus"] > 0.9 * sum(report.values())


class TestMapViewer:
    def test_view_includes_think_time(self):
        rig = build_rig(think_time_s=5.0)
        viewer = rig.apps["map"]
        proc = rig.sim.spawn(viewer.view(MAPS[1]))
        rig.run_until_complete(proc)
        fetch_render = rig.sim.now - 5.0
        assert fetch_render > 0

    def test_filtering_reduces_fetch_bytes(self):
        moved = {}
        for level in ("full", "secondary-filter"):
            rig = build_rig()
            viewer = rig.apps["map"]
            proc = rig.sim.spawn(viewer.view(MAPS[0], fidelity=level))
            rig.run_until_complete(proc)
            moved[level] = rig.link.bytes_transferred
        assert moved["secondary-filter"] < 0.5 * moved["full"]

    def test_unknown_fidelity_rejected(self):
        rig = build_rig()
        viewer = rig.apps["map"]
        proc = rig.sim.spawn(viewer.view(MAPS[0], fidelity="sepia"))
        with pytest.raises(ValueError):
            rig.run_until_complete(proc)

    def test_nic_standby_during_think_time_with_pm(self):
        rig = build_rig(pm_enabled=True, think_time_s=10.0)
        viewer = rig.apps["map"]
        proc = rig.sim.spawn(viewer.view(MAPS[1]))
        rig.run_until_complete(proc)
        # The NIC woke for the fetch RPC and fell back to standby for
        # the think period (paper: standby except during RPCs).
        nic_states = [
            r.value
            for r in rig.timeline.category("hardware")
            if r.label == "wavelan"
        ]
        assert WaveLan.RECV in nic_states or WaveLan.XMIT in nic_states
        assert nic_states[-1] == WaveLan.STANDBY
        assert rig.machine["wavelan"].state == WaveLan.STANDBY

    def test_window_rect_halves_when_cropped(self):
        rig = build_rig()
        viewer = rig.apps["map"]
        full = viewer.window_rect()
        viewer.set_fidelity("crop-secondary")
        cropped = viewer.window_rect()
        assert cropped.height == pytest.approx(full.height / 2)


class TestWebBrowser:
    def test_browse_full_quality_skips_distillation(self):
        rig = build_rig()
        browser = rig.apps["web"]
        proc = rig.sim.spawn(browser.browse(IMAGES[0], quality="full"))
        rig.run_until_complete(proc)
        assert rig.servers["distill"].busy_seconds == 0.0

    def test_distillation_runs_on_server_for_lower_quality(self):
        rig = build_rig()
        browser = rig.apps["web"]
        proc = rig.sim.spawn(browser.browse(IMAGES[0], quality="jpeg-25"))
        rig.run_until_complete(proc)
        assert rig.servers["distill"].busy_seconds > 0.0

    def test_quality_reduces_bytes(self):
        moved = {}
        for quality in ("full", "jpeg-5"):
            rig = build_rig()
            browser = rig.apps["web"]
            proc = rig.sim.spawn(browser.browse(IMAGES[0], quality=quality))
            rig.run_until_complete(proc)
            moved[quality] = rig.link.bytes_transferred
        assert moved["jpeg-5"] < 0.2 * moved["full"]

    def test_profile_contains_proxy_and_netscape(self):
        rig = build_rig()
        browser = rig.apps["web"]
        proc = rig.sim.spawn(browser.browse(IMAGES[1]))
        rig.run_until_complete(proc)
        report = rig.energy_report()
        assert report.get("netscape", 0) > 0
        assert report.get("proxy", 0) > 0


class TestCompositeApplication:
    def make_composite(self, rig):
        return CompositeApplication(
            rig.apps["speech"], rig.apps["web"], rig.apps["map"]
        )

    def test_one_iteration_exercises_all_apps(self):
        rig = build_rig()
        composite = self.make_composite(rig)
        proc = rig.sim.spawn(composite.run_iteration())
        rig.run_until_complete(proc)
        assert rig.apps["speech"].utterances_recognized == 2
        assert rig.apps["web"].pages_viewed == 1
        assert rig.apps["map"].maps_viewed == 1

    def test_six_iterations_cycle_objects(self):
        rig = build_rig(think_time_s=0.5)
        composite = self.make_composite(rig)
        proc = rig.sim.spawn(composite.run(iterations=6))
        rig.run_until_complete(proc)
        assert composite.iterations_completed == 6
        assert rig.apps["web"].pages_viewed == 6

    def test_run_every_paces_iterations(self):
        rig = build_rig(think_time_s=0.5)
        composite = self.make_composite(rig)

        def main():
            yield from composite.run_every(period=25.0, until=70.0)

        proc = rig.sim.spawn(main())
        rig.run_until_complete(proc)
        # Iterations start at 0, 25, 50 -> three complete.
        assert composite.iterations_completed == 3

    def test_constituents_adapt_independently(self):
        rig = build_rig()
        composite = self.make_composite(rig)
        rig.apps["speech"].degrade()
        assert rig.apps["web"].fidelity == "full"
        assert composite.speech.fidelity == "reduced"
