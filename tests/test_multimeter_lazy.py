"""Golden determinism: the lazy sampler is bit-identical to the eager one.

The lazy multimeter synthesizes its sample streams from the machine's
segment journal instead of scheduling 600 events per second.  These
tests drive the same scripted workload under both modes and require
*exact* equality — same floating-point timestamps, same current values,
same RNG-resolved attributions — across several seeds, plus the fold
path (``Multimeter.profile``) reproducing ``correlate()`` bit for bit.
"""

import pytest

from repro.hardware import ExternalSupply, Machine, PowerComponent
from repro.powerscope import (
    CorrelationError,
    Multimeter,
    SystemMonitor,
    correlate,
)
from repro.sim import Simulator

RATE_HZ = 150.0


def scripted_run(eager, seed, until=3.0, stop=True):
    """One fixed workload: bursts, context changes, and an overlay."""
    sim = Simulator()
    machine = Machine(sim, ExternalSupply())
    machine.attach(PowerComponent("base", {"on": 2.0}, "on"))
    cpu = machine.attach(
        PowerComponent("cpu", {"idle": 1.0, "busy": 5.0}, "idle")
    )
    monitor = SystemMonitor(machine, seed=seed)
    meter = Multimeter(machine, rate_hz=RATE_HZ, monitor=monitor, eager=eager)

    def workload():
        yield sim.timeout(0.4)
        token = machine.push_context("app", "work")
        cpu.set_state("busy")
        handle = machine.add_overlay(0.3, "Interrupts-WaveLAN")
        yield sim.timeout(1.3)
        machine.remove_overlay(handle)
        cpu.set_state("idle")
        machine.pop_context(token)
        yield sim.timeout(0.7)

    sim.spawn(workload())
    meter.start()
    sim.run(until=until)
    if stop:
        meter.stop()
    machine.advance()
    return sim, machine, meter, monitor


class TestGoldenDeterminism:
    @pytest.mark.parametrize("seed", range(5))
    def test_sample_streams_bit_identical(self, seed):
        _, _, eager_meter, eager_monitor = scripted_run(True, seed)
        _, _, lazy_meter, lazy_monitor = scripted_run(False, seed)
        assert lazy_meter.samples == eager_meter.samples
        assert lazy_monitor.samples == eager_monitor.samples

    @pytest.mark.parametrize("seed", range(5))
    def test_profiles_bit_identical(self, seed):
        _, _, eager_meter, _ = scripted_run(True, seed)
        _, _, lazy_meter, _ = scripted_run(False, seed)
        eager_profile = eager_meter.profile()
        lazy_profile = lazy_meter.profile()
        assert lazy_profile.as_table() == eager_profile.as_table()

    def test_fold_profile_matches_correlate_of_materialized_streams(self):
        # Materialize one lazy run's streams and correlate them by hand…
        _, machine, meter, monitor = scripted_run(False, seed=3)
        via_correlate = correlate(
            meter.samples, monitor.samples, machine.voltage,
            period=meter.period,
        )
        # …then fold a fresh identical run straight from the journal.
        _, _, fresh_meter, _ = scripted_run(False, seed=3)
        assert fresh_meter.profile().as_table() == via_correlate.as_table()

    def test_profile_covers_samples_materialized_mid_run(self):
        sim, machine, meter, monitor = scripted_run(
            False, seed=1, until=1.0, stop=False
        )
        # Still running: materialize a prefix, then keep sampling.
        assert meter.sample_count > 0  # forces synthesis at t=1.0
        sim.run(until=3.0)
        meter.stop()
        lazy_profile = meter.profile()
        _, _, eager_meter, _ = scripted_run(True, seed=1)
        assert lazy_profile.as_table() == eager_meter.profile().as_table()


class TestMeterLifecycle:
    def test_lazy_meter_schedules_no_events(self):
        sim = Simulator()
        machine = Machine(sim, ExternalSupply())
        machine.attach(PowerComponent("base", {"on": 2.0}, "on"))
        meter = Multimeter(
            machine, rate_hz=600.0, monitor=SystemMonitor(machine)
        )
        meter.start()
        assert sim.peek() is None

    def test_eager_stop_leaves_no_live_tick(self):
        sim = Simulator()
        machine = Machine(sim, ExternalSupply())
        machine.attach(PowerComponent("base", {"on": 2.0}, "on"))
        meter = Multimeter(
            machine, rate_hz=10.0, monitor=SystemMonitor(machine), eager=True
        )
        meter.start()
        sim.run(until=0.55)
        meter.stop()
        sim.run()  # must terminate: the pending tick was cancelled
        assert sim.now == 0.55
        assert all(s.time <= 0.55 for s in meter.samples)
        assert meter.sample_count == 5

    @pytest.mark.parametrize("eager", [False, True])
    def test_start_after_stop_does_not_double_sample(self, eager):
        sim = Simulator()
        machine = Machine(sim, ExternalSupply())
        machine.attach(PowerComponent("base", {"on": 2.0}, "on"))
        meter = Multimeter(
            machine, rate_hz=10.0, monitor=SystemMonitor(machine), eager=eager
        )
        meter.start()
        sim.run(until=0.5)
        meter.stop()
        sim.run(until=1.0)
        meter.start()
        sim.run(until=1.5)
        meter.stop()
        times = [s.time for s in meter.samples]
        assert times == sorted(times)
        assert len(times) == len(set(times))
        # No samples land in the stopped window (0.5, 1.0].
        assert not [t for t in times if 0.5 < t <= 1.0]
        # Both windows contributed.
        assert [t for t in times if t <= 0.5]
        assert [t for t in times if t > 1.0]

    def test_stop_is_idempotent(self):
        _, _, meter, _ = scripted_run(False, seed=0)
        count = meter.sample_count
        meter.stop()
        meter.stop()
        assert meter.sample_count == count

    def test_lazy_stop_releases_journal_pin_on_read(self):
        _, machine, meter, _ = scripted_run(False, seed=0)
        # scripted_run stopped the meter; consuming the stream must
        # release the pin so the journal can compact again.
        meter.samples
        machine.energy_by_process
        assert len(machine.journal) <= 1

    def test_profile_requires_monitor(self):
        sim = Simulator()
        machine = Machine(sim, ExternalSupply())
        machine.attach(PowerComponent("base", {"on": 2.0}, "on"))
        meter = Multimeter(machine, rate_hz=10.0)
        with pytest.raises(CorrelationError):
            meter.profile()

    def test_midrun_reads_continue_consistently(self):
        sim, machine, meter, monitor = scripted_run(
            False, seed=2, until=1.0, stop=False
        )
        first = list(meter.samples)
        sim.run(until=3.0)
        meter.stop()
        full = meter.samples
        assert full[: len(first)] == first
        assert len(full) > len(first)
        _, _, eager_meter, _ = scripted_run(True, seed=2)
        assert full == eager_meter.samples
