"""Tests for the viceroy, upcalls, and the goal-directed controller."""

import pytest

from repro.core import (
    FidelityLadder,
    GoalDirectedController,
    Odyssey,
    Viceroy,
    Warden,
    WardenError,
)
from repro.hardware import Machine, ExternalSupply, PowerComponent, build_machine
from repro.powerscope import OnlinePowerMonitor
from repro.sim import Simulator, Timeline


class StubApp:
    """Adaptive app whose fidelity directly scales a power component.

    Lets controller tests use a machine whose draw responds to
    adaptation: each degrade step drops the app's component power.
    """

    def __init__(self, name, priority, component, watts_by_level):
        self.name = name
        self.priority = priority
        self.component = component
        self.watts_by_level = watts_by_level
        self.ladder = FidelityLadder(name, list(watts_by_level))
        self._apply()

    def _apply(self):
        self.component.set_state(self.ladder.current)

    def can_degrade(self):
        return not self.ladder.at_bottom

    def can_upgrade(self):
        return not self.ladder.at_top

    def degrade(self):
        level = self.ladder.degrade()
        self._apply()
        return level

    def upgrade(self):
        level = self.ladder.upgrade()
        self._apply()
        return level

    def fidelity_level(self):
        return self.ladder.current

    def fidelity_normalized(self):
        return self.ladder.normalized()


def make_adaptive_rig(initial_energy, goal_seconds, levels=None, **kwargs):
    """Machine with one adaptive load + controller, ready to start."""
    levels = levels or {"low": 2.0, "mid": 5.0, "high": 8.0}
    sim = Simulator()
    machine = Machine(sim, ExternalSupply())
    machine.attach(PowerComponent("base", {"on": 2.0}, "on"))
    load = machine.attach(
        PowerComponent("load", dict(levels), list(levels)[-1])
    )
    timeline = Timeline()
    viceroy = Viceroy(sim, timeline=timeline)
    app = StubApp("app", 1, load, levels)
    viceroy.register_application(app)
    monitor = OnlinePowerMonitor(machine, period=0.1)
    controller = GoalDirectedController(
        viceroy, monitor,
        initial_energy=initial_energy,
        goal_seconds=goal_seconds,
        timeline=timeline,
        **kwargs,
    )
    return sim, machine, app, controller


class TestViceroy:
    def test_warden_registry(self):
        sim = Simulator()
        viceroy = Viceroy(sim)
        warden = viceroy.register_warden(Warden("video"))
        assert viceroy.warden_for("video") is warden

    def test_duplicate_warden_rejected(self):
        sim = Simulator()
        viceroy = Viceroy(sim)
        viceroy.register_warden(Warden("video"))
        with pytest.raises(WardenError):
            viceroy.register_warden(Warden("video"))

    def test_missing_warden_raises(self):
        with pytest.raises(WardenError):
            Viceroy(Simulator()).warden_for("ghost")

    def test_degrade_upcall_logged_with_time_and_level(self):
        sim = Simulator(start_time=7.0)
        machine = Machine(sim, ExternalSupply())
        comp = machine.attach(PowerComponent("load", {"a": 1.0, "b": 2.0}, "b"))
        viceroy = Viceroy(sim)
        viceroy.register_application(StubApp("app", 1, comp, {"a": 1.0, "b": 2.0}))
        upcall = viceroy.degrade_once()
        assert upcall.time == 7.0
        assert upcall.kind == "degrade"
        assert upcall.application == "app"
        assert upcall.new_level == "a"
        assert viceroy.adaptation_counts() == {"app": 1}

    def test_degrade_returns_none_when_exhausted(self):
        sim = Simulator()
        machine = Machine(sim, ExternalSupply())
        comp = machine.attach(PowerComponent("load", {"a": 1.0}, "a"))
        viceroy = Viceroy(sim)
        viceroy.register_application(StubApp("app", 1, comp, {"a": 1.0}))
        assert viceroy.degrade_once() is None

    def test_fidelity_recorded_on_timeline(self):
        sim = Simulator()
        timeline = Timeline()
        machine = Machine(sim, ExternalSupply())
        comp = machine.attach(PowerComponent("load", {"a": 1.0, "b": 2.0}, "b"))
        viceroy = Viceroy(sim, timeline=timeline)
        viceroy.register_application(StubApp("app", 1, comp, {"a": 1.0, "b": 2.0}))
        viceroy.degrade_once()
        records = timeline.category("fidelity")
        assert len(records) == 2  # registration + degrade
        assert records[-1].value[0] == "a"


class TestGoalDirectedController:
    def test_infeasible_goal_rejected_upfront(self):
        with pytest.raises(ValueError):
            make_adaptive_rig(initial_energy=100.0, goal_seconds=0.0)

    def test_plentiful_energy_keeps_full_fidelity(self):
        # 10 W high fidelity for 60 s = 600 J; give 1000 J.
        sim, machine, app, controller = make_adaptive_rig(1000.0, 60.0)
        controller.start()
        sim.run(until=61.0)
        assert controller.goal_reached
        assert app.ladder.current == "high"

    def test_scarce_energy_forces_degradation(self):
        # 10 W for 60 s needs 600 J; give only 350 J -> must degrade.
        sim, machine, app, controller = make_adaptive_rig(350.0, 60.0)
        controller.start()
        sim.run(until=61.0)
        assert controller.goal_reached
        assert app.ladder.index < app.ladder.levels.index("high")
        # Odyssey's belief must not be exhausted before the goal.
        assert controller.supply.residual > 0.0

    def test_goal_met_within_supply_across_range(self):
        """The headline property: the energy lasts for the duration."""
        for energy in (300.0, 400.0, 500.0):
            sim, machine, app, controller = make_adaptive_rig(energy, 60.0)
            controller.start()
            sim.run(until=61.0)
            assert controller.goal_reached
            assert controller.supply.residual > 0.0, f"failed at {energy} J"

    def test_supply_belief_tracks_machine_ground_truth(self):
        sim, machine, app, controller = make_adaptive_rig(1000.0, 60.0)
        controller.start()
        sim.run(until=30.0)
        machine.advance()
        believed = controller.supply.consumed
        assert believed == pytest.approx(machine.energy_total, rel=0.02)

    def test_upgrades_rate_capped(self):
        # Start at lowest fidelity with abundant energy: upgrades should
        # be spaced at least upgrade_min_interval apart.
        sim, machine, app, controller = make_adaptive_rig(
            10_000.0, 120.0, upgrade_min_interval=15.0
        )
        app.ladder.set_level("low")
        app._apply()
        controller.start()
        sim.run(until=121.0)
        upgrades = [u for u in controller.viceroy.upcalls if u.kind == "upgrade"]
        assert upgrades, "expected at least one upgrade"
        gaps = [b.time - a.time for a, b in zip(upgrades, upgrades[1:])]
        assert all(gap >= 15.0 - 1e-9 for gap in gaps)

    def test_infeasible_duration_reported(self):
        # Even lowest fidelity (4 W total) cannot last 60 s on 30 J.
        alerts = []
        sim, machine, app, controller = make_adaptive_rig(30.0, 60.0)
        controller.on_infeasible = lambda t, demand, residual: alerts.append(t)
        controller.start()
        sim.run(until=20.0)
        assert controller.infeasible_reported
        assert alerts and alerts[0] < 10.0  # alerted early

    def test_extend_goal_moves_deadline(self):
        sim, machine, app, controller = make_adaptive_rig(10_000.0, 60.0)
        controller.start()
        sim.run(until=30.0)
        controller.extend_goal(30.0)
        sim.run(until=61.0)
        assert not controller.goal_reached
        sim.run(until=91.0)
        assert controller.goal_reached

    def test_extend_goal_rejects_negative(self):
        sim, machine, app, controller = make_adaptive_rig(100.0, 60.0)
        with pytest.raises(ValueError):
            controller.extend_goal(-5.0)

    def test_timeline_records_supply_and_demand_series(self):
        sim, machine, app, controller = make_adaptive_rig(1000.0, 60.0)
        controller.start()
        sim.run(until=61.0)
        times, supply = controller.timeline.series("energy", "supply")
        _times, demand = controller.timeline.series("energy", "demand")
        assert len(times) > 50
        assert supply[0] > supply[-1]  # monotone drain
        # Demand tracks supply closely once adaptation settles (Fig 19).
        assert demand[-1] <= supply[-1] * 1.1 + 1.0

    def test_summary_fields(self):
        sim, machine, app, controller = make_adaptive_rig(1000.0, 60.0)
        controller.start()
        sim.run(until=61.0)
        summary = controller.summary()
        assert summary["goal_reached"] is True
        assert "app" in summary["adaptations"]
        assert summary["decisions"] > 0


class TestOdysseyFacade:
    def test_facade_wires_controller(self):
        sim = Simulator()
        machine = build_machine(sim)
        odyssey = Odyssey(machine)
        odyssey.set_goal(initial_energy=12_000.0, goal_seconds=60.0)
        odyssey.start()
        sim.run(until=61.0)
        assert odyssey.summary()["goal_reached"]

    def test_start_without_goal_raises(self):
        sim = Simulator()
        odyssey = Odyssey(build_machine(sim))
        with pytest.raises(RuntimeError):
            odyssey.start()

    def test_summary_without_controller_raises(self):
        sim = Simulator()
        odyssey = Odyssey(build_machine(sim))
        with pytest.raises(RuntimeError):
            odyssey.summary()

    def test_overhead_component_modeled_when_requested(self):
        sim = Simulator()
        machine = build_machine(sim)
        Odyssey(machine, model_overhead=True)
        assert "odyssey-overhead" in machine
        # Paper: overhead is only 4 mW — 0.25% of background power.
        assert machine["odyssey-overhead"].power < 0.015
