"""Unit tests for the analysis helpers."""

import math

import pytest

from repro.analysis import (
    Range,
    fit_linear,
    normalize_to_baseline,
    range_across_objects,
    render_table,
    summarize,
    t_quantile,
)


class TestSummarize:
    def test_single_value(self):
        stats = summarize([5.0])
        assert stats.mean == 5.0
        assert stats.stdev == 0.0
        assert stats.ci90 == 0.0
        assert stats.n == 1

    def test_known_values(self):
        stats = summarize([10.0, 12.0, 14.0])
        assert stats.mean == pytest.approx(12.0)
        assert stats.stdev == pytest.approx(2.0)
        assert stats.n == 3

    def test_ci_uses_t_distribution(self):
        stats = summarize([10.0, 12.0, 14.0])
        expected_half = t_quantile(2) * 2.0 / math.sqrt(3)
        assert stats.ci90 == pytest.approx(expected_half)

    def test_low_high_bracket_mean(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.low < stats.mean < stats.high

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_format(self):
        text = f"{summarize([1.0, 2.0]):.2f}"
        assert "±" in text

    def test_t_quantile_decreases_with_dof(self):
        assert t_quantile(1) > t_quantile(5) > t_quantile(50)

    def test_t_quantile_invalid_dof(self):
        with pytest.raises(ValueError):
            t_quantile(0)


class TestLinearFit:
    def test_perfect_line(self):
        fit = fit_linear([0, 5, 10, 20], [10, 35, 60, 110])
        assert fit.slope == pytest.approx(5.0)
        assert fit.intercept == pytest.approx(10.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_linear([0, 10], [1.0, 21.0])
        assert fit.predict(5.0) == pytest.approx(11.0)

    def test_noisy_data_r_squared_below_one(self):
        fit = fit_linear([0, 5, 10, 20], [10, 40, 55, 112])
        assert 0.9 < fit.r_squared < 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            fit_linear([1, 2], [1.0])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            fit_linear([1], [1.0])

    def test_identical_x_rejected(self):
        with pytest.raises(ValueError):
            fit_linear([2, 2, 2], [1.0, 2.0, 3.0])

    def test_flat_line(self):
        fit = fit_linear([0, 1, 2], [5.0, 5.0, 5.0])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == 1.0


class TestNormalize:
    TABLE = {
        "baseline": {"a": 100.0, "b": 200.0},
        "improved": {"a": 80.0, "b": 120.0},
    }

    def test_baseline_normalizes_to_one(self):
        normalized = normalize_to_baseline(self.TABLE)
        assert normalized["baseline"] == {"a": 1.0, "b": 1.0}

    def test_other_rows_are_fractions(self):
        normalized = normalize_to_baseline(self.TABLE)
        assert normalized["improved"]["a"] == pytest.approx(0.8)
        assert normalized["improved"]["b"] == pytest.approx(0.6)

    def test_missing_baseline_config_rejected(self):
        with pytest.raises(KeyError):
            normalize_to_baseline({"x": {"a": 1.0}})

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalize_to_baseline(
                {"baseline": {"a": 0.0}, "x": {"a": 1.0}}
            )

    def test_range_across_objects(self):
        normalized = normalize_to_baseline(self.TABLE)
        band = range_across_objects(normalized["improved"])
        assert band.low == pytest.approx(0.6)
        assert band.high == pytest.approx(0.8)

    def test_range_empty_rejected(self):
        with pytest.raises(ValueError):
            range_across_objects({})

    def test_range_formatting_and_predicates(self):
        band = Range(0.31, 0.76)
        assert f"{band:.2f}" == "0.31-0.76"
        assert band.contains(0.5)
        assert not band.contains(0.9)
        assert band.overlaps(Range(0.7, 0.9))
        assert not band.overlaps(Range(0.8, 0.9))


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["Name", "Value"],
            [["alpha", "1"], ["beta-long", "22"]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "Name" in lines[1] and "Value" in lines[1]
        assert lines[2].startswith("---")
        assert "alpha" in text and "beta-long" in text

    def test_mismatched_row_width_rejected(self):
        with pytest.raises(ValueError):
            render_table(["A", "B"], [["only-one"]])

    def test_numeric_cells_stringified(self):
        text = render_table(["X"], [[3.14159]])
        assert "3.14159" in text
