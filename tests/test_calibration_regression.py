"""Calibration regression net.

Pins the reproduction's headline percentages to their calibrated
values (generous tolerances).  If a model change moves any of these,
the change is either a deliberate recalibration — update the pins and
EXPERIMENTS.md together — or an accidental regression.
"""

import pytest

from repro.experiments import (
    measure_map,
    measure_speech,
    measure_video,
    measure_web,
)
from repro.hardware import build_machine
from repro.sim import Simulator
from repro.workloads import IMAGES, MAPS, UTTERANCES
from repro.workloads.videos import VideoClip


def saving(measured, reference):
    return 1.0 - measured / reference


class TestPowerPins:
    def test_full_on_power(self):
        machine = build_machine(Simulator())
        assert machine.power == pytest.approx(10.29, abs=0.02)

    def test_background_power(self):
        from repro.hardware import WaveLan

        machine = build_machine(Simulator())
        machine["display"].dim()
        machine["disk"].standby()
        machine["wavelan"].set_resting_state(WaveLan.STANDBY)
        assert machine.power == pytest.approx(5.60, abs=0.02)


class TestVideoPins:
    """Figure 6 bands as measured by the frozen calibration."""

    @pytest.fixture(scope="class")
    def energies(self):
        clip = VideoClip("pin", 20.0, 12.0, 16_250)
        return {
            c: measure_video(clip, c)
            for c in ("baseline", "hw-only", "premiere-c",
                      "reduced-window", "combined")
        }

    def test_hw_only_band(self, energies):
        value = saving(energies["hw-only"], energies["baseline"])
        assert value == pytest.approx(0.06, abs=0.02)

    def test_premiere_c_band(self, energies):
        value = saving(energies["premiere-c"], energies["hw-only"])
        assert value == pytest.approx(0.145, abs=0.025)

    def test_reduced_window_band(self, energies):
        value = saving(energies["reduced-window"], energies["hw-only"])
        assert value == pytest.approx(0.175, abs=0.025)

    def test_combined_vs_baseline_band(self, energies):
        value = saving(energies["combined"], energies["baseline"])
        assert value == pytest.approx(0.36, abs=0.03)


class TestSpeechPins:
    @pytest.fixture(scope="class")
    def energies(self):
        utt = UTTERANCES[2]
        return {
            c: measure_speech(utt, c)
            for c in ("baseline", "hw-only", "reduced", "remote",
                      "hybrid", "hybrid-reduced")
        }

    def test_hw_only_band(self, energies):
        value = saving(energies["hw-only"], energies["baseline"])
        assert value == pytest.approx(0.345, abs=0.02)

    def test_reduced_band(self, energies):
        value = saving(energies["reduced"], energies["hw-only"])
        assert value == pytest.approx(0.40, abs=0.04)

    def test_remote_band(self, energies):
        value = saving(energies["remote"], energies["hw-only"])
        assert value == pytest.approx(0.35, abs=0.05)

    def test_hybrid_band(self, energies):
        value = saving(energies["hybrid"], energies["hw-only"])
        assert value == pytest.approx(0.47, abs=0.05)

    def test_combined_band(self, energies):
        value = saving(energies["hybrid-reduced"], energies["baseline"])
        assert value == pytest.approx(0.71, abs=0.04)


class TestMapPins:
    def test_hw_only_band(self):
        city = MAPS[2]  # boston
        base = measure_map(city, "baseline")
        pm = measure_map(city, "hw-only")
        assert saving(pm, base) == pytest.approx(0.17, abs=0.03)

    def test_lowest_band(self):
        city = MAPS[0]  # san-jose: strongest filters
        pm = measure_map(city, "hw-only")
        lowest = measure_map(city, "crop-secondary")
        assert saving(lowest, pm) == pytest.approx(0.57, abs=0.06)


class TestWebPins:
    def test_hw_only_band(self):
        image = IMAGES[0]
        base = measure_web(image, "baseline")
        pm = measure_web(image, "hw-only")
        assert saving(pm, base) == pytest.approx(0.24, abs=0.03)

    def test_lowest_band(self):
        image = IMAGES[0]
        pm = measure_web(image, "hw-only")
        lowest = measure_web(image, "jpeg-5")
        assert saving(lowest, pm) == pytest.approx(0.14, abs=0.04)

    def test_tiny_image_no_benefit(self):
        image = IMAGES[3]  # 110 B
        pm = measure_web(image, "hw-only")
        lowest = measure_web(image, "jpeg-5")
        assert saving(lowest, pm) == pytest.approx(0.0, abs=0.02)
