"""Tests for the original Odyssey dimension: network-bandwidth
adaptation via resource expectations (paper Section 2.2)."""

import pytest

from repro.core import (
    ExpectationError,
    ExpectationMonitor,
    ExpectationRegistry,
    ResourceWindow,
)
from repro.experiments import build_rig
from repro.net import BandwidthEstimator, DisconnectedError
from repro.sim import Simulator
from repro.workloads.videos import VideoClip


def fast_clip():
    return VideoClip("bw-clip", 20.0, 12.0, 16_250)


class TestResourceWindow:
    def test_contains(self):
        window = ResourceWindow(1e6, 2e6)
        assert window.contains(1.5e6)
        assert not window.contains(0.5e6)
        assert not window.contains(2.5e6)

    def test_boundaries_inclusive(self):
        window = ResourceWindow(1.0, 2.0)
        assert window.contains(1.0) and window.contains(2.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ExpectationError):
            ResourceWindow(2.0, 1.0)
        with pytest.raises(ExpectationError):
            ResourceWindow(-1.0, 1.0)


class TestExpectationRegistry:
    def test_upcall_on_violation_and_window_update(self):
        registry = ExpectationRegistry("bandwidth")
        calls = []

        def upcall(level, window):
            calls.append((level, window))
            return ResourceWindow(0.0, level * 1.2)

        registry.register("video", ResourceWindow(1e6, 3e6), upcall)
        assert registry.check(2e6) == []          # inside window
        assert registry.check(0.5e6) == ["video"]  # violation
        assert calls and calls[0][0] == 0.5e6
        # The upcall's new window is now in force.
        assert registry.window_of("video").high == pytest.approx(0.6e6)
        assert registry.check(0.55e6) == []

    def test_upcall_returning_none_keeps_window(self):
        registry = ExpectationRegistry("bandwidth")
        registry.register("app", ResourceWindow(1.0, 2.0), lambda l, w: None)
        registry.check(5.0)
        assert registry.window_of("app") == ResourceWindow(1.0, 2.0)

    def test_upcall_returning_junk_rejected(self):
        registry = ExpectationRegistry("bandwidth")
        registry.register("app", ResourceWindow(1.0, 2.0), lambda l, w: 42)
        with pytest.raises(ExpectationError):
            registry.check(5.0)

    def test_non_window_registration_rejected(self):
        registry = ExpectationRegistry("bandwidth")
        with pytest.raises(ExpectationError):
            registry.register("app", (1.0, 2.0), lambda l, w: None)

    def test_unregister(self):
        registry = ExpectationRegistry("bandwidth")
        registry.register("app", ResourceWindow(1.0, 2.0), lambda l, w: None)
        registry.unregister("app")
        assert registry.check(5.0) == []
        assert registry.window_of("app") is None


class TestBandwidthEstimator:
    def test_estimates_link_bandwidth_from_transfers(self):
        sim = Simulator()
        rig = build_rig()
        estimator = BandwidthEstimator(rig.link)

        def fetch():
            yield from rig.link.recv(250_000)  # 1 s at 2 Mb/s

        proc = rig.sim.spawn(fetch())
        rig.run_until_complete(proc)
        assert estimator.has_estimate
        # Latency makes the observed goodput slightly below nominal.
        assert estimator.estimate_bps == pytest.approx(2e6, rel=0.05)

    def test_tiny_transfers_ignored(self):
        rig = build_rig()
        estimator = BandwidthEstimator(rig.link, min_sample_bytes=512)

        def fetch():
            yield from rig.link.recv(100)

        proc = rig.sim.spawn(fetch())
        rig.run_until_complete(proc)
        assert not estimator.has_estimate

    def test_ewma_tracks_bandwidth_change(self):
        rig = build_rig()
        estimator = BandwidthEstimator(rig.link, gain=0.5)

        def fetches():
            yield from rig.link.recv(250_000)
            rig.link.set_bandwidth(1e6)
            for _ in range(8):
                yield from rig.link.recv(250_000)

        proc = rig.sim.spawn(fetches())
        rig.run_until_complete(proc)
        assert estimator.estimate_bps == pytest.approx(1e6, rel=0.1)

    def test_invalid_gain_rejected(self):
        rig = build_rig()
        with pytest.raises(ValueError):
            BandwidthEstimator(rig.link, gain=0.0)

    def test_reset(self):
        rig = build_rig()
        estimator = BandwidthEstimator(rig.link)
        estimator._on_transfer(250_000, 1.0)
        estimator.reset()
        assert not estimator.has_estimate
        assert estimator.samples == 0


class TestVideoBandwidthAdaptation:
    def test_fidelity_for_bandwidth_picks_fitting_track(self):
        rig = build_rig()
        player = rig.apps["video"]
        clip = fast_clip()
        full = clip.bitrate_bps("baseline")
        assert player.fidelity_for_bandwidth(clip, full * 1.2) == "baseline"
        assert player.fidelity_for_bandwidth(clip, full * 0.8) == "premiere-b"
        assert player.fidelity_for_bandwidth(clip, full * 0.5) == "premiere-c"
        assert player.fidelity_for_bandwidth(clip, 1.0) == "premiere-c"

    def test_bandwidth_window_brackets_current_level(self):
        rig = build_rig()
        player = rig.apps["video"]
        clip = fast_clip()
        window = player.bandwidth_window(clip, "premiere-b")
        assert window.low < clip.bitrate_bps("premiere-b") / 0.85
        assert window.high > window.low
        # The bottom level tolerates any low bandwidth.
        bottom = player.bandwidth_window(clip, "premiere-c")
        assert bottom.low == 0.0
        # The top level tolerates any high bandwidth.
        top = player.bandwidth_window(clip, "baseline")
        assert top.high == float("inf")

    def test_end_to_end_bandwidth_drop_degrades_video(self):
        """The paper's §2.2 scenario: bandwidth drops mid-stream and the
        video player switches to a lossier track via upcall."""
        rig = build_rig()
        player = rig.apps["video"]
        clip = fast_clip()
        estimator = BandwidthEstimator(rig.link, gain=0.6)
        registry = ExpectationRegistry("bandwidth")
        registry.register(
            "video",
            player.bandwidth_window(clip, "baseline"),
            player.bandwidth_upcall(clip),
        )
        monitor = ExpectationMonitor(
            rig.sim, registry, lambda: estimator.estimate_bps, period=0.5
        )
        monitor.start()
        proc = rig.sim.spawn(player.play(clip))
        # Bandwidth collapses to 0.9 Mb/s five seconds in.
        rig.sim.schedule(5.0, lambda t: rig.link.set_bandwidth(0.9e6))
        rig.run_until_complete(proc)
        assert player.fidelity == "premiere-c"
        assert registry.upcalls_delivered >= 1

    def test_bandwidth_recovery_upgrades_video(self):
        rig = build_rig()
        player = rig.apps["video"]
        clip = fast_clip()
        player.set_fidelity("premiere-c")
        estimator = BandwidthEstimator(rig.link, gain=0.6)
        registry = ExpectationRegistry("bandwidth")
        registry.register(
            "video",
            player.bandwidth_window(clip, "premiere-c"),
            player.bandwidth_upcall(clip),
        )
        monitor = ExpectationMonitor(
            rig.sim, registry, lambda: estimator.estimate_bps, period=0.5
        )
        monitor.start()
        proc = rig.sim.spawn(player.play(clip))
        rig.run_until_complete(proc)
        # Plenty of bandwidth for the premiere-c stream -> upcall
        # upgraded the player toward the baseline track.
        assert player.fidelity in ("baseline", "premiere-b")


class TestDisconnection:
    def test_transfer_on_downed_link_raises(self):
        rig = build_rig()
        rig.link.set_up(False)

        def fetch():
            yield from rig.link.recv(1000)

        proc = rig.sim.spawn(fetch())
        with pytest.raises(DisconnectedError):
            rig.run_until_complete(proc)

    def test_speech_falls_back_to_local_when_disconnected(self):
        """Paper §3.4: local recognition is unavoidable when
        disconnected."""
        from repro.workloads import UTTERANCES

        rig = build_rig(speech_mode="remote", display_policy="off")
        rig.link.set_up(False)
        recognizer = rig.apps["speech"]
        proc = rig.sim.spawn(recognizer.recognize(UTTERANCES[0]))
        rig.run_until_complete(proc)
        assert recognizer.fallbacks_to_local == 1
        assert rig.link.bytes_transferred == 0

    def test_speech_uses_network_again_after_reconnect(self):
        from repro.workloads import UTTERANCES

        rig = build_rig(speech_mode="remote", display_policy="off")
        rig.link.set_up(False)
        recognizer = rig.apps["speech"]

        def session():
            yield from recognizer.recognize(UTTERANCES[0])
            rig.link.set_up(True)
            yield from recognizer.recognize(UTTERANCES[0])

        proc = rig.sim.spawn(session())
        rig.run_until_complete(proc)
        assert recognizer.fallbacks_to_local == 1
        assert rig.link.bytes_transferred > 0

    def test_recommend_mode_policy(self):
        rig = build_rig(speech_mode="remote", display_policy="off")
        recognizer = rig.apps["speech"]
        assert recognizer.recommend_mode(0.9) == "local"
        assert recognizer.recommend_mode(0.4) == "hybrid"
        assert recognizer.recommend_mode(0.05) == "remote"
        rig.link.set_up(False)
        assert recognizer.recommend_mode(0.4) == "local"

    def test_set_mode_validation(self):
        rig = build_rig(display_policy="off")
        recognizer = rig.apps["speech"]
        recognizer.set_mode("hybrid")
        assert recognizer.mode == "hybrid"
        with pytest.raises(ValueError):
            recognizer.set_mode("clairvoyance")


class TestExpectationMonitor:
    def test_invalid_period_rejected(self):
        registry = ExpectationRegistry("x")
        with pytest.raises(ExpectationError):
            ExpectationMonitor(Simulator(), registry, lambda: 1.0, period=0.0)

    def test_none_level_skips_check(self):
        sim = Simulator()
        registry = ExpectationRegistry("x")
        monitor = ExpectationMonitor(sim, registry, lambda: None, period=1.0)
        monitor.start()
        sim.run(until=5.0)
        assert monitor.checks == 0

    def test_stop_halts_checks(self):
        sim = Simulator()
        registry = ExpectationRegistry("x")
        monitor = ExpectationMonitor(sim, registry, lambda: 1.0, period=1.0)
        monitor.start()
        sim.run(until=3.5)
        monitor.stop()
        sim.run(until=10.0)
        assert monitor.checks == 3
