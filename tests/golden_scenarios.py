"""Golden-trace scenario definitions, shared by the regression tests
(``tests/test_trace_golden.py``) and the re-blessing script
(``scripts/regen_goldens.py``).

Each scenario runs one short experiment under a ``core``-only tracer
and reduces it to its decision spine (see :mod:`repro.obs.diff`).  The
committed goldens under ``tests/goldens/`` are the canonical spines;
any change to controller behaviour — thresholds, hysteresis, priority
order, decision cadence — shows up as a divergence window and fails
the suite until intentionally re-blessed.

Scenario parameters are pinned literals (not derived at runtime) so a
change to ``derive_goals`` cannot silently move every golden at once.
"""

from __future__ import annotations

import os

from repro.obs import Tracer, installed
from repro.obs.diff import decision_spine

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

#: Pinned at energy 3000 J: the 197 s goal sits mid-bracket between the
#: highest-fidelity (~183 s) and lowest-fidelity (~219 s) runtimes, so
#: the controller both degrades and upgrades during the run.
GOAL_SECONDS = 197.0
GOAL_ENERGY_J = 3000.0
BURSTY_SEED = 3
BURSTY_GOAL_SECONDS = 240.0


def _run_goal(**controller_kwargs):
    from repro.experiments import run_goal_experiment

    run_goal_experiment(GOAL_SECONDS, initial_energy=GOAL_ENERGY_J,
                        **controller_kwargs)


def _run_goal_default():
    _run_goal()


def _run_goal_hysteresis_off():
    _run_goal(variable_fraction=0.0, constant_fraction=0.0)


def _run_bursty():
    from repro.experiments import run_bursty_experiment

    run_bursty_experiment(BURSTY_SEED, BURSTY_GOAL_SECONDS)


SCENARIOS = {
    "goal-default": _run_goal_default,
    "goal-hysteresis-off": _run_goal_hysteresis_off,
    "bursty-supply": _run_bursty,
}


def golden_path(name):
    return os.path.join(GOLDEN_DIR, f"{name}.jsonl")


def run_scenario(name):
    """Run one scenario and return its decision spine."""
    tracer = Tracer(categories={"core"})
    with installed(tracer):
        SCENARIOS[name]()
    tracer.flush()
    return decision_spine(tracer.events)
