"""Golden-trace scenario definitions, shared by the regression tests
(``tests/test_trace_golden.py``) and the re-blessing script
(``scripts/regen_goldens.py``).

Each scenario runs one short experiment under a ``core``-only tracer
and reduces it to its decision spine (see :mod:`repro.obs.diff`).  The
committed goldens under ``tests/goldens/`` are the canonical spines;
any change to controller behaviour — thresholds, hysteresis, priority
order, decision cadence — shows up as a divergence window and fails
the suite until intentionally re-blessed.

Scenario parameters are pinned literals (not derived at runtime) so a
change to ``derive_goals`` cannot silently move every golden at once.
"""

from __future__ import annotations

import os

from repro.obs import Tracer, installed
from repro.obs.diff import decision_spine

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

#: Pinned at energy 3000 J: the 197 s goal sits mid-bracket between the
#: highest-fidelity (~183 s) and lowest-fidelity (~219 s) runtimes, so
#: the controller both degrades and upgrades during the run.
GOAL_SECONDS = 197.0
GOAL_ENERGY_J = 3000.0
BURSTY_SEED = 3
BURSTY_GOAL_SECONDS = 240.0
#: The snapshot-capable pulse rig, pinned at its mid-bracket sizing
#: (full fidelity survives ~249 s, floor ~338 s; see
#: ``repro.snapshot.scenario``).
PULSE_GOAL_SECONDS = 290.0
PULSE_ENERGY_J = 2400.0
LOOKAHEAD_HORIZON_S = 12.0


def _run_goal(**controller_kwargs):
    from repro.experiments import run_goal_experiment

    run_goal_experiment(GOAL_SECONDS, initial_energy=GOAL_ENERGY_J,
                        **controller_kwargs)


def _run_goal_default():
    _run_goal()


def _run_goal_hysteresis_off():
    _run_goal(variable_fraction=0.0, constant_fraction=0.0)


def _run_bursty():
    from repro.experiments import run_bursty_experiment

    run_bursty_experiment(BURSTY_SEED, BURSTY_GOAL_SECONDS)


def _run_pulse():
    from repro.snapshot.scenario import run_pulse_goal

    run_pulse_goal(goal_seconds=PULSE_GOAL_SECONDS,
                   initial_energy=PULSE_ENERGY_J)


def _run_pulse_lookahead():
    from repro.snapshot.scenario import run_pulse_goal

    run_pulse_goal(goal_seconds=PULSE_GOAL_SECONDS,
                   initial_energy=PULSE_ENERGY_J,
                   lookahead=True, horizon=LOOKAHEAD_HORIZON_S)


SCENARIOS = {
    "goal-default": _run_goal_default,
    "goal-hysteresis-off": _run_goal_hysteresis_off,
    "bursty-supply": _run_bursty,
    "goal-pulse": _run_pulse,
    "goal-lookahead": _run_pulse_lookahead,
}


def golden_path(name):
    return os.path.join(GOLDEN_DIR, f"{name}.jsonl")


def run_scenario(name):
    """Run one scenario and return its decision spine."""
    tracer = Tracer(categories={"core"})
    with installed(tracer):
        SCENARIOS[name]()
    tracer.flush()
    return decision_spine(tracer.events)


# ----------------------------------------------------------------------
# Energy-signature goldens: per-phase joule vectors over the spine
# ----------------------------------------------------------------------
#: Scenarios with blessed ``*.sig.json`` energy signatures.  The
#: lookahead scenario is included: branch vetting forks stamp a
#: ``branch`` id on their power spans and ``power_spans`` folds the
#: trunk only, so the signature is clean even when forks trace.
SIGNATURE_SCENARIOS = ("goal-default", "goal-hysteresis-off",
                       "bursty-supply", "goal-pulse", "goal-lookahead")


def signature_path(name):
    return os.path.join(GOLDEN_DIR, f"{name}.sig.json")


def run_scenario_events(name):
    """Run one scenario and return its raw trace events.

    Signatures need the ``power`` spans for joule folding and the
    ``workload`` phase instants for segmentation on top of the ``core``
    spine the plain goldens use.
    """
    tracer = Tracer(categories={"core", "power", "workload"})
    with installed(tracer):
        SCENARIOS[name]()
    tracer.flush()
    return list(tracer.events)


def run_scenario_signature(name):
    """Run one scenario and compute its energy signature."""
    from repro.obs.signature import compute_signature

    return compute_signature(run_scenario_events(name))


# ----------------------------------------------------------------------
# Policy-matrix golden: the N-way diff matrix document
# ----------------------------------------------------------------------
#: Filename (without extension) of the policy-matrix golden.
MATRIX_GOLDEN = "policy-matrix"
#: Pinned at a short mid-bracket sizing so the sweep stays fast while
#: every candidate still both adapts and diverges from the baseline.
MATRIX_GOAL_SECONDS = 120.0
MATRIX_ENERGY_J = 1000.0
#: Hysteresis on/off crossed with two lookahead horizons: four
#: candidates whose spines all differ from the default baseline.
MATRIX_CANDIDATES = (
    "hysteresis=off",
    "lookahead=on,horizon=6",
    "lookahead=on,horizon=12",
    "hysteresis=off,lookahead=on,horizon=6",
)
MATRIX_SCENARIO = {
    "goal_seconds": MATRIX_GOAL_SECONDS,
    "initial_energy": MATRIX_ENERGY_J,
}


def matrix_golden_path():
    return os.path.join(GOLDEN_DIR, f"{MATRIX_GOLDEN}.json")


def matrix_campaign_spec():
    """The pinned policy-matrix campaign the golden is blessed from."""
    from repro.fleet.diffmatrix import policy_matrix_campaign

    return policy_matrix_campaign(MATRIX_CANDIDATES, baseline={},
                                  scenario=dict(MATRIX_SCENARIO),
                                  name=MATRIX_GOLDEN)


def run_matrix_scenario(jobs=1, cache=None):
    """Run the pinned matrix campaign; return the ``PolicyMatrix``.

    ``jobs``/``cache`` let the golden test assert the document is
    byte-identical across serial, parallel, and cache-warm drivers.
    """
    from repro.fleet.diffmatrix import matrix_from_result
    from repro.fleet.runner import FleetRunner

    runner = FleetRunner(jobs=jobs, cache=cache)
    return matrix_from_result(runner.run(matrix_campaign_spec()))


# ----------------------------------------------------------------------
# Fleet-matrix golden: per-device x per-policy robustness over a
# generated heterogeneous fleet
# ----------------------------------------------------------------------
FLEET_MATRIX_GOLDEN = "fleet-matrix"
#: Fleet sizing pinned by the acceptance criterion: 4 generated
#: devices at seed 7, the default policy grid, on the same short
#: mid-bracket scenario the policy matrix uses.
FLEET_SIZE = 4
FLEET_SEED = 7
FLEET_CANDIDATES = (
    "hysteresis=on,lookahead=off",
    "hysteresis=off,lookahead=off",
    "hysteresis=on,lookahead=on",
    "hysteresis=off,lookahead=on",
)
FLEET_SCENARIO = {
    "goal_seconds": MATRIX_GOAL_SECONDS,
    "initial_energy": MATRIX_ENERGY_J,
}


def fleet_matrix_golden_path():
    return os.path.join(GOLDEN_DIR, f"{FLEET_MATRIX_GOLDEN}.json")


def fleet_matrix_campaign_spec():
    """The pinned fleet-matrix campaign the golden is blessed from."""
    from repro.devices import fleet_matrix_campaign, generate_fleet

    return fleet_matrix_campaign(
        generate_fleet(FLEET_SIZE, FLEET_SEED), FLEET_CANDIDATES,
        baseline={}, scenario=dict(FLEET_SCENARIO),
        name=FLEET_MATRIX_GOLDEN,
    )


def run_fleet_matrix_scenario(jobs=1, cache=None):
    """Run the pinned fleet campaign; return the ``FleetMatrix``."""
    from repro.devices import fleet_from_result
    from repro.fleet.runner import FleetRunner

    runner = FleetRunner(jobs=jobs, cache=cache)
    return fleet_from_result(runner.run(fleet_matrix_campaign_spec()))


# ----------------------------------------------------------------------
# Campaign golden: task ordering + per-task retry counts
# ----------------------------------------------------------------------
#: Filename (without extension) of the campaign outcome golden.
CAMPAIGN_GOLDEN = "campaign-demo"


def campaign_ok(x):
    """A task that succeeds on the first attempt."""
    return {"x": x}


def campaign_flaky(marker):
    """Fails once, then succeeds: the retry path, deterministically.

    The first attempt writes ``marker`` and raises; the retry sees the
    file and succeeds — two attempts, every run, no randomness.
    """
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        raise RuntimeError("transient failure (first attempt)")
    return {"recovered": True}


def campaign_doomed():
    """Fails every attempt: exhausts the retry budget."""
    raise RuntimeError("permanent failure")


def run_campaign_scenario():
    """Run the demo campaign; return ``[{id, status, attempts}, ...]``.

    The record is the campaign-order outcome spine: which tasks ran,
    what they resolved to, and how many attempts each took.  Changes to
    the runner's ordering, retry, or failure-recording behaviour move
    this record and fail the golden.
    """
    import tempfile

    from repro.fleet.runner import FleetRunner
    from repro.fleet.spec import CampaignSpec, Task

    fn = "tests.golden_scenarios.campaign_{}"
    with tempfile.TemporaryDirectory() as tmp:
        marker = os.path.join(tmp, "flaky.marker")
        spec = CampaignSpec(name=CAMPAIGN_GOLDEN, tasks=[
            Task(id="ok/first", fn=fn.format("ok"), params={"x": 1}),
            Task(id="flaky/recovers", fn=fn.format("flaky"),
                 params={"marker": marker}),
            Task(id="ok/second", fn=fn.format("ok"), params={"x": 2}),
            Task(id="doomed/exhausts", fn=fn.format("doomed"), params={}),
        ])
        result = FleetRunner(jobs=1, retries=1, backoff_s=0.0).run(spec)
    return [
        {"id": r.task_id, "status": r.status, "attempts": r.attempts}
        for r in result.results
    ]
