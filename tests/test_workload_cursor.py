"""The resumable-cursor protocol: every workload snapshots mid-phase.

The acceptance bar from the signature work: all four Section 5
workloads must round-trip through snapshot capture/restore *mid-phase*
with byte-identical traces.  Two levels of identity are checked:

* **Payload identity** at item-begin instants — the machine advanced
  at that exact instant, so the fork's energy accumulators replay the
  parent's float additions term for term.
* **Trace identity** at *arbitrary* capture instants — energy totals
  may differ by float associativity (the parent's capture splits one
  ``power += watts * dt`` addition in two), but every traced event is
  reproduced byte for byte.

Plus direct unit coverage of each ``__cursor__``/``__seek__`` carrier.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.spec import canonical_json
from repro.obs import Tracer
from repro.snapshot import Snapshot
from repro.snapshot.workload import (
    WORKLOAD_SCENARIOS,
    build_workload_scenario,
)
from repro.workloads import CursorError, WorkloadCursor
from repro.workloads.stochastic import BurstySchedule
from repro.workloads.thinktime import FixedThinkTime, RandomThinkTime
from repro.workloads.trace import SessionTrace, TraceError

CAPTURE_AT = 120.0

#: Jitter exercises the RandomThinkTime cursor (RNG replay on seek).
JITTER = 0.3


def _build(workload, **overrides):
    return build_workload_scenario(workload=workload, think_jitter=JITTER,
                                   **overrides)


def _final_payload(scenario):
    return canonical_json(Snapshot.capture(scenario.sim).payload)


def _dump(events):
    return json.dumps([event.to_dict() for event in events])


def _run_to_item_begin(scenario, at):
    """Step until the app begins a work item at or after ``at``."""
    app = scenario.apps[0]
    scenario.start()
    while True:
        was_in_phase = app.cursor.in_phase
        scenario.sim.step()
        if (scenario.sim.now >= at and app.cursor.in_phase
                and not was_in_phase):
            return scenario


# ----------------------------------------------------------------------
# end-to-end: mid-phase snapshot round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", WORKLOAD_SCENARIOS)
def test_mid_phase_payload_byte_identical(workload):
    """Captured at an item-begin instant (mid-phase: the cursor is
    inside the item), the fork's final state is byte-identical to the
    uninterrupted run's."""
    reference = _build(workload).start().run()
    parent = _run_to_item_begin(_build(workload), CAPTURE_AT)
    snapshot = Snapshot.capture(parent.sim)
    cursor_state = snapshot.payload["states"][f"app.{workload}"]["cursor"]
    assert cursor_state["in_phase"], "capture must land inside an item"
    fork = snapshot.fork().run()
    assert _final_payload(fork) == _final_payload(reference)


@pytest.mark.parametrize("workload", WORKLOAD_SCENARIOS)
def test_stitched_trace_byte_identical(workload):
    """Prefix (parent) + suffix (fork) traces equal the uninterrupted
    trace byte for byte, at a capture instant chosen with no regard
    for phase alignment."""
    tracer_ref = Tracer(clock=lambda: 0.0)
    _build(workload, tracer=tracer_ref).start().run()
    tracer_ref.flush()

    tracer_prefix = Tracer(clock=lambda: 0.0)
    parent = _build(workload, tracer=tracer_prefix).start()
    parent.run(until=CAPTURE_AT)
    snapshot = Snapshot.capture(parent.sim)
    prefix_len = len(tracer_prefix.events)

    tracer_suffix = Tracer(clock=lambda: 0.0)
    fork = snapshot.fork(tracer=tracer_suffix)
    # The fork's builder re-emits registration-time instants (fidelity
    # announcements at ts 0.0); the real suffix starts after them.
    skip = len(tracer_suffix.events)
    fork.run()
    tracer_suffix.flush()

    stitched = (list(tracer_prefix.events)[:prefix_len]
                + list(tracer_suffix.events)[skip:])
    assert _dump(stitched) == _dump(tracer_ref.events)


@settings(max_examples=5, deadline=None)
@given(at=st.floats(min_value=5.0, max_value=80.0,
                    allow_nan=False, allow_infinity=False))
def test_stitched_trace_complete_at_any_instant(at):
    """Property: at *arbitrary* capture instants the stitched trace
    contains exactly the reference run's events — none lost, none
    duplicated, none altered.  Strict stream order is not asserted
    here: capture folds the power journal, so a closed-but-unemitted
    span can surface at the capture point instead of at the parent's
    next natural advance (same ts/dur/args, earlier stream position).
    The pinned-instant test above keeps the byte-order bar."""
    tracer_ref = Tracer(clock=lambda: 0.0)
    _build("videos", goal_seconds=90.0, tracer=tracer_ref).start().run()
    tracer_ref.flush()

    tracer_prefix = Tracer(clock=lambda: 0.0)
    parent = _build("videos", goal_seconds=90.0,
                    tracer=tracer_prefix).start()
    parent.run(until=at)
    snapshot = Snapshot.capture(parent.sim)
    prefix_len = len(tracer_prefix.events)

    tracer_suffix = Tracer(clock=lambda: 0.0)
    fork = snapshot.fork(tracer=tracer_suffix)
    skip = len(tracer_suffix.events)
    fork.run()
    tracer_suffix.flush()

    stitched = (list(tracer_prefix.events)[:prefix_len]
                + list(tracer_suffix.events)[skip:])
    stitched_sorted = sorted(
        json.dumps(e.to_dict(), sort_keys=True) for e in stitched)
    ref_sorted = sorted(
        json.dumps(e.to_dict(), sort_keys=True) for e in tracer_ref.events)
    assert stitched_sorted == ref_sorted


def test_capture_does_not_perturb_parent():
    scenario = _build("utterances")
    reference = _build("utterances").start().run()
    parent = scenario.start().run(until=CAPTURE_AT)
    Snapshot.capture(parent.sim)
    parent.run()
    assert canonical_json(parent.summary()) == canonical_json(
        reference.summary())


def test_workload_phase_instants_traced():
    """The cursor emits phase.begin/phase.end on the workload category."""
    tracer = Tracer(categories={"workload"}, clock=lambda: 0.0)
    _build("maps", goal_seconds=60.0, tracer=tracer).start().run()
    tracer.flush()
    names = [event.name for event in tracer.events]
    assert "phase.begin" in names and "phase.end" in names
    begins = [e for e in tracer.events if e.name == "phase.begin"]
    assert begins[0].args["workload"] == "maps"
    assert begins[0].args["index"] == 0
    assert begins[1].args["index"] == 1


# ----------------------------------------------------------------------
# unit: the cursor carriers
# ----------------------------------------------------------------------
def test_workload_cursor_counts_and_guards():
    cursor = WorkloadCursor("w", items=["a", "b"])
    assert cursor.begin() == "a"
    with pytest.raises(CursorError):
        cursor.begin()
    cursor.end()
    with pytest.raises(CursorError):
        cursor.end()
    assert cursor.begin() == "b"
    cursor.end()
    assert cursor.begin() == "a"  # cycles
    assert cursor.position == 2


def test_workload_cursor_seek_roundtrip():
    cursor = WorkloadCursor("w", items=["a", "b", "c"])
    cursor.begin()
    cursor.end()
    cursor.begin()
    state = cursor.__cursor__()
    other = WorkloadCursor("w", items=["a", "b", "c"]).__seek__(state)
    assert other.position == 1 and other.in_phase
    assert other.current_item == "b"


def test_fixed_think_time_cursor():
    think = FixedThinkTime(5.0)
    think.next()
    think.next()
    resumed = FixedThinkTime(5.0)
    resumed.__seek__(think.__cursor__())
    assert resumed.draws == 2
    assert resumed.next() == think.next()


def test_random_think_time_cursor_replays_rng():
    think = RandomThinkTime(mean=5.0, spread=0.4, seed=7)
    for _ in range(5):
        think.next()
    resumed = RandomThinkTime(mean=5.0, spread=0.4, seed=7)
    resumed.__seek__(think.__cursor__())
    fresh = RandomThinkTime(mean=5.0, spread=0.4, seed=7)
    continuation = [fresh.next() for _ in range(8)][5:]
    assert [resumed.next() for _ in range(3)] == continuation


def test_random_think_time_seed_mismatch_rejected():
    think = RandomThinkTime(mean=5.0, spread=0.4, seed=7)
    think.next()
    other = RandomThinkTime(mean=5.0, spread=0.4, seed=8)
    with pytest.raises(ValueError):
        other.__seek__(think.__cursor__())


def test_bursty_schedule_cursor():
    schedule = BurstySchedule("speech", minutes=6, seed=3)
    for _ in range(4):
        schedule.next_minute()
    resumed = BurstySchedule("speech", minutes=6, seed=3)
    resumed.__seek__(schedule.__cursor__())
    fresh = BurstySchedule("speech", minutes=6, seed=3)
    rest = [fresh.next_minute() for _ in range(6)][4:]
    assert [resumed.next_minute() for _ in range(2)] == rest
    with pytest.raises(ValueError):
        BurstySchedule("speech", minutes=6, seed=3).__seek__(
            {"position": 99})


def test_trace_cursor_bounds():
    trace = SessionTrace.parse("0.0 idle 5\n10.0 idle 5\n")
    cursor = trace.cursor()
    assert cursor.__cursor__() == {"index": 0}
    cursor.__seek__({"index": 2})
    assert cursor.index == 2
    with pytest.raises(TraceError):
        cursor.__seek__({"index": 3})
