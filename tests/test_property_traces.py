"""Property-based tests for session traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import SessionTrace, TraceAction

OBJECTS = {
    "speech": ["utterance-1", "utterance-2", "utterance-3", "utterance-4"],
    "web": ["image-1", "image-2", "image-3", "image-4"],
    "map": ["san-jose", "allentown", "boston", "pittsburgh"],
}


def action_strategy():
    simple = st.tuples(
        st.floats(min_value=0.0, max_value=500.0),
        st.sampled_from(["speech", "web", "map"]),
    ).flatmap(
        lambda pair: st.sampled_from(OBJECTS[pair[1]]).map(
            lambda obj: TraceAction(round(pair[0], 3), pair[1], obj)
        )
    )
    idle = st.tuples(
        st.floats(min_value=0.0, max_value=500.0),
        st.floats(min_value=0.1, max_value=30.0),
    ).map(lambda p: TraceAction(round(p[0], 3), "idle", "", duration=round(p[1], 3)))
    video = st.tuples(
        st.floats(min_value=0.0, max_value=500.0),
        st.floats(min_value=1.0, max_value=20.0),
    ).map(
        lambda p: TraceAction(
            round(p[0], 3), "video", "video-1", duration=round(p[1], 3)
        )
    )
    return st.one_of(simple, idle, video)


@settings(max_examples=40)
@given(st.lists(action_strategy(), min_size=1, max_size=15))
def test_trace_render_parse_round_trip(actions):
    trace = SessionTrace(actions)
    again = SessionTrace.parse(trace.render())
    assert len(again) == len(trace)
    for a, b in zip(trace, again):
        assert a.kind == b.kind
        assert a.argument == b.argument
        assert abs(a.at - b.at) < 1e-9
        assert abs(a.duration - b.duration) < 1e-9


@settings(max_examples=40)
@given(st.lists(action_strategy(), min_size=1, max_size=15))
def test_trace_actions_always_time_sorted(actions):
    trace = SessionTrace(actions)
    times = [a.at for a in trace]
    assert times == sorted(times)
    assert trace.span == times[-1]
