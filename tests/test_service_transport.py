"""HTTP transport + client tests: roundtrip, errors, concurrency.

A real ServiceServer on an ephemeral port, real worker processes, and
the urllib client — the full stack short of the CLI.
"""

import threading

import pytest

from repro.fleet import CampaignSpec, FleetRunner, Task
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.service import (
    CampaignService,
    ServiceClient,
    ServiceError,
    results_document,
    serve,
)


def value_spec(n=4, name="wire"):
    return CampaignSpec(
        name=name,
        tasks=tuple(
            Task(id=f"t{i}", fn="repro.fleet.library:seeded_value",
                 params={"seed": i, "scale": 3.0})
            for i in range(n)
        ),
    )


@pytest.fixture
def stack(tmp_path):
    """A running service + HTTP server + client on an ephemeral port."""
    service = CampaignService(workers=2, cache=tmp_path / "cache",
                              poll_s=0.02, tracer=NULL_TRACER,
                              metrics=MetricsRegistry())
    with service:
        server = serve(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield service, ServiceClient(server.endpoint)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(2.0)


class TestRoundtrip:
    def test_submit_wait_result(self, stack):
        _, client = stack
        spec = value_spec()
        job_id = client.submit(spec, queue="q1", client="test")
        status = client.wait(job_id, timeout=30)
        assert status["state"] == "done"
        result = client.result(job_id)
        assert set(result["values"]) == {f"t{i}" for i in range(4)}

    def test_wire_results_bit_identical_to_oneshot(self, stack):
        """The determinism invariant, across the HTTP wire."""
        _, client = stack
        spec = value_spec(5, name="wirebits")
        direct = FleetRunner(jobs=2, tracer=NULL_TRACER,
                             metrics=MetricsRegistry()).run(spec)
        job_id = client.submit(spec)
        client.wait(job_id, timeout=30)
        result = client.result(job_id)
        assert (results_document(result["campaign"], result["values"])
                == results_document(spec.name, direct.values))

    def test_spec_roundtrips_exactly(self):
        spec = CampaignSpec(
            name="rt", seed=7,
            tasks=(
                Task(id="a", fn="m:f", params={"x": 1}),
                Task(id="b", fn="m:g", params={"y": [1, 2]},
                     timeout_s=3.5),
            ),
        )
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert [t.key() for t in rebuilt.tasks] == [
            t.key() for t in spec.tasks
        ]

    def test_payload_task_not_serializable(self):
        task = Task(id="p", fn="m:f", payload=(object(),))
        with pytest.raises(ValueError):
            task.to_dict()

    def test_health_queues_workers_jobs(self, stack):
        _, client = stack
        job_id = client.submit(value_spec(2))
        client.wait(job_id, timeout=30)
        health = client.health()
        assert health["workers"] == 2
        assert health["jobs"] == 1
        assert client.queues()["default"]["jobs"] == 1
        assert len(client.workers()) == 2
        jobs = client.jobs()
        assert jobs[0]["job_id"] == job_id
        metrics = client.metrics()
        assert metrics["counters"]["service.jobs_submitted"] == 1


class TestErrors:
    def test_unknown_job_is_404(self, stack):
        _, client = stack
        with pytest.raises(ServiceError) as excinfo:
            client.status("j9999")
        assert excinfo.value.status == 404

    def test_result_of_unknown_job_is_404(self, stack):
        _, client = stack
        with pytest.raises(ServiceError) as excinfo:
            client.result("j9999")
        assert excinfo.value.status == 404

    def test_bad_spec_is_400(self, stack):
        _, client = stack
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"tasks": []})  # missing "name"
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, stack):
        _, client = stack
        with pytest.raises(ServiceError) as excinfo:
            client._request("/nope")
        assert excinfo.value.status == 404

    def test_unreachable_endpoint(self):
        from repro.service import ServiceUnavailable

        client = ServiceClient("http://127.0.0.1:1", timeout=1.0)
        with pytest.raises(ServiceUnavailable):
            client.health()


class TestConcurrentClients:
    def test_two_clients_one_execution(self, stack):
        """Concurrent identical submissions over the wire coalesce."""
        _, client = stack
        spec = value_spec(6, name="concurrent")
        results = {}

        def run(tag):
            own = ServiceClient(client.endpoint)
            job_id = own.submit(spec, client=tag)
            own.wait(job_id, timeout=60)
            results[tag] = own.result(job_id)

        threads = [threading.Thread(target=run, args=(f"c{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(90)
        assert results["c0"]["values"] == results["c1"]["values"]
        executed = sum(r["telemetry"]["succeeded"]
                       for r in results.values())
        served = sum(r["telemetry"]["cached"] for r in results.values())
        assert executed == 6
        assert served == 6
